"""Dependency-free visualization: PPM images, SVG plots, ASCII contours.

The paper's figures are equi-vorticity contour plots (figs. 1-2) and
efficiency/speedup curves (figs. 5-13).  This module renders both
without any plotting dependency:

* :func:`field_to_ppm` writes a 2D field as a binary PPM image with a
  blue-white-red diverging colormap (the natural palette for signed
  vorticity) and walls in gray — the fig. 1 snapshot as a file any
  image viewer opens;
* :func:`svg_plot` writes multi-series line plots as standalone SVG —
  the figs. 5-13 curves;
* :func:`ascii_contours` renders the +/- contour pattern in a terminal.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "diverging_colormap",
    "field_to_ppm",
    "ascii_contours",
    "svg_plot",
]


def diverging_colormap(values: np.ndarray) -> np.ndarray:
    """Map values in [-1, 1] to blue-white-red RGB (uint8).

    Negative values shade towards blue, positive towards red, zero is
    white — the standard signed-field palette.
    """
    v = np.clip(np.asarray(values, dtype=float), -1.0, 1.0)
    rgb = np.empty(v.shape + (3,), dtype=np.uint8)
    pos = np.clip(v, 0.0, 1.0)
    neg = np.clip(-v, 0.0, 1.0)
    rgb[..., 0] = np.round(255 * (1.0 - neg)).astype(np.uint8)  # red
    rgb[..., 1] = np.round(255 * (1.0 - np.maximum(pos, neg))).astype(
        np.uint8
    )
    rgb[..., 2] = np.round(255 * (1.0 - pos)).astype(np.uint8)  # blue
    return rgb


def field_to_ppm(
    field: np.ndarray,
    path: str | Path,
    solid: np.ndarray | None = None,
    scale: float | None = None,
    wall_gray: int = 96,
) -> Path:
    """Write a 2D field as a binary PPM (P6) image.

    Axis convention of the paper's figures: x to the right, y upward
    (the array's axis 0 is x, axis 1 is y).  ``scale`` fixes the value
    mapped to full color; defaults to ``max |field|``.  Solid nodes are
    drawn gray.
    """
    if field.ndim != 2:
        raise ValueError(f"need a 2D field, got shape {field.shape}")
    scale = float(np.abs(field).max()) if scale is None else float(scale)
    scale = max(scale, 1e-300)
    rgb = diverging_colormap(field / scale)
    if solid is not None:
        if solid.shape != field.shape:
            raise ValueError("solid mask shape mismatch")
        rgb[solid] = wall_gray
    # image rows run top to bottom: transpose to (y, x) and flip y
    img = np.transpose(rgb, (1, 0, 2))[::-1]
    path = Path(path)
    header = f"P6\n{img.shape[1]} {img.shape[0]}\n255\n".encode()
    path.write_bytes(header + img.tobytes())
    return path


def ascii_contours(
    field: np.ndarray,
    solid: np.ndarray | None = None,
    width: int = 72,
    height: int = 28,
    threshold: float = 0.15,
) -> str:
    """Coarse +/- contour rendering for terminals (fig. 1 in ASCII).

    Each character cell shows ``#`` for predominantly solid cells,
    ``+``/``-`` where the cell's extreme value exceeds ``threshold``
    of the global scale, and space otherwise.
    """
    if field.ndim != 2:
        raise ValueError(f"need a 2D field, got shape {field.shape}")
    nx, ny = field.shape
    if solid is None:
        solid = np.zeros(field.shape, dtype=bool)
    xe = np.linspace(0, nx, width + 1).astype(int)
    ye = np.linspace(0, ny, height + 1).astype(int)
    scale = max(float(np.abs(field).max()), 1e-300)
    lines = []
    for jy in reversed(range(height)):  # y upward
        row = []
        for ix in range(width):
            cs = solid[xe[ix]:xe[ix + 1], ye[jy]:ye[jy + 1]]
            cw = field[xe[ix]:xe[ix + 1], ye[jy]:ye[jy + 1]]
            if cs.mean() > 0.5 or (
                cs.any() and np.abs(cw).max() < 0.05 * scale
            ):
                row.append("#")
                continue
            v = cw.flat[np.abs(cw).argmax()] / scale
            row.append("+" if v > threshold
                       else "-" if v < -threshold else " ")
        lines.append("".join(row))
    return "\n".join(lines)


def svg_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    path: str | Path,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 560,
    height: int = 360,
    ylim: tuple[float, float] | None = None,
) -> Path:
    """Write a multi-series line plot as a standalone SVG file.

    ``series`` maps a legend label to ``(xs, ys)``.  Pure text output:
    no dependencies, renders in any browser — used to plot the
    efficiency/speedup curves of figs. 5-13.
    """
    if not series:
        raise ValueError("need at least one series")
    colors = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
              "#8c564b", "#17becf"]
    margin_l, margin_r, margin_t, margin_b = 58, 16, 34, 44
    pw = width - margin_l - margin_r
    ph = height - margin_t - margin_b

    all_x = np.concatenate([np.asarray(x, float) for x, _ in
                            series.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in
                            series.values()])
    x0, x1 = float(all_x.min()), float(all_x.max())
    if ylim is not None:
        y0, y1 = ylim
    else:
        y0, y1 = float(all_y.min()), float(all_y.max())
        pad = 0.05 * max(y1 - y0, 1e-12)
        y0, y1 = y0 - pad, y1 + pad
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    def sx(x: float) -> float:
        return margin_l + (x - x0) / (x1 - x0) * pw

    def sy(y: float) -> float:
        return margin_t + (1.0 - (y - y0) / (y1 - y0)) * ph

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{margin_l}" y="{margin_t}" width="{pw}" height="{ph}" '
        'fill="none" stroke="#444"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="13">{title}</text>'
        )
    # ticks
    for i in range(5):
        xv = x0 + i * (x1 - x0) / 4
        yv = y0 + i * (y1 - y0) / 4
        parts.append(
            f'<line x1="{sx(xv):.1f}" y1="{margin_t + ph}" '
            f'x2="{sx(xv):.1f}" y2="{margin_t + ph + 4}" stroke="#444"/>'
            f'<text x="{sx(xv):.1f}" y="{margin_t + ph + 16}" '
            f'text-anchor="middle">{xv:g}</text>'
        )
        parts.append(
            f'<line x1="{margin_l - 4}" y1="{sy(yv):.1f}" '
            f'x2="{margin_l}" y2="{sy(yv):.1f}" stroke="#444"/>'
            f'<text x="{margin_l - 8}" y="{sy(yv) + 4:.1f}" '
            f'text-anchor="end">{yv:.3g}</text>'
        )
    if xlabel:
        parts.append(
            f'<text x="{margin_l + pw / 2:.0f}" y="{height - 8}" '
            f'text-anchor="middle">{xlabel}</text>'
        )
    if ylabel:
        parts.append(
            f'<text x="14" y="{margin_t + ph / 2:.0f}" '
            f'text-anchor="middle" transform="rotate(-90 14 '
            f'{margin_t + ph / 2:.0f})">{ylabel}</text>'
        )
    # series
    for k, (label, (xs, ys)) in enumerate(series.items()):
        color = colors[k % len(colors)]
        pts = " ".join(
            f"{sx(float(x)):.1f},{sy(float(y)):.1f}"
            for x, y in zip(xs, ys)
        )
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            'stroke-width="1.6"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{sx(float(x)):.1f}" cy="{sy(float(y)):.1f}" '
                f'r="2.4" fill="{color}"/>'
            )
        ly = margin_t + 14 + 14 * k
        parts.append(
            f'<line x1="{margin_l + pw - 110}" y1="{ly - 4}" '
            f'x2="{margin_l + pw - 90}" y2="{ly - 4}" stroke="{color}" '
            'stroke-width="2"/>'
            f'<text x="{margin_l + pw - 84}" y="{ly}">{label}</text>'
        )
    parts.append("</svg>")
    path = Path(path)
    path.write_text("\n".join(parts))
    return path
