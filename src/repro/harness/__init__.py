"""Measurement utilities: §7 timing protocol, eq. 5 metrics, and the
per-figure parameter sweeps used by the benchmark harness."""

from .metrics import (
    AllocationReport,
    count_allocations,
    efficiency,
    format_series,
    format_table,
    speedup,
)
from .sweeps import (
    DEFAULT_2D_DECOMPS,
    DEFAULT_2D_SIDES,
    DEFAULT_3D_DECOMPS,
    DEFAULT_3D_SIDES,
    SweepPoint,
    model_fig12,
    model_fig13,
    sweep_2d_grain,
    sweep_3d_grain,
    sweep_processors,
)
from .timing import StepTiming, measure_node_speed, time_stepper

__all__ = [
    "speedup",
    "efficiency",
    "AllocationReport",
    "count_allocations",
    "format_table",
    "format_series",
    "StepTiming",
    "time_stepper",
    "measure_node_speed",
    "SweepPoint",
    "sweep_2d_grain",
    "sweep_3d_grain",
    "sweep_processors",
    "model_fig12",
    "model_fig13",
    "DEFAULT_2D_DECOMPS",
    "DEFAULT_3D_DECOMPS",
    "DEFAULT_2D_SIDES",
    "DEFAULT_3D_SIDES",
]
