"""Parameter sweeps regenerating each figure of the paper (§7-§8).

One function per figure (or figure pair sharing a sweep), returning
plain data structures the benchmarks print and assert on.  Simulated
sweeps run the discrete-event cluster; model sweeps evaluate §8's
closed forms.  See DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.efficiency import EfficiencyModel
from ..cluster.simulator import ClusterSimulation, NetworkParams

__all__ = [
    "SweepPoint",
    "DEFAULT_2D_DECOMPS",
    "DEFAULT_3D_DECOMPS",
    "DEFAULT_2D_SIDES",
    "DEFAULT_3D_SIDES",
    "sweep_2d_grain",
    "sweep_3d_grain",
    "sweep_processors",
    "model_fig12",
    "model_fig13",
]

#: §7's 2D decompositions: (2x2), (3x3), (4x4), (5x4) with the paper's
#: m values 2, 3, 4, 4.
DEFAULT_2D_DECOMPS: tuple[tuple[int, int], ...] = (
    (2, 2),
    (3, 3),
    (4, 4),
    (5, 4),
)
#: §7's 3D decompositions ("(2x2x2), (3x2x2), etc.") within 25 hosts.
DEFAULT_3D_DECOMPS: tuple[tuple[int, int, int], ...] = (
    (2, 2, 2),
    (3, 2, 2),
    (4, 2, 2),
    (5, 2, 2),
)
#: Grain sweep in subregion side length: 100^2..300^2 is the paper's
#: measured range, extended downward to expose the small-message rolloff.
DEFAULT_2D_SIDES: tuple[int, ...] = (25, 50, 75, 100, 150, 200, 250, 300)
#: 3D grains 10^3..40^3 (40^3 is the §8 memory ceiling per workstation).
DEFAULT_3D_SIDES: tuple[int, ...] = (10, 15, 20, 25, 30, 35, 40)


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a figure series."""

    processors: int
    side: int
    nodes: int
    efficiency: float
    speedup: float
    time_per_step: float
    network_errors: int = 0

    @property
    def sqrt_nodes(self) -> float:
        """The x-axis of figs. 5, 7, 12 (``N^{1/2}``)."""
        return float(np.sqrt(self.nodes))

    @property
    def cbrt_nodes(self) -> float:
        """The x-axis of fig. 10 (``N^{1/3}``)."""
        return float(np.cbrt(self.nodes))


def _run_point(
    method: str,
    ndim: int,
    blocks: tuple[int, ...],
    side: int,
    steps: int,
    network: NetworkParams,
    sync_mode: str,
) -> SweepPoint:
    sim = ClusterSimulation(
        method, ndim, blocks, side, network=network, sync_mode=sync_mode
    )
    res = sim.run(steps=steps)
    return SweepPoint(
        processors=res.processors,
        side=side,
        nodes=side**ndim,
        efficiency=res.efficiency,
        speedup=res.speedup,
        time_per_step=res.time_per_step,
        network_errors=res.bus.network_errors,
    )


def sweep_2d_grain(
    method: str = "lb",
    decomps: tuple[tuple[int, int], ...] = DEFAULT_2D_DECOMPS,
    sides: tuple[int, ...] = DEFAULT_2D_SIDES,
    steps: int = 30,
    network: NetworkParams = NetworkParams(),
    sync_mode: str = "bsp",
) -> dict[tuple[int, int], list[SweepPoint]]:
    """Figures 5-6 (LB) and 7-8 (FD): efficiency/speedup vs grain."""
    return {
        blocks: [
            _run_point(method, 2, blocks, side, steps, network, sync_mode)
            for side in sides
        ]
        for blocks in decomps
    }


def sweep_3d_grain(
    method: str = "lb",
    decomps: tuple[tuple[int, int, int], ...] = DEFAULT_3D_DECOMPS,
    sides: tuple[int, ...] = DEFAULT_3D_SIDES,
    steps: int = 30,
    network: NetworkParams = NetworkParams(),
    sync_mode: str = "bsp",
) -> dict[tuple[int, int, int], list[SweepPoint]]:
    """Figures 10-11: 3D efficiency vs grain / speedup vs problem size."""
    return {
        blocks: [
            _run_point(method, 3, blocks, side, steps, network, sync_mode)
            for side in sides
        ]
        for blocks in decomps
    }


def sweep_processors(
    side_2d: int = 120,
    side_3d: int = 25,
    processors: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    method: str = "lb",
    steps: int = 30,
    network: NetworkParams = NetworkParams(),
    sync_mode: str = "bsp",
) -> dict[str, list[SweepPoint]]:
    """Figure 9: scaled problem, (P x 1) in 2D vs (P x 1 x 1) in 3D.

    The subregion per processor is held fixed (120^2 and 25^3 — about
    14,500 fluid nodes each, the paper's comparable sizes).
    """
    out: dict[str, list[SweepPoint]] = {"2d": [], "3d": []}
    for p in processors:
        out["2d"].append(
            _run_point(method, 2, (p, 1), side_2d, steps, network, sync_mode)
        )
        out["3d"].append(
            _run_point(
                method, 3, (p, 1, 1), side_3d, steps, network, sync_mode
            )
        )
    return out


def model_fig12(
    sides: np.ndarray | None = None,
) -> dict[tuple[int, float], np.ndarray]:
    """Figure 12: eq. 20 efficiency vs ``N^{1/2}``.

    Four curves for ``P = 4, 9, 16, 20`` with ``m = 2, 3, 4, 4`` and
    ``U_calc/V_com = 2/3``, keyed by ``(P, m)``.
    """
    if sides is None:
        sides = np.linspace(10, 300, 59)
    model = EfficiencyModel()
    return {
        (p, m): model.efficiency(sides**2, m, p, ndim=2)
        for p, m in ((4, 2.0), (9, 3.0), (16, 4.0), (20, 4.0))
    }


def model_fig13(
    processors: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Figure 13: eqs. 20-21 efficiency vs ``P``.

    2D at ``N = 125^2``, 3D at ``N = 25^3``, both with ``m = 2`` (each
    subregion communicates with its left and right neighbours only) and
    the 5/6 payload/speed factor folded into eq. 21.
    """
    if processors is None:
        processors = np.arange(2, 21)
    model = EfficiencyModel()
    return {
        "P": processors.astype(float),
        "2d": model.efficiency(125.0**2, 2.0, processors, ndim=2),
        "3d": model.efficiency(25.0**3, 2.0, processors, ndim=3),
    }
