"""Timing methodology of the paper (§7).

"We measure the times T_p and T_1 for integrating a problem by averaging
over 20 consecutive integration steps [...].  We use the UNIX system
call gettimeofday to obtain accurate timings.  To avoid situations where
the Ethernet network is overloaded [...] we repeat each measurement
twice, and select the best performance."

The same protocol — average over a window of steps, best of repeats —
is applied both to real kernel timings on this machine (the speed table
benchmark) and to simulated runs.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["StepTiming", "time_stepper", "measure_node_speed"]


@dataclass(frozen=True)
class StepTiming:
    """Result of one §7-style timing measurement.

    ``seconds_per_step`` keeps the paper's best-of-repeats selection;
    ``median``/``stdev`` expose the robust statistics over the same
    repeats, which is what `repro bench` records so benchmark
    trajectories are comparable across noisy machines.
    """

    seconds_per_step: float
    steps: int
    repeats: int
    all_runs: tuple[float, ...]

    @property
    def best(self) -> float:
        return self.seconds_per_step

    @property
    def median(self) -> float:
        """Median seconds/step over the repeats."""
        return statistics.median(self.all_runs)

    @property
    def stdev(self) -> float:
        """Sample stdev of seconds/step over the repeats (0 for one)."""
        if len(self.all_runs) < 2:
            return 0.0
        return statistics.stdev(self.all_runs)


def time_stepper(
    step: Callable[[int], None],
    steps: int = 20,
    repeats: int = 2,
    warmup: int = 2,
) -> StepTiming:
    """Time ``step(n)`` per the paper's protocol.

    ``step(n)`` advances the computation ``n`` integration steps.  The
    warm-up steps are excluded (cache warming, lazy allocations); each
    repeat times ``steps`` consecutive steps and the best repeat is
    reported.
    """
    if warmup > 0:
        step(warmup)
    runs = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        step(steps)
        t1 = time.perf_counter()
        runs.append((t1 - t0) / steps)
    return StepTiming(
        seconds_per_step=min(runs),
        steps=steps,
        repeats=repeats,
        all_runs=tuple(runs),
    )


def measure_node_speed(
    sim,
    n_nodes: int,
    steps: int = 20,
    repeats: int = 2,
) -> float:
    """Fluid nodes integrated per second (§7's speed definition).

    "We define the speed of a workstation as the number of fluid nodes
    integrated per second, where the number of fluid nodes does not
    include the padded areas."  ``sim`` is anything with a
    ``step(n)`` method; ``n_nodes`` counts the unpadded nodes.
    """
    timing = time_stepper(sim.step, steps=steps, repeats=repeats)
    return n_nodes / timing.seconds_per_step
