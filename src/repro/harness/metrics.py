"""Speedup/efficiency arithmetic (eq. 5) and result tabulation.

Small, dependency-free helpers shared by the benchmark harness: the
benchmarks print the same rows and series the paper's figures report, so
each figure has a textual twin that can be diffed across runs.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "speedup",
    "efficiency",
    "format_table",
    "format_series",
    "AllocationReport",
    "count_allocations",
]


def speedup(t1: float, tp: float) -> float:
    """Eq. 5: ``S = T_1 / T_p``."""
    if tp <= 0:
        raise ValueError(f"tp must be positive, got {tp}")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Eq. 5: ``f = S / P = T_1 / (P T_p)``."""
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    return speedup(t1, tp) / p


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width text table (the benches' figure twin)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float]
) -> str:
    """One figure series as ``name: (x, y) ...`` pairs."""
    pairs = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass(frozen=True)
class AllocationReport:
    """Heap behaviour of one measured call (see :func:`count_allocations`).

    ``net_bytes`` is the traced-heap growth that survived the call;
    ``peak_bytes`` the highest transient excursion above the starting
    point during it.  A step that allocates even one temporary grid
    array shows up in ``peak_bytes`` at the size of that array, so a
    threshold far below one field and far above interpreter noise
    separates the two cleanly.
    """

    net_bytes: int
    peak_bytes: int
    calls: int

    def allocates_arrays(self, threshold: int = 16384) -> bool:
        """Whether any call transiently allocated ``threshold`` bytes."""
        return self.peak_bytes >= threshold


def count_allocations(
    fn: Callable[[], object],
    warmup: int = 1,
    repeat: int = 1,
    ufunc_bufsize: int | None = 32,
) -> AllocationReport:
    """Measure heap allocation of ``fn()`` with :mod:`tracemalloc`.

    The warm-up calls let lazy pools fill (the per-subregion scratch
    buffers of the fused kernels allocate on first use); the measured
    calls then run against a recorded baseline and reset peak.  NumPy
    registers its array-data allocations with tracemalloc, so a fused
    integration step that is truly allocation-free reports a
    ``peak_bytes`` of interpreter noise only, while a single leaked
    temporary reports the full array size.

    One subtlety: ufunc calls on broadcast or non-contiguous operands
    transiently allocate *internal* work buffers of a fixed size
    (``np.getbufsize()`` elements per operand — 64 KiB by default)
    regardless of the array sizes involved.  Those are machinery, not
    temporaries, so the measured calls run under a shrunken buffer size
    (``ufunc_bufsize`` elements, restored afterwards); pass ``None`` to
    keep the process-wide setting instead.
    """
    import numpy as np

    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    old_bufsize = (
        np.setbufsize(ufunc_bufsize) if ufunc_bufsize is not None else None
    )
    try:
        for _ in range(max(warmup, 0)):
            fn()
        base, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for _ in range(max(repeat, 1)):
            fn()
        current, peak = tracemalloc.get_traced_memory()
        return AllocationReport(
            net_bytes=current - base,
            peak_bytes=peak - base,
            calls=max(repeat, 1),
        )
    finally:
        if old_bufsize is not None:
            np.setbufsize(old_bufsize)
        if not was_tracing:
            tracemalloc.stop()
