"""Speedup/efficiency arithmetic (eq. 5) and result tabulation.

Small, dependency-free helpers shared by the benchmark harness: the
benchmarks print the same rows and series the paper's figures report, so
each figure has a textual twin that can be diffed across runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["speedup", "efficiency", "format_table", "format_series"]


def speedup(t1: float, tp: float) -> float:
    """Eq. 5: ``S = T_1 / T_p``."""
    if tp <= 0:
        raise ValueError(f"tp must be positive, got {tp}")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Eq. 5: ``f = S / P = T_1 / (P T_p)``."""
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    return speedup(t1, tp) / p


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width text table (the benches' figure twin)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float]
) -> str:
    """One figure series as ``name: (x, y) ...`` pairs."""
    pairs = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
