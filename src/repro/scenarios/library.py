"""The scenario library: every validated flow of the repo, scored.

Each scenario pins a calibrated configuration (grid, viscosity,
forcing, step count) and the tolerance its score gates on.  The
tolerances are *measured*, not aspirational — each one documents the
residual observed on the pinned configuration with headroom for
backend-to-backend reduction-order noise:

========================  =============================  ==============
scenario                  reference                      measured
========================  =============================  ==============
poiseuille                exact parabola                 ~2e-3 (tol 5e-3)
duct3d                    exact Fourier series           fd 8e-3 / lb 4e-2
cavity Re=100             Hou et al. (0.6196, 0.7373)    0.013 (tol 0.025)
cavity Re=400             Hou et al. (0.5608, 0.6078)    0.009 (tol 0.025)
cavity Re=1000            Hou et al. (0.5333, 0.5647)    0.013 (tol 0.030)
flue_pipe                 quarter-wave tone of the pipe  0.43 f_qw, SNR 16
cylinder_wake             von Karman street structure    wake ratio 0.95
acoustic_wave             2 x standing-wave frequency    rel err 4e-3
taylor_green              exact decay exp(-4 nu k^2 t)   see bounds
hybrid_channel            exact parabola across a seam   ~2e-3 (tol 5e-3)
conservation              exact mass invariance          drift ~1e-13 (lb)
========================  =============================  ==============
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..distrib import ProblemSpec
from ..fluids.analytic import (
    acoustic_frequency,
    duct_profile,
    poiseuille_profile,
    taylor_green_decay_rate,
)
from ..fluids.observables import primary_vortex, spectral_peak
from .base import Case, Param, Scenario, Score, diag_series, register

__all__ = ["HOU_CAVITY_CENTERS"]

#: Primary-vortex centers (x, y) of the lid-driven cavity, fractions of
#: the cavity side measured from the left/bottom walls, lid moving +x
#: along the top.  Hou, Zou, Chen, Doolen & Cogley, JCP 118 (1995).
HOU_CAVITY_CENTERS = {
    100: (0.6196, 0.7373),
    400: (0.5608, 0.6078),
    1000: (0.5333, 0.5647),
}

#: documented per-Re tolerance on the center position (fraction of the
#: cavity side, euclidean); measured errors are 0.009-0.013 on the
#: pinned grids — the bound leaves ~2x headroom.
CAVITY_CENTER_TOL = {100: 0.025, 400: 0.025, 1000: 0.030}


def _mass_drift(diagnostics: Sequence[Any]) -> float | None:
    """Max relative total-mass drift over the run, or None without a
    usable diagnostics series."""
    mass = diag_series(diagnostics, "total_mass")
    if mass.size < 2 or mass[0] == 0.0:
        return None
    return float(np.max(np.abs(mass - mass[0])) / abs(mass[0]))


def _n_nonfinite(diagnostics: Sequence[Any]) -> float | None:
    n = diag_series(diagnostics, "n_nonfinite")
    if n.size == 0:
        return None
    return float(n.max())


def _with_diag(
    residuals: dict, bounds: dict, name: str, value: float | None,
    bound: float | None,
) -> None:
    """Record a diagnostics-derived residual; gate it only when the
    series was actually sampled (local scoring of a fields-only result
    must not fail on absent diagnostics)."""
    if value is None:
        return
    residuals[name] = value
    if bound is not None:
        bounds[name] = bound


def _shortfall(value: float, minimum: float) -> float:
    """Residual for a >=-style gate: 0 when satisfied, the gap when not
    (so Score.check's ``value > bound`` with bound 0 does the test)."""
    return float(max(0.0, minimum - value))


# ----------------------------------------------------------------------
# 1. plane Poiseuille channel (the paper's §7 validation flow)
# ----------------------------------------------------------------------
class PoiseuilleScenario(Scenario):
    name = "poiseuille"
    version = 1
    title = "Body-force-driven plane channel vs the exact parabola"
    reference = "u(y) = g y (H - y) / (2 nu), paper §7"
    params = {
        "method": Param("lb", "solver", choices=("lb", "fd")),
        "ny": Param(32, "wall-normal grid nodes", lo=16, hi=256),
        "nu": Param(0.1, "kinematic viscosity", lo=1e-3, hi=0.5),
        "g": Param(1e-5, "body-force acceleration", lo=1e-8, hi=1e-3),
        "steps": Param(12000, "time steps", lo=100),
        "tol": Param(5e-3, "max relative profile error", lo=1e-5),
    }

    def _build(self, p: dict[str, Any]) -> Case:
        ny = p["ny"]
        spec = ProblemSpec(
            method=p["method"],
            grid_shape=(ny // 2, ny),
            blocks=(1, 2),
            periodic=(True, False),
            params={"nu": p["nu"], "gravity": (p["g"], 0.0),
                    "filter_eps": 0.0},
            geometry={"kind": "channel"},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 1000})

    def _profile_error(self, p, u_slice, offset, span):
        ny = p["ny"]
        y = np.arange(ny, dtype=float) - offset
        exact = poiseuille_profile(y, span, p["g"], p["nu"])
        sl = slice(1, ny - 1)
        return float(
            np.abs(u_slice[sl] - exact[sl]).max() / exact.max()
        )

    def _score(self, p, fields, diagnostics) -> Score:
        u = np.asarray(fields["u"])
        # each method resolves the wall at its own offset (§7: compare
        # against the method's effective channel height)
        offset, span = (
            (0.5, p["ny"] - 2.0) if p["method"] == "lb"
            else (0.0, p["ny"] - 1.0)
        )
        err = self._profile_error(p, u[u.shape[0] // 2], offset, span)
        residuals = {"profile_err": err}
        bounds = {"profile_err": p["tol"]}
        _with_diag(residuals, bounds, "mass_drift",
                   _mass_drift(diagnostics), 1e-6)
        return Score.check(residuals, bounds)


# ----------------------------------------------------------------------
# 2. 3D rectangular duct (figs. 9-11 grids are 10^3..44^3 ducts)
# ----------------------------------------------------------------------
class Duct3DScenario(Scenario):
    name = "duct3d"
    version = 1
    title = "3D rectangular duct vs the exact Fourier-series profile"
    reference = "Landau & Lifshitz §17; tests/integration/test_duct_3d"
    params = {
        "method": Param("fd", "solver", choices=("fd", "lb")),
        "n": Param(13, "duct cross-section nodes", lo=9, hi=33),
        "nu": Param(0.08, "kinematic viscosity", lo=1e-3, hi=0.5),
        "g": Param(1e-6, "body-force acceleration", lo=1e-9, hi=1e-4),
        "steps": Param(2500, "time steps", lo=100),
    }

    def _build(self, p: dict[str, Any]) -> Case:
        n = p["n"]
        spec = ProblemSpec(
            method=p["method"],
            grid_shape=(6, n, n),
            blocks=(1, 1, 1),
            periodic=(True, False, False),
            params={"nu": p["nu"], "gravity": (p["g"], 0.0, 0.0),
                    "filter_eps": 0.0},
            geometry={"kind": "channel"},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 500})

    def _score(self, p, fields, diagnostics) -> Score:
        n = p["n"]
        u3 = np.asarray(fields["u"])
        u = u3[u3.shape[0] // 2]
        offset = 0.0 if p["method"] == "fd" else 0.5
        span = (n - 1.0) if offset == 0.0 else (n - 2.0)
        j = np.arange(n, dtype=float)
        y = (j - offset)[:, None]
        z = (j - offset)[None, :]
        exact = duct_profile(y, z, span, span, p["g"], p["nu"])
        fluid = np.zeros((n, n), dtype=bool)
        fluid[1:-1, 1:-1] = True
        err = float(np.abs(u[fluid] - exact[fluid]).max() / exact.max())
        tol = 1e-2 if p["method"] == "fd" else 5e-2
        residuals = {"profile_err": err}
        bounds = {"profile_err": tol}
        _with_diag(residuals, bounds, "mass_drift",
                   _mass_drift(diagnostics), 1e-6)
        return Score.check(residuals, bounds)


# ----------------------------------------------------------------------
# 3. lid-driven cavity vs Hou et al.
# ----------------------------------------------------------------------
class CavityScenario(Scenario):
    name = "cavity"
    version = 1
    title = "Lid-driven cavity primary vortex vs Hou et al."
    reference = "Hou et al., JCP 118 (1995), table II"
    params = {
        "Re": Param(100, "Reynolds number", choices=(100, 400, 1000)),
        "n": Param(0, "cavity side nodes (0 = auto per Re)", lo=0,
                   hi=256),
        "steps": Param(0, "time steps (0 = auto per Re)", lo=0),
        "lid_speed": Param(0.1, "lid speed (lattice units)", lo=0.01,
                           hi=0.2),
    }

    @staticmethod
    def _auto(p):
        n = p["n"] or (64 if p["Re"] == 100 else 96)
        steps = p["steps"] or {100: 8000, 400: 12000, 1000: 24000}[p["Re"]]
        return n, steps

    def _build(self, p: dict[str, Any]) -> Case:
        n, steps = self._auto(p)
        # nu from Re = U L / nu with L the cavity side
        nu = p["lid_speed"] * n / p["Re"]
        spec = ProblemSpec(
            method="lb",
            grid_shape=(n + 2, n + 2),
            blocks=(2, 2),
            periodic=(False, False),
            params={"nu": nu, "filter_eps": 0.01},
            geometry={"kind": "cavity", "lid_speed": p["lid_speed"],
                      "ramp_steps": 100},
        )
        return Case(spec, {"steps": steps, "diag_every": max(steps // 20,
                                                             1)})

    def _score(self, p, fields, diagnostics) -> Score:
        n, _ = self._auto(p)
        case = self._build(p)
        solid, _, _ = case.spec.build_geometry()
        u = np.asarray(fields["u"])
        v = np.asarray(fields["v"])
        cx, cy = primary_vortex(u, v, mask=~solid)
        # wall surfaces sit half a node outside the first fluid node:
        # node j maps to fraction (j - 0.5) / n of the cavity side
        fx, fy = (cx - 0.5) / n, (cy - 0.5) / n
        ref = HOU_CAVITY_CENTERS[p["Re"]]
        err = float(np.hypot(fx - ref[0], fy - ref[1]))
        residuals = {"center_err": err}
        bounds = {"center_err": CAVITY_CENTER_TOL[p["Re"]]}
        details = {"center": (fx, fy), "reference": ref}
        _with_diag(residuals, bounds, "nonfinite",
                   _n_nonfinite(diagnostics), 0.0)
        return Score.check(residuals, bounds, details)


# ----------------------------------------------------------------------
# 4-5. flue pipe (figs. 1-2), promoted from demo to scored scenario
# ----------------------------------------------------------------------
def _flue_quarter_wave(nx: int, cs: float) -> float:
    """Naive quarter-wave frequency of the resonant pipe.

    The pipe interior runs from the labium edge (0.30 nx) to the end
    cap (nx - 2 th); an ideal closed-open column of that length L
    resonates at cs / (4 L).  End corrections, the finite mouth and the
    jet offset shift the real tone well below this (measured 0.43 x on
    the pinned grid), so scores gate on a factor-3 window, not a
    percentage.
    """
    th = max(2, nx // 64)
    length = (1.0 - 2.0 * th / nx - 0.30) * nx
    return cs / (4.0 * length)


class FluePipeScenario(Scenario):
    name = "flue_pipe"
    version = 1
    title = "Flue-pipe jet tone (fig. 1) via diagnostics spectroscopy"
    reference = "paper figs. 1-2; quarter-wave estimate of the pipe"
    params = {
        "nx": Param(200, "grid width", lo=96, hi=1200),
        "jet_speed": Param(0.12, "jet inflow speed", lo=0.02, hi=0.3),
        "nu": Param(0.02, "kinematic viscosity", lo=1e-3, hi=0.2),
        "steps": Param(6000, "time steps", lo=1000),
        "diag_every": Param(2, "diagnostics sampling stride", lo=1,
                            hi=16),
    }

    def _grid(self, p):
        nx = p["nx"]
        return nx, (nx * 5) // 8

    def _build(self, p: dict[str, Any]) -> Case:
        nx, ny = self._grid(p)
        spec = ProblemSpec(
            method="lb",
            grid_shape=(nx, ny),
            blocks=(2, 2),
            periodic=(False, False),
            params={"nu": p["nu"]},
            geometry={"kind": "flue_pipe", "jet_speed": p["jet_speed"],
                      "ramp_steps": 50},
        )
        return Case(spec, {"steps": p["steps"],
                           "diag_every": p["diag_every"]})

    def _score(self, p, fields, diagnostics) -> Score:
        nx, _ = self._grid(p)
        case = self._build(p)
        cs = case.spec.build_params().cs
        f_qw = _flue_quarter_wave(nx, cs)
        mass = diag_series(diagnostics, "total_mass")
        if mass.size < 64:
            return Score(
                passed=False,
                failures=["needs a diagnostics series (diag_every <= "
                          "steps/64) to hear the tone"],
            )
        # drop the start-up transient, then difference the series: the
        # mass of an open pipe drifts as a red continuum that would
        # mask the tone; d(mass)/dt is flat enough to expose the
        # acoustic line (verified against a mouth-pressure probe).
        settle = mass.size // 3
        dmass = np.diff(mass[settle:])
        dt = float(p["diag_every"])
        band = (f_qw / 10.0, f_qw * 10.0)
        freq, amp = spectral_peak(dmass, dt=dt, band=band)
        from ..fluids.probes import spectrum

        fgrid, agrid = spectrum(dmass, dt)
        in_band = (fgrid >= band[0]) & (fgrid <= band[1]) & (fgrid > 0)
        floor = float(np.median(agrid[in_band]))
        snr = amp / floor if floor > 0 else np.inf
        factor = float(max(freq / f_qw, f_qw / freq))
        residuals = {
            "tone_factor": factor,       # distance from f_qw, as a ratio
            "inv_snr": float(1.0 / snr),
        }
        bounds = {"tone_factor": 3.0, "inv_snr": 0.2}
        details = {"frequency": freq, "quarter_wave": f_qw, "snr": snr}
        _with_diag(residuals, bounds, "nonfinite",
                   _n_nonfinite(diagnostics), 0.0)
        return Score.check(residuals, bounds, details)


class FluePipeChannelScenario(Scenario):
    name = "flue_pipe_channel"
    version = 1
    title = "Fig. 2 channel flue pipe: jet active, solid blocks inactive"
    reference = "paper fig. 2 (15 workstations for a 6x4 decomposition)"
    params = {
        "nx": Param(200, "grid width", lo=96, hi=1200),
        "jet_speed": Param(0.12, "jet inflow speed", lo=0.02, hi=0.3),
        "nu": Param(0.02, "kinematic viscosity", lo=1e-3, hi=0.2),
        "steps": Param(2000, "time steps", lo=200),
    }

    def _build(self, p: dict[str, Any]) -> Case:
        nx = p["nx"]
        spec = ProblemSpec(
            method="lb",
            grid_shape=(nx, (nx * 5) // 8),
            blocks=(4, 4),
            periodic=(False, False),
            params={"nu": p["nu"]},
            geometry={"kind": "flue_pipe", "variant": "channel",
                      "jet_speed": p["jet_speed"], "ramp_steps": 50},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 100})

    def _score(self, p, fields, diagnostics) -> Score:
        case = self._build(p)
        decomp = case.spec.build_decomposition()
        inactive = int(np.prod(case.spec.blocks)) - len(
            decomp.active_blocks()
        )
        solid, _, _ = case.spec.build_geometry()
        speed = np.hypot(np.asarray(fields["u"]),
                         np.asarray(fields["v"]))[~solid]
        vmax = float(speed.max())
        cs = case.spec.build_params().cs
        residuals = {
            # the fig. 2 geometry must idle whole subregions
            "inactive_shortfall": _shortfall(inactive, 1.0),
            # the jet must be up and the flow subsonic
            "jet_shortfall": _shortfall(vmax, 0.5 * p["jet_speed"]),
            "mach": vmax / cs,
        }
        bounds = {"inactive_shortfall": 0.0, "jet_shortfall": 0.0,
                  "mach": 0.9}
        details = {"inactive_blocks": inactive, "max_speed": vmax}
        _with_diag(residuals, bounds, "nonfinite",
                   _n_nonfinite(diagnostics), 0.0)
        return Score.check(residuals, bounds, details)


# ----------------------------------------------------------------------
# 6. cylinder wake (von Karman street)
# ----------------------------------------------------------------------
class CylinderWakeScenario(Scenario):
    name = "cylinder_wake"
    version = 1
    title = "Cylinder in a channel: a von Karman street develops"
    reference = "standard vortex-street qualification flow"
    params = {
        "nx": Param(160, "grid length", lo=96, hi=1024),
        "Re": Param(120, "Reynolds number (U D / nu)", lo=60, hi=300),
        "speed": Param(0.08, "free-stream speed", lo=0.02, hi=0.15),
        "radius_frac": Param(0.08, "cylinder radius / channel height",
                             lo=0.04, hi=0.15),
        "steps": Param(6000, "time steps", lo=1000),
    }

    def _derived(self, p):
        nx = p["nx"]
        ny = nx // 2
        diameter = 2.0 * p["radius_frac"] * ny
        nu = p["speed"] * diameter / p["Re"]
        # body force holding the mean flow against drag: 2x the plane
        # Poiseuille force for this centerline speed (the obstacle adds
        # blockage losses)
        g = 8.0 * nu * p["speed"] / (ny - 2.0) ** 2 * 2.0
        return nx, ny, diameter, nu, g

    def _build(self, p: dict[str, Any]) -> Case:
        nx, ny, _, nu, g = self._derived(p)
        spec = ProblemSpec(
            method="lb",
            grid_shape=(nx, ny),
            blocks=(4, 1),
            periodic=(True, False),
            params={"nu": nu, "gravity": (g, 0.0), "filter_eps": 0.01},
            geometry={"kind": "cylinder", "radius_frac": p["radius_frac"],
                      "center_frac": (0.25, 0.5)},
            # impulsive start: spinning the flow up from rest by body
            # force alone takes O(H^2/nu) ~ 10^5 steps
            init={"kind": "uniform_flow", "speed": p["speed"],
                  "perturb": 1e-2},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 4})

    def _score(self, p, fields, diagnostics) -> Score:
        nx, ny, diameter, _, _ = self._derived(p)
        case = self._build(p)
        solid, _, _ = case.spec.build_geometry()
        u = np.asarray(fields["u"])
        v = np.asarray(fields["v"])
        u_mean = float(u[~solid].mean())
        wake_ratio = float(np.abs(v[~solid]).max() / max(u_mean, 1e-12))
        # spatial wavelength of the street: dominant mode of v along
        # the centerline downstream of the cylinder
        x0 = nx // 4 + int(diameter)
        line = v[x0:, ny // 2]
        wavelength = np.nan
        if line.size >= 16:
            amp = np.abs(np.fft.rfft(line - line.mean()))
            k = int(np.argmax(amp[1:]) + 1)
            wavelength = line.size / k / diameter
        residuals = {
            # the mean flow must survive the blockage...
            "mean_flow_shortfall": _shortfall(u_mean / p["speed"], 0.25),
            # ...and carry transverse oscillations (the street)
            "wake_shortfall": _shortfall(wake_ratio, 0.3),
            # street spacing lands in a generous physical window
            "wavelength_dev": float(
                max(0.0, 3.0 - wavelength, wavelength - 15.0)
            ),
        }
        bounds = {"mean_flow_shortfall": 0.0, "wake_shortfall": 0.0,
                  "wavelength_dev": 0.0}
        details = {"u_mean": u_mean, "wake_ratio": wake_ratio,
                   "street_wavelength_D": wavelength}
        _with_diag(residuals, bounds, "mass_drift",
                   _mass_drift(diagnostics), 1e-3)
        return Score.check(residuals, bounds, details)


# ----------------------------------------------------------------------
# 7. acoustic standing wave
# ----------------------------------------------------------------------
class AcousticWaveScenario(Scenario):
    name = "acoustic_wave"
    version = 1
    title = "Standing-wave frequency vs the exact acoustic dispersion"
    reference = "omega = cs k (eq. 4's fast scale); KE oscillates at 2f"
    params = {
        "method": Param("lb", "solver", choices=("lb", "fd")),
        "nx": Param(64, "box length", lo=16, hi=512),
        "mode": Param(1, "standing-wave mode number", lo=1, hi=4),
        "nu": Param(1e-3, "kinematic viscosity", lo=1e-5, hi=0.05),
        "steps": Param(800, "time steps", lo=100),
    }

    def _build(self, p: dict[str, Any]) -> Case:
        spec = ProblemSpec(
            method=p["method"],
            grid_shape=(p["nx"], 8),
            blocks=(2, 1),
            periodic=(True, True),
            params={"nu": p["nu"], "filter_eps": 0.0},
            init={"kind": "standing_wave", "mode": p["mode"],
                  "amplitude": 1e-3},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 1})

    def _score(self, p, fields, diagnostics) -> Score:
        case = self._build(p)
        params = case.spec.build_params()
        ke = diag_series(diagnostics, "kinetic_energy")
        if ke.size < 64:
            return Score(
                passed=False,
                failures=["needs a per-step diagnostics series to "
                          "measure the oscillation"],
            )
        # KE ~ sin^2(omega t) oscillates at twice the wave frequency
        f_wave = acoustic_frequency(
            p["nx"] * params.dx, p["mode"], params.cs
        ) / (2.0 * np.pi)
        freq, _ = spectral_peak(ke, dt=params.dt)
        rel_err = float(abs(freq - 2.0 * f_wave) / (2.0 * f_wave))
        residuals = {"freq_rel_err": rel_err}
        bounds = {"freq_rel_err": 2e-2}
        details = {"frequency": freq, "expected": 2.0 * f_wave}
        _with_diag(residuals, bounds, "mass_drift",
                   _mass_drift(diagnostics), 1e-9)
        return Score.check(residuals, bounds, details)


# ----------------------------------------------------------------------
# 8. Taylor-Green vortex decay
# ----------------------------------------------------------------------
class TaylorGreenScenario(Scenario):
    name = "taylor_green"
    version = 1
    title = "Taylor-Green decay rate and vortex-center fidelity"
    reference = "exact Navier-Stokes solution: E(t) = E0 exp(-4 nu k^2 t)"
    params = {
        "n": Param(64, "periodic box side", lo=32, hi=256),
        "nu": Param(0.01, "kinematic viscosity", lo=1e-3, hi=0.1),
        "u0": Param(0.05, "initial velocity amplitude", lo=0.005,
                    hi=0.15),
        "steps": Param(2000, "time steps", lo=200),
    }

    def _build(self, p: dict[str, Any]) -> Case:
        n = p["n"]
        spec = ProblemSpec(
            method="lb",
            grid_shape=(n, n),
            blocks=(2, 2),
            periodic=(True, True),
            # the nonlinear filter adds artificial dissipation that
            # biases the measured decay rate; the exact solution needs
            # none
            params={"nu": p["nu"], "filter_eps": 0.0},
            init={"kind": "taylor_green", "u0": p["u0"]},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 50})

    def _score(self, p, fields, diagnostics) -> Score:
        n = p["n"]
        case = self._build(p)
        params = case.spec.build_params()
        ke = diag_series(diagnostics, "kinetic_energy")
        step = diag_series(diagnostics, "step")
        residuals: dict[str, float] = {}
        bounds: dict[str, float] = {}
        details: dict[str, Any] = {}
        if ke.size >= 4 and np.all(ke > 0):
            slope = np.polyfit(step * params.dt, np.log(ke), 1)[0]
            rate = taylor_green_decay_rate(n * params.dx, p["nu"])
            rel = float(abs(-slope - rate) / rate)
            residuals["decay_rel_err"] = rel
            bounds["decay_rel_err"] = 0.05
            details["decay_rate"] = float(-slope)
            details["expected_rate"] = rate
        else:
            residuals["decay_rel_err"] = np.nan
            bounds["decay_rel_err"] = 0.05
        # the vortex array must not wander: centers of the initial
        # condition sit at multiples of n/2 (psi extrema of cos kx cos ky)
        cx, cy = primary_vortex(
            np.asarray(fields["u"]), np.asarray(fields["v"])
        )
        half = n / 2.0
        drift = float(
            np.hypot(
                min(cx % half, half - cx % half),
                min(cy % half, half - cy % half),
            ) / n
        )
        residuals["center_drift"] = drift
        bounds["center_drift"] = 0.01
        details["center"] = (cx, cy)
        _with_diag(residuals, bounds, "mass_drift",
                   _mass_drift(diagnostics), 1e-11)
        return Score.check(residuals, bounds, details)


# ----------------------------------------------------------------------
# 9. hybrid FD/LB channel (the v2 region-map seam)
# ----------------------------------------------------------------------
class HybridChannelScenario(Scenario):
    name = "hybrid_channel"
    version = 1
    title = "Poiseuille across an FD/LB method seam (spec v2)"
    reference = "exact parabola; seam accuracy per the hybrid bench"
    params = {
        "ny": Param(32, "wall-normal grid nodes", lo=16, hi=128),
        "nu": Param(0.1, "kinematic viscosity", lo=1e-3, hi=0.5),
        "g": Param(1e-5, "body-force acceleration", lo=1e-8, hi=1e-3),
        "steps": Param(12000, "time steps", lo=100),
        "tol": Param(5e-3, "max relative profile error", lo=1e-5),
    }

    def _build(self, p: dict[str, Any]) -> Case:
        ny = p["ny"]
        nx = ny // 2
        spec = ProblemSpec(
            # LB resolves the lower wall, FD the upper half: the seam
            # runs along the block boundary at ny/2
            method={"default": "lb", "regions": [
                {"box": [[0, ny // 2], [nx, ny]], "method": "fd"},
            ]},
            grid_shape=(nx, ny),
            blocks=(1, 2),
            periodic=(True, False),
            params={"nu": p["nu"], "gravity": (p["g"], 0.0),
                    "filter_eps": 0.0},
            geometry={"kind": "channel"},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 1000})

    def _score(self, p, fields, diagnostics) -> Score:
        ny = p["ny"]
        u = np.asarray(fields["u"])
        # mixed wall placements: LB's bottom wall sits at -0.5, FD's
        # top wall at ny-1 -> effective height ny - 1.5
        y = np.arange(ny, dtype=float) - 0.5
        exact = poiseuille_profile(y, ny - 1.5, p["g"], p["nu"])
        sl = slice(1, ny - 1)
        err = float(
            np.abs(u[u.shape[0] // 2][sl] - exact[sl]).max()
            / exact.max()
        )
        residuals = {"profile_err": err}
        bounds = {"profile_err": p["tol"]}
        _with_diag(residuals, bounds, "mass_drift",
                   _mass_drift(diagnostics), 1e-6)
        return Score.check(residuals, bounds)


# ----------------------------------------------------------------------
# 10. conservation under random perturbation
# ----------------------------------------------------------------------
class ConservationScenario(Scenario):
    name = "conservation"
    version = 1
    title = "Mass invariance of a periodic box under random perturbation"
    reference = "exact discrete conservation of the LB collision"
    params = {
        "method": Param("lb", "solver", choices=("lb", "fd")),
        "n": Param(48, "periodic box side", lo=16, hi=256),
        "seed": Param(0, "perturbation seed", lo=0),
        "steps": Param(500, "time steps", lo=50),
    }

    def _build(self, p: dict[str, Any]) -> Case:
        n = p["n"]
        spec = ProblemSpec(
            method=p["method"],
            grid_shape=(n, n),
            blocks=(2, 2),
            periodic=(True, True),
            params={"nu": 0.05},
            init={"kind": "random", "seed": p["seed"],
                  "amplitude": 1e-3},
        )
        return Case(spec, {"steps": p["steps"], "diag_every": 50})

    def _score(self, p, fields, diagnostics) -> Score:
        residuals: dict[str, float] = {}
        bounds: dict[str, float] = {}
        # both solvers conserve mass to roundoff on a periodic box
        # (measured <= 4e-14 over 500 steps)
        _with_diag(residuals, bounds, "mass_drift",
                   _mass_drift(diagnostics), 1e-12)
        _with_diag(residuals, bounds, "nonfinite",
                   _n_nonfinite(diagnostics), 0.0)
        speed = diag_series(diagnostics, "max_speed")
        if speed.size:
            # a 1e-3 density perturbation must never accelerate the
            # fluid to more than a small fraction of sound speed
            residuals["max_speed"] = float(speed.max())
            bounds["max_speed"] = 0.05
        if not residuals:
            return Score(
                passed=False,
                failures=["needs a diagnostics series to audit "
                          "conservation"],
            )
        return Score.check(residuals, bounds)


def _register_all() -> None:
    for cls in (
        PoiseuilleScenario,
        Duct3DScenario,
        CavityScenario,
        FluePipeScenario,
        FluePipeChannelScenario,
        CylinderWakeScenario,
        AcousticWaveScenario,
        TaylorGreenScenario,
        HybridChannelScenario,
        ConservationScenario,
    ):
        register(cls())


_register_all()
