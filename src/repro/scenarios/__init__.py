"""repro.scenarios — declarative scenario library and sweep engine.

A :class:`Scenario` packages one validated flow as *data*: a parameter
schema with defaults and ranges, a builder producing a
:class:`~repro.distrib.ProblemSpec` + run settings, and a ``score()``
contract comparing a finished run against analytic or literature
references.  The registry feeds ``repro scenarios`` and the
``repro sweep`` driver, which expands parameter grids into jobs and
fans them through the :mod:`repro.serve` layer (where identical points
hit the result cache) or a local executor.
"""

from .base import (
    Case,
    Param,
    Scenario,
    Score,
    all_scenarios,
    diag_series,
    get,
    names,
    register,
)
from . import library  # noqa: F401  (imports register the library)
from .library import HOU_CAVITY_CENTERS
from .sweep import (
    SweepPoint,
    expand_grid,
    parse_grid,
    run_case,
    run_sweep,
    write_report,
)

__all__ = [
    "Case",
    "Param",
    "Scenario",
    "Score",
    "SweepPoint",
    "HOU_CAVITY_CENTERS",
    "all_scenarios",
    "diag_series",
    "expand_grid",
    "get",
    "names",
    "parse_grid",
    "register",
    "run_case",
    "run_sweep",
    "write_report",
]
