"""Scenario contracts: parameter schemas, scored observables, registry.

The paper validates on exactly two flows (Poiseuille and the flue-pipe
jet, figs. 1-2); this package grows that into a library of named,
versioned scenarios.  A :class:`Scenario` is a *declarative spec
builder* — geometry, boundary conditions, forcing and initial state
expressed as a :class:`~repro.distrib.ProblemSpec` plus run settings —
paired with **scored expected observables**: :meth:`Scenario.score`
compares a run's final fields and diagnostics time series against
analytic or literature references (parabolic profiles, Hou et al.
vortex centers, quarter-wave tones, conservation bounds) and returns a
:class:`Score` of pass/fail plus numeric residuals.

Because a scenario case is *pure data* ``(spec, settings, seed)``, it
routes through every backend — including the :mod:`repro.serve` job
layer, where identical cases hit the content-hash result cache — and
scoring needs nothing beyond what the service returns: the final
fields and the diagnostics stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..distrib import ProblemSpec

__all__ = [
    "Param",
    "Case",
    "Score",
    "Scenario",
    "register",
    "get",
    "names",
    "all_scenarios",
]


@dataclass(frozen=True)
class Param:
    """One knob of a scenario's parameter schema.

    ``lo``/``hi`` bound numeric values (inclusive); ``choices``
    enumerates categorical ones.  Both are validated loudly in
    :meth:`Scenario.resolve` so a sweep grid can't silently request a
    case the scenario was never calibrated for.
    """

    default: Any
    doc: str = ""
    lo: float | None = None
    hi: float | None = None
    choices: tuple | None = None

    def validate(self, name: str, value: Any) -> Any:
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"param {name}={value!r} not in {self.choices}"
            )
        if isinstance(self.default, bool):
            return bool(value)
        if isinstance(self.default, int) and not isinstance(value, bool):
            value = int(value)
        elif isinstance(self.default, float):
            value = float(value)
        if self.lo is not None and value < self.lo:
            raise ValueError(f"param {name}={value} below minimum {self.lo}")
        if self.hi is not None and value > self.hi:
            raise ValueError(f"param {name}={value} above maximum {self.hi}")
        return value


@dataclass(frozen=True)
class Case:
    """A fully resolved, runnable instance of a scenario.

    ``settings`` holds *physical* run knobs (``steps``, ``diag_every``)
    destined for :class:`~repro.distrib.RunSettings`; with ``spec`` and
    ``seed`` they form exactly the content-hash identity of the serve
    layer, so two sweeps over the same grid share cached results.
    """

    spec: ProblemSpec
    settings: dict[str, Any] = field(default_factory=dict)
    seed: int = 0


@dataclass
class Score:
    """Outcome of scoring one run against a scenario's references.

    ``residuals`` are the measured numbers, ``bounds`` the documented
    tolerances they must stay under; a residual without a bound is
    recorded for the report but never gates.  ``passed`` is the single
    CI-facing verdict.
    """

    passed: bool
    residuals: dict[str, float] = field(default_factory=dict)
    bounds: dict[str, float] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def check(
        cls,
        residuals: Mapping[str, float],
        bounds: Mapping[str, float],
        details: Mapping[str, Any] | None = None,
    ) -> "Score":
        """Gate every bounded residual; collect the violations."""
        failures = []
        for name, bound in bounds.items():
            value = residuals.get(name)
            if value is None or not np.isfinite(value):
                failures.append(f"{name}: missing or non-finite")
            elif value > bound:
                failures.append(f"{name}: {value:.4g} > {bound:g}")
        return cls(
            passed=not failures,
            residuals={k: float(v) for k, v in residuals.items()},
            bounds=dict(bounds),
            failures=failures,
            details=dict(details or {}),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "residuals": self.residuals,
            "bounds": self.bounds,
            "failures": self.failures,
            "details": self.details,
        }


def diag_series(
    diagnostics: Sequence[Any], name: str
) -> np.ndarray:
    """Extract one column from a diagnostics time series.

    Accepts both in-process :class:`~repro.distrib.DiagRecord` objects
    and the plain dicts that come back from ``diagnostics.jsonl`` /
    the serve stream — scoring must not care which executor ran the
    case.
    """
    out = []
    for rec in diagnostics:
        if isinstance(rec, Mapping):
            if name in rec:
                out.append(rec[name])
        else:
            value = getattr(rec, name, None)
            if value is not None:
                out.append(value)
    return np.asarray(out, dtype=float)


class Scenario:
    """Base class: subclasses define ``_build`` and ``_score``.

    Class attributes
    ----------------
    name, version:
        Registry identity.  Bump ``version`` whenever ``_build`` output
        or score references change — reports carry it so old sweep
        manifests are never compared against new physics.
    title, reference:
        One-line description and the literature/analytic reference the
        score checks against.
    params:
        The parameter schema (name -> :class:`Param`).
    """

    name: str = ""
    version: int = 1
    title: str = ""
    reference: str = ""
    params: dict[str, Param] = {}

    # ------------------------------------------------------------------
    def resolve(self, **overrides: Any) -> dict[str, Any]:
        """Defaults + overrides, validated against the schema."""
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no params {sorted(unknown)}; "
                f"available: {sorted(self.params)}"
            )
        resolved = {k: p.default for k, p in self.params.items()}
        for k, v in overrides.items():
            resolved[k] = self.params[k].validate(k, v)
        return resolved

    def case(self, **overrides: Any) -> Case:
        """Build the runnable (spec, settings, seed) for these params."""
        return self._build(self.resolve(**overrides))

    def score(
        self,
        fields: Mapping[str, np.ndarray],
        diagnostics: Sequence[Any] = (),
        **overrides: Any,
    ) -> Score:
        """Score a finished run of :meth:`case` with the same params."""
        return self._score(self.resolve(**overrides), fields, diagnostics)

    def describe(self) -> dict[str, Any]:
        """Registry metadata for ``repro scenarios list/show``."""
        return {
            "name": self.name,
            "version": self.version,
            "title": self.title,
            "reference": self.reference,
            "params": {
                k: {
                    "default": p.default,
                    "doc": p.doc,
                    **({"lo": p.lo} if p.lo is not None else {}),
                    **({"hi": p.hi} if p.hi is not None else {}),
                    **({"choices": list(p.choices)}
                       if p.choices is not None else {}),
                }
                for k, p in self.params.items()
            },
        }

    # subclass hooks ---------------------------------------------------
    def _build(self, p: dict[str, Any]) -> Case:
        raise NotImplementedError

    def _score(
        self,
        p: dict[str, Any],
        fields: Mapping[str, np.ndarray],
        diagnostics: Sequence[Any],
    ) -> Score:
        raise NotImplementedError


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the global registry (duplicate names are loud)."""
    if not scenario.name:
        raise ValueError("scenario must set a name")
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(names())}"
        ) from None


def names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> tuple[Scenario, ...]:
    return tuple(_REGISTRY[n] for n in names())
