"""The sweep engine: parameter grids fanned across the cluster.

``repro sweep --scenario cavity --grid Re=100,400,1000`` expands a
cartesian parameter grid into scenario cases and marches each one —
either through a live :mod:`repro.serve` gateway (submitted as one
batch so the scheduler can pack workers; identical points come back
from the result cache with zero compute) or through a local backend as
the fallback executor.  Every finished point is scored by the scenario
and appended to a ``sweep.jsonl`` manifest, which doubles as the resume
journal: re-running the same sweep skips points the manifest already
settles, so an interrupted overnight sweep continues where it stopped.
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from .base import Case, Scenario, Score

__all__ = [
    "SweepPoint",
    "parse_grid",
    "expand_grid",
    "run_case",
    "run_sweep",
    "write_report",
]


@dataclass
class SweepPoint:
    """One grid point's outcome (one manifest line)."""

    scenario: str
    version: int
    params: dict[str, Any]
    state: str = "pending"          # pending | done | failed
    score: dict[str, Any] | None = None
    job_id: str = ""                # service executor only
    cached: bool = False            # answered from the gateway cache
    elapsed: float = 0.0            # compute seconds (0 for cache hits)
    nodes_per_sec: float = 0.0      # grid nodes x steps / elapsed
    error: str = ""

    @property
    def passed(self) -> bool:
        return (self.state == "done" and self.score is not None
                and bool(self.score.get("passed")))

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @property
    def key(self) -> str:
        """Identity of the point inside one sweep manifest."""
        return json.dumps(
            [self.scenario, self.version, self.params], sort_keys=True
        )


def _parse_value(text: str) -> Any:
    """One grid value: int, then float, then bool, then bare string."""
    t = text.strip()
    for cast in (int, float):
        try:
            return cast(t)
        except ValueError:
            pass
    if t.lower() in ("true", "false"):
        return t.lower() == "true"
    return t


def parse_grid(items: Iterable[str]) -> dict[str, list[Any]]:
    """Parse ``name=v1,v2,...`` grid arguments (the CLI form)."""
    grid: dict[str, list[Any]] = {}
    for item in items:
        name, sep, values = item.partition("=")
        if not sep or not name.strip() or not values.strip():
            raise ValueError(
                f"grid argument {item!r} must look like Re=100,400"
            )
        name = name.strip()
        if name in grid:
            raise ValueError(f"grid parameter {name!r} given twice")
        grid[name] = [_parse_value(v) for v in values.split(",")]
    return grid


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of a parameter grid, deterministic order.

    ``{}`` expands to the single all-defaults point.
    """
    if not grid:
        return [{}]
    names = list(grid)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[n] for n in names))
    ]


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
def _case_nodes(case: Case) -> int:
    return int(math.prod(case.spec.grid_shape))


def run_case(case: Case, backend: str = "serial",
             workdir: str | Path | None = None):
    """March one case on a local backend; returns the RunResult."""
    from ..distrib.orchestrator import RunSettings
    from ..facade import run

    settings = RunSettings(**case.settings)
    return run(case.spec, backend=backend, settings=settings,
               workdir=workdir)


def _fetch_service(client, job_id: str, timeout: float):
    """(fields, diagnostics, record) of a finished service job.

    The diagnostics come off the job's stream endpoint, which replays
    the run's ``diagnostics.jsonl`` (cache-aware) before the end event.
    """
    record = client.wait(job_id, timeout=timeout)
    if record["state"] != "done":
        raise RuntimeError(
            f"job {job_id} ended {record['state']}: "
            f"{record.get('error') or 'no error recorded'}"
        )
    fields = client.fields(job_id)
    diagnostics = [
        event["record"]
        for event in client.stream(job_id)
        if event.get("event") == "diagnostics"
    ]
    return fields, diagnostics, record


def _score_safely(scenario: Scenario, params, fields, diagnostics) -> Score:
    try:
        return scenario.score(fields, diagnostics, **params)
    except Exception as exc:  # noqa: BLE001 - a score bug fails the point
        return Score(passed=False,
                     failures=[f"scoring raised {type(exc).__name__}: "
                               f"{exc}"])


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def run_sweep(
    scenario: Scenario,
    grid: Mapping[str, Sequence[Any]],
    *,
    backend: str = "serial",
    server: Any = None,
    out_dir: str | Path | None = None,
    resume: bool = True,
    timeout: float = 600.0,
    log: Callable[[str], None] | None = None,
) -> list[SweepPoint]:
    """Expand ``grid`` over ``scenario`` and march + score every point.

    With ``server`` the points are submitted to the gateway as one
    batch and collected as they finish (the cluster executor);
    otherwise each point runs on the local ``backend`` in sequence (the
    fallback executor).  ``out_dir`` holds the ``sweep.jsonl`` manifest
    — with ``resume`` (default) points already settled there are not
    recomputed.  Returns every point of the grid, resumed ones
    included.
    """
    emit = log or (lambda msg: None)
    points = [
        SweepPoint(scenario=scenario.name, version=scenario.version,
                   params=scenario.resolve(**p))
        for p in expand_grid(grid)
    ]
    manifest: Path | None = None
    settled: dict[str, SweepPoint] = {}
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        manifest = out_dir / "sweep.jsonl"
        if resume and manifest.exists():
            for line in manifest.read_text().splitlines():
                try:
                    prev = SweepPoint(**json.loads(line))
                except (ValueError, TypeError):
                    continue  # torn or incompatible line
                if prev.state == "done":
                    settled[prev.key] = prev

    def record(point: SweepPoint) -> None:
        if manifest is not None:
            with open(manifest, "a") as fh:
                fh.write(json.dumps(point.to_dict()) + "\n")

    pending: list[SweepPoint] = []
    for point in points:
        if point.key in settled:
            emit(f"resumed {point.params} (manifest)")
        else:
            pending.append(point)

    if pending:
        if server is not None:
            _run_service_points(scenario, pending, server, timeout,
                                record, emit)
        else:
            _run_local_points(scenario, pending, backend, record, emit)
    return [settled.get(p.key, p) for p in points]


def _finish(point: SweepPoint, scenario: Scenario, fields, diagnostics,
            case: Case, elapsed: float, record, emit) -> None:
    score = _score_safely(scenario, point.params, fields, diagnostics)
    point.score = score.to_dict()
    point.state = "done"
    point.elapsed = float(elapsed)
    steps = int(case.settings.get("steps", 0))
    if elapsed > 0 and steps:
        point.nodes_per_sec = _case_nodes(case) * steps / elapsed
    record(point)
    verdict = "pass" if point.passed else "FAIL"
    emit(f"{verdict} {point.params} "
         f"({'cached' if point.cached else f'{elapsed:.1f}s'})")


def _fail(point: SweepPoint, exc: Exception, record, emit) -> None:
    point.state = "failed"
    point.error = f"{type(exc).__name__}: {exc}"
    record(point)
    emit(f"ERROR {point.params}: {point.error}")


def _run_local_points(scenario, pending, backend, record, emit) -> None:
    for point in pending:
        case = scenario.case(**point.params)
        try:
            result = run_case(case, backend=backend)
        except Exception as exc:  # noqa: BLE001 - isolate per point
            _fail(point, exc, record, emit)
            continue
        _finish(point, scenario, result.fields, result.diagnostics,
                case, result.elapsed, record, emit)


def _run_service_points(scenario, pending, server, timeout, record,
                        emit) -> None:
    from ..serve.client import ServeClient

    client = server if isinstance(server, ServeClient) \
        else ServeClient(server)
    cases = [scenario.case(**point.params) for point in pending]
    submitted = client.submit_batch([
        {"spec": case.spec, "settings": dict(case.settings),
         "seed": case.seed}
        for case in cases
    ])
    emit(f"submitted {len(submitted)} jobs "
         f"({sum(1 for r in submitted if r.get('cached'))} cached)")
    for point, case, rec in zip(pending, cases, submitted):
        point.job_id = rec["job_id"]
        try:
            fields, diagnostics, final = _fetch_service(
                client, rec["job_id"], timeout
            )
        except Exception as exc:  # noqa: BLE001 - isolate per point
            _fail(point, exc, record, emit)
            continue
        point.cached = bool(final.get("cached"))
        _finish(point, scenario, fields, diagnostics, case,
                float(final.get("elapsed") or 0.0), record, emit)


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 1e-2:
        return f"{value:.3g}"
    return f"{value:.4f}".rstrip("0").rstrip(".")


def write_report(
    points: Sequence[SweepPoint],
    out_dir: str | Path,
    scenario: Scenario | None = None,
) -> Path:
    """Write ``summary.json`` + ``summary.md`` for a finished sweep.

    Returns the markdown path.  The table carries one row per point:
    parameters, verdict, each scored residual against its bound, and
    throughput (grid nodes x steps per compute second; cache hits show
    as "cached").
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "summary.json").write_text(json.dumps({
        "scenario": scenario.name if scenario else
            (points[0].scenario if points else ""),
        "points": [p.to_dict() for p in points],
        "passed": sum(1 for p in points if p.passed),
        "failed": sum(1 for p in points if not p.passed),
    }, indent=2))

    residual_names: list[str] = []
    for p in points:
        for name in (p.score or {}).get("residuals", {}):
            if name not in residual_names:
                residual_names.append(name)
    lines = []
    title = scenario.name if scenario else \
        (points[0].scenario if points else "sweep")
    lines.append(f"# Sweep: {title}")
    lines.append("")
    if scenario is not None:
        lines.append(f"{scenario.title} (v{scenario.version}; "
                     f"reference: {scenario.reference})")
        lines.append("")
    header = ["params", "score"] + residual_names + ["nodes/s"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for p in points:
        params = ", ".join(f"{k}={v}" for k, v in p.params.items()) \
            or "(defaults)"
        if p.state == "failed":
            verdict = "error"
        else:
            verdict = "pass" if p.passed else "**FAIL**"
        row = [params, verdict]
        score = p.score or {}
        for name in residual_names:
            value = score.get("residuals", {}).get(name)
            bound = score.get("bounds", {}).get(name)
            if value is None:
                row.append("-")
            elif bound is not None:
                row.append(f"{_fmt(value)} (<= {_fmt(bound)})")
            else:
                row.append(_fmt(value))
        row.append("cached" if p.cached else
                   (_fmt(p.nodes_per_sec) if p.nodes_per_sec else "-"))
        lines.append("| " + " | ".join(row) + " |")
    failures = [
        f"- `{p.params}`: " + "; ".join(
            (p.score or {}).get("failures", []) or [p.error or "failed"]
        )
        for p in points if not p.passed
    ]
    if failures:
        lines.append("")
        lines.append("## Failures")
        lines.extend(failures)
    md = out_dir / "summary.md"
    md.write_text("\n".join(lines) + "\n")
    return md
