"""One entry point over the five runtimes: :func:`repro.run`.

The repo grew five ways to march the same problem — the serial
:class:`~repro.core.Simulation`, the in-process
:class:`~repro.core.ThreadedSimulation`, the socket-distributed
:class:`~repro.distrib.DistributedRun`, the discrete-event
:class:`~repro.cluster.ClusterSimulation` and the remote
:mod:`repro.serve` gateway (``backend="service"``) — each with its own
construction ritual.  They all consume the same
:class:`~repro.distrib.ProblemSpec` and they are all instrumented by the
same :mod:`repro.trace` layer, so one facade can drive any of them::

    import repro
    from repro.distrib import ProblemSpec, RunSettings

    spec = ProblemSpec(method="fd", grid_shape=(64, 32), blocks=(2, 2),
                       periodic=(True, False),
                       geometry={"kind": "channel"})
    result = repro.run(spec, backend="distributed",
                       settings=RunSettings(steps=100, trace=True))
    print(result.fields["rho"].shape, result.utilization)

Every backend returns the same :class:`RunResult`: the final global
fields (``None`` for the purely-temporal simulated backend), the
in-flight diagnostics records, and — when tracing was requested — the
merged Chrome trace path plus the §7 per-rank T_comp/T_comm breakdown.
The per-backend classes remain public for fine-grained control (live
monitors, custom host databases, mid-run migration); for everything
else, prefer this function.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .trace import NULL_TRACER, Tracer, TraceSummary, summarize, \
    write_chrome_trace

__all__ = ["run", "RunResult", "BACKENDS"]

#: The runtimes :func:`run` can dispatch one problem to.  The first
#: four execute locally; ``"service"`` submits to a running
#: :class:`repro.serve.Gateway` and waits (pass ``server=``).
BACKENDS = ("serial", "threaded", "distributed", "simulated", "service")


@dataclass
class RunResult:
    """What every backend of :func:`run` returns.

    ``fields`` holds the reassembled global arrays (``None`` for the
    simulated backend, which models time, not state).  ``diagnostics``
    are the in-flight :class:`~repro.distrib.diagnostics.DiagRecord`
    samples when ``diag_every`` was set.  When the run traced itself,
    ``trace_path`` points at the merged Chrome trace JSON (loadable in
    Perfetto) and ``trace_summary`` carries the §7 breakdown.
    """

    backend: str
    steps: int
    elapsed: float                      # wall (or simulated) seconds
    fields: dict[str, np.ndarray] | None = None
    diagnostics: list = field(default_factory=list)
    trace_path: Path | None = None
    trace_summary: TraceSummary | None = None
    workdir: Path | None = None
    sim: Any = None                     # SimResult of the simulated backend
    migrations: int = 0                 # §5.1 epochs the run executed
    rebalances: int = 0                 # rebalance epochs (re-cut domains)
    job_id: str = ""                    # service-backend job id
    cached: bool = False                # served from the gateway's cache

    @property
    def timings(self) -> dict[int, dict[str, float]]:
        """Per-rank ``{rank: {t_comp, t_comm, t_other, utilization}}``.

        Empty when the run did not trace itself.
        """
        if self.trace_summary is None:
            return {}
        return self.trace_summary.timings()

    @property
    def utilization(self) -> float | None:
        """Eq. 8's ``f`` from the trace (``None`` without a trace)."""
        if self.trace_summary is None:
            return None
        return self.trace_summary.utilization


def _settings(settings, steps):
    from .distrib.orchestrator import RunSettings

    if settings is None:
        if steps is None:
            raise ValueError("pass steps= or settings=")
        return RunSettings(steps=int(steps))
    if steps is not None and steps != settings.steps:
        raise ValueError(
            f"steps={steps} contradicts settings.steps={settings.steps}"
        )
    return settings


def _initial_fields(spec, fields):
    if fields is not None:
        return dict(fields)
    from .distrib.initprog import initial_fields

    # kind=None resolves the spec's declarative init (rest by default)
    return initial_fields(spec, None)


def _uniform_side(spec) -> int:
    sides = {
        g // b for g, b in zip(spec.grid_shape, spec.blocks) if b > 1
    } or {spec.grid_shape[0] // spec.blocks[0]}
    if len(sides) != 1:
        raise ValueError(
            "the simulated backend needs a uniform subregion side; "
            f"grid {spec.grid_shape} / blocks {spec.blocks} gives {sides}"
        )
    return sides.pop()


def _finish_trace(result: RunResult, trace_dir: Path) -> None:
    """Merge per-rank streams and attach summary + path to the result."""
    if not any(trace_dir.glob("trace-*.jsonl")):
        return
    out = trace_dir / "trace.json"
    if not out.exists():
        write_chrome_trace(trace_dir, out)
    result.trace_path = out
    result.trace_summary = summarize(trace_dir)


def _run_inprocess(spec, fields, settings, workdir, threaded: bool,
                   n_steps: int, persist_diag: bool = False) -> RunResult:
    from .core.runner import Simulation
    from .core.threaded import ThreadedSimulation

    solid, _, _ = spec.build_geometry()
    decomp = spec.build_decomposition()
    # settings.backend names the kernel backend (repro.fluids.backends);
    # the distributed runtime routes the same knob (or the per-rank
    # settings.backends list) to each worker via the shared base cfg.
    converters = None
    if spec.is_hybrid:
        from .fluids.coupling import build_converters

        methods = spec.build_methods(backend=settings.backend or None)
        converters = build_converters(decomp, methods)
        method = list(methods)
    else:
        method = spec.build_method(backend=settings.backend or None)
    tracer = NULL_TRACER
    trace_dir = None
    if settings.trace:
        trace_dir = Path(workdir) / "trace"
        tracer = Tracer(trace_dir / "trace-0000.jsonl", rank=0,
                        job=settings.job_id)
    # With an explicit workdir the in-process runs persist their
    # diagnostics to the same diagnostics.jsonl a distributed run
    # streams — appended record by record, so the serve gateway can
    # tail a small job live exactly like a large one.
    diag_log = None
    if persist_diag and settings.diag_every > 0:
        from .distrib.diagnostics import DiagnosticsLog

        diag_log = DiagnosticsLog.for_workdir(workdir)
    # settings.step_delays (or the scalar step_delay) is the same
    # synthetic-load knob the distributed workers honour.
    delays = list(settings.step_delays)
    if not delays and settings.step_delay > 0:
        delays = [settings.step_delay] * len(decomp.active_blocks())
    # Dependency-driven execution (repro.graph): plan the task DAG and
    # solve it on a *serial* Simulation with the graph executor's
    # thread pool — same concurrency as the threaded runner, no step
    # barrier, bit-for-bit the same result.
    graph_mode = threaded and settings.execution == "graph"
    executor = None
    if graph_mode:
        from .graph import GraphExecutor, plan_graph

        sim = Simulation(
            method, decomp, fields, solid, tracer=tracer,
            converters=converters,
        )
        graph = plan_graph(
            decomp, sim.methods, n_steps,
            converter_edges=tuple(sorted(converters))
            if converters else (),
            diag_every=settings.diag_every,
            save_every=settings.save_every,
        )
        ckpt_dir = (
            Path(workdir) / "dumps" if settings.save_every > 0 else None
        )
        executor = GraphExecutor(
            sim, graph,
            step_delays=delays,
            stall_factor=settings.stall_factor,
            stall_floor=settings.stall_floor,
            diag_algorithm=settings.diag_algorithm,
            checkpoint_dir=ckpt_dir,
        )
    elif threaded:
        sim = ThreadedSimulation(
            method, decomp, fields, solid,
            diag_every=settings.diag_every,
            diag_algorithm=settings.diag_algorithm,
            diag_vmax=settings.diag_vmax,
            tracer=tracer,
            converters=converters,
            step_delays=delays,
        )
    else:
        sim = Simulation(
            method, decomp, fields, solid, tracer=tracer,
            converters=converters,
        )
    diagnostics: list = []
    t0 = time.perf_counter()
    if graph_mode:
        executor.run()
        diagnostics = list(executor.diagnostics)
        if diag_log is not None:
            for rec in diagnostics:
                diag_log.append(rec)
    elif not threaded and settings.diag_every > 0:
        # sample the same global reductions a distributed run would
        every = settings.diag_every
        done = 0
        while done < n_steps:
            chunk = min(every - sim.step_count % every, n_steps - done)
            sim.step(chunk)
            done += chunk
            if sim.step_count % every == 0:
                rec = sim.global_diagnostics(settings.diag_algorithm)
                diagnostics.append(rec)
                if diag_log is not None:
                    diag_log.append(rec)
    else:
        sim.step(n_steps)
        diagnostics = list(getattr(sim, "diagnostics", []))
        if diag_log is not None:
            for rec in diagnostics:
                diag_log.append(rec)
    elapsed = time.perf_counter() - t0
    if threaded and not graph_mode:
        sim.close()
    tracer.close()
    result = RunResult(
        backend="threaded" if threaded else "serial",
        steps=n_steps,
        elapsed=elapsed,
        fields=sim.global_state(),
        diagnostics=diagnostics,
        workdir=Path(workdir) if trace_dir is not None else None,
    )
    if trace_dir is not None:
        _finish_trace(result, trace_dir)
    return result


def _run_distributed(spec, fields, settings, workdir) -> RunResult:
    from .distrib.diagnostics import DiagnosticsLog
    from .distrib.orchestrator import DistributedRun

    workdir = Path(workdir)
    t0 = time.perf_counter()
    dist = DistributedRun(spec, fields, workdir, settings)
    dist.start()
    dist.wait()
    out = dist.collect()
    elapsed = time.perf_counter() - t0
    mon = dist.monitor
    result = RunResult(
        backend="distributed",
        steps=settings.steps,
        elapsed=elapsed,
        fields=out,
        diagnostics=DiagnosticsLog.for_workdir(workdir).read(),
        workdir=workdir,
        migrations=mon.migrations if mon is not None else 0,
        rebalances=mon.rebalances if mon is not None else 0,
    )
    _finish_trace(result, workdir / "trace")
    return result


def _run_simulated(spec, settings, workdir) -> RunResult:
    from .cluster.simulator import ClusterSimulation

    trace_dir = Path(workdir) / "trace" if settings.trace else None
    sim = ClusterSimulation(
        spec.methods_by_rank() if spec.is_hybrid else spec.method,
        spec.ndim,
        spec.blocks,
        _uniform_side(spec),
        diag_every=settings.diag_every,
        collective_algorithm=settings.diag_algorithm,
        trace_dir=trace_dir,
    )
    res = sim.run(steps=settings.steps)
    result = RunResult(
        backend="simulated",
        steps=settings.steps,
        elapsed=res.elapsed,
        fields=None,
        sim=res,
        workdir=Path(workdir) if trace_dir is not None else None,
        migrations=len(res.migrations),
        rebalances=len(res.rebalances),
    )
    if trace_dir is not None:
        _finish_trace(result, trace_dir)
    return result


def _run_service(spec, settings, server) -> RunResult:
    from .serve.client import ServeClient

    client = ServeClient(server)
    submitted = client.submit(spec, settings=settings)
    job_id = submitted["job_id"]
    timeout = settings.run_timeout if settings.run_timeout > 0 else 600.0
    record = client.wait(job_id, timeout=timeout)
    if record["state"] != "done":
        raise RuntimeError(
            f"service job {job_id} ended {record['state']}: "
            f"{record.get('error') or 'no error recorded'}"
        )
    payload = client.result(job_id)
    fields = dict(client.fields(job_id))
    result = payload.get("result", {})
    return RunResult(
        backend="service",
        steps=int(record.get("steps") or settings.steps),
        elapsed=float(record.get("elapsed") or 0.0),
        fields=fields,
        job_id=job_id,
        cached=bool(record.get("cached")),
        migrations=int(result.get("migrations") or 0),
        rebalances=int(result.get("rebalances") or 0),
    )


def run(
    spec,
    backend: str = "serial",
    settings=None,
    *,
    steps: int | None = None,
    fields: Mapping[str, np.ndarray] | None = None,
    workdir: str | Path | None = None,
    server: Any = None,
) -> RunResult:
    """March one :class:`~repro.distrib.ProblemSpec` on any backend.

    Parameters
    ----------
    spec:
        The problem (method, grid, decomposition, geometry).
    backend:
        ``"serial"`` (in-process, subregions stepped sequentially),
        ``"threaded"`` (one thread per subregion), ``"distributed"``
        (one OS process per rank over TCP/UDP, monitored and
        migratable), ``"simulated"`` (the discrete-event 1994-cluster
        model — time only, no field data) or ``"service"`` (submit to a
        running :class:`repro.serve.Gateway` named by ``server=`` and
        wait; identical submissions come back from its result cache).
    settings:
        A :class:`~repro.distrib.RunSettings`; every backend honours
        ``steps``, ``trace``, ``diag_every`` and ``diag_algorithm``,
        the distributed backend all of it.  ``steps=`` alone is enough
        when the defaults do.
    steps:
        Shorthand for ``settings=RunSettings(steps=...)``.
    fields:
        Initial global arrays; defaults to the spec's fluid at rest.
    workdir:
        Where the distributed backend decomposes the problem and where
        any backend writes its trace streams; a temporary directory is
        created when omitted but needed.
    server:
        For ``backend="service"``: the gateway to submit to — a
        ``"host:port"`` address, or the serve directory (whose
        ``gateway.json`` names the live address).

    Returns
    -------
    RunResult
        Final fields, diagnostics records, and — with
        ``settings.trace`` — the merged Chrome trace and §7 breakdown.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    settings = _settings(settings, steps)
    if backend == "service":
        if server is None:
            raise ValueError(
                'backend="service" needs server= (a "host:port" '
                "gateway address or the serve directory)"
            )
        if fields is not None:
            raise ValueError(
                "the service backend initializes fields from the spec"
            )
        return _run_service(spec, settings, server)
    if workdir is None and (settings.trace or backend == "distributed"):
        workdir = tempfile.mkdtemp(prefix=f"repro-{backend}-")
        if backend == "distributed":
            # DistributedRun insists on an empty directory
            workdir = Path(workdir) / "run"
    if backend == "simulated":
        if fields is not None:
            raise ValueError(
                "the simulated backend models time, not field data"
            )
        return _run_simulated(spec, settings, workdir or ".")
    init = _initial_fields(spec, fields)
    if backend == "distributed":
        return _run_distributed(spec, init, settings, workdir)
    return _run_inprocess(
        spec, init, settings, workdir or ".",
        threaded=(backend == "threaded"), n_steps=settings.steps,
        persist_diag=(workdir is not None),
    )
