"""Merge per-rank JSONL traces into one Chrome trace-event JSON.

The workers of a distributed run each stream their own
``trace-<rank>.jsonl`` (no shared file, no synchronization on the data
path); the monitoring program — or ``python -m repro.tools trace`` —
merges them after the fact.  The output is the Chrome trace-event
format (JSON object with a ``traceEvents`` array of complete/``X``
events), which loads directly in ``chrome://tracing`` and Perfetto:
one *process* lane per rank, one *thread* row per tid (the threaded
runner's workers), counter (``C``) tracks for the per-peer channel
traffic.

Cross-rank alignment uses each meta line's ``(wall_t0, clock_t0)``
pair: rank clocks are monotonic with unrelated origins, so span
timestamps are shifted by the rank's wall-clock origin relative to the
earliest rank.  Wall clocks enter *only* as per-file origin records —
every duration and deadline in the runtimes stays monotonic.
Simulated traces have zero origins on every rank and align exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["trace_files", "load_trace", "merge_traces",
           "write_chrome_trace"]


def trace_files(where: str | Path) -> list[Path]:
    """The per-rank trace files under a run directory.

    Accepts the run's workdir (looks in its ``trace/`` subdirectory), a
    directory of ``trace-*.jsonl`` files, or a single ``.jsonl`` file.
    """
    p = Path(where)
    if p.is_file():
        return [p]
    for candidate in (p / "trace", p):
        files = sorted(candidate.glob("trace-*.jsonl"))
        if files:
            return files
    raise FileNotFoundError(f"no trace-*.jsonl under {p}")


def load_trace(path: str | Path) -> dict:
    """Parse one rank's JSONL trace into ``{meta, spans, counters, end}``.

    Tolerates a torn final line (a rank killed mid-append) and a
    missing footer; a missing meta line yields zero origins.
    """
    meta = {"rank": 0, "wall_t0": 0.0, "clock_t0": 0.0, "sim": False}
    spans: list[dict] = []
    counters: list[dict] = []
    end: dict | None = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:  # torn tail line
                continue
            kind = rec.get("type")
            if kind == "span":
                spans.append(rec)
            elif kind == "counter":
                counters.append(rec)
            elif kind == "meta":
                meta.update(rec)
            elif kind == "end":
                end = rec
    return {"meta": meta, "spans": spans, "counters": counters,
            "end": end}


def merge_traces(paths: Iterable[str | Path]) -> dict:
    """Merge rank traces into a Chrome trace-event JSON object.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms",
    "otherData": {...}}``.  Each rank becomes a ``pid`` with a
    process-name metadata event; spans become complete (``X``) events
    with microsecond timestamps; counters become ``C`` events (bytes
    per peer and direction).
    """
    loaded = [load_trace(p) for p in paths]
    if not loaded:
        raise ValueError("no trace files to merge")
    origin = min(t["meta"]["wall_t0"] for t in loaded)
    events: list[dict] = []
    dropped_total = 0
    for t in loaded:
        meta = t["meta"]
        rank = int(meta["rank"])
        # A span at clock value c happened at wall time
        # wall_t0 + (c - clock_t0); shift everything so the earliest
        # rank starts near zero.
        shift = meta["wall_t0"] - meta["clock_t0"] - origin
        events.append({
            "ph": "M", "name": "process_name", "pid": rank, "tid": 0,
            "args": {"name": f"rank {rank}"},
        })
        for s in t["spans"]:
            events.append({
                "name": s["name"],
                "cat": s.get("cat", "other"),
                "ph": "X",
                "ts": (s["ts"] + shift) * 1e6,
                "dur": s["dur"] * 1e6,
                "pid": rank,
                "tid": s.get("tid", 0),
                "args": {"step": s.get("step", -1)},
            })
        for c in t["counters"]:
            events.append({
                "name": f"bytes {c['dir']}",
                "ph": "C",
                "ts": (c["ts"] + shift) * 1e6,
                "pid": rank,
                "tid": 0,
                "args": {f"peer {c['peer']}": c["bytes"]},
            })
        if t["end"] is not None:
            dropped_total += int(t["end"].get("dropped", 0))
    events.sort(key=lambda e: (e.get("ts", 0.0), e["pid"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "ranks": len(loaded),
            "dropped_spans": dropped_total,
            "simulated": bool(loaded[0]["meta"].get("sim", False)),
        },
    }


def write_chrome_trace(
    paths: Sequence[str | Path] | str | Path,
    out: str | Path,
) -> Path:
    """Merge rank traces and write the Chrome trace JSON to ``out``.

    ``paths`` may be a list of JSONL files or a single directory/run
    workdir (resolved via :func:`trace_files`).
    """
    if isinstance(paths, (str, Path)):
        paths = trace_files(paths)
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(merge_traces(paths)) + "\n")
    return out
