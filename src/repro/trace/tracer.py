"""Span/counter tracers: the null gate and the per-rank JSONL stream.

Record schema (one JSON object per line of ``trace-<rank>.jsonl``):

``{"type": "meta", "rank": R, "wall_t0": W, "clock_t0": C, ...}``
    First line.  ``wall_t0`` is the wall-clock epoch second at which the
    tracer's span clock read ``clock_t0`` — the offset that lets the
    merger align ranks whose monotonic clocks have unrelated origins.
    Simulated tracers carry ``"sim": true`` and both origins are 0.

``{"type": "span", "name": N, "cat": C, "ts": T, "dur": D,
   "step": S, "tid": I}``
    One phase of the compute/communicate cycle.  ``ts``/``dur`` are
    seconds on the rank's span clock; ``step`` is the integration step
    (-1 when not applicable); ``tid`` sub-divides a rank (the threaded
    runner's worker threads).

``{"type": "counter", "peer": P, "dir": "sent"|"recvd",
   "msgs": M, "bytes": B, "ts": T}``
    Cumulative per-peer channel traffic at time ``ts`` (emitted on
    every flush, so the counter track in the viewer is a staircase).

``{"type": "end", "spans": N, "dropped": D}``
    Footer.  ``dropped`` counts spans discarded after the ``max_events``
    bound was hit — the stream is bounded by construction, never the
    run's memory.

The **null-tracer convention**: every instrumented code path holds a
tracer that is :data:`NULL_TRACER` unless tracing was requested, and
calls it unconditionally::

    t0 = self.tracer.begin()
    ...hot work...
    self.tracer.end("compute:0", t0, step=step)

:class:`NullTracer` returns a constant from ``begin`` and discards
``end``/``count``, so the disabled path performs no allocation and no
branching beyond the two attribute calls; span *names are precomputed*
(tuples built in ``__init__``), never formatted in the hot loop.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

__all__ = [
    "CAT_COMPUTE",
    "CAT_COMM",
    "CAT_OTHER",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "span_category",
]

#: Span categories of the §7 decomposition: time spent integrating
#: fluid nodes ...
CAT_COMPUTE = "compute"
#: ... time spent exchanging boundary data / in collectives ...
CAT_COMM = "comm"
#: ... and everything else (checkpoints, migration and rebalance
#: pauses, heartbeats).
CAT_OTHER = "other"

#: span-name prefix (before ``:``) -> category
_PREFIX_CATEGORY = {
    "compute": CAT_COMPUTE,
    "finalize": CAT_COMPUTE,
    "exchange": CAT_COMM,
    "collective": CAT_COMM,
    "barrier": CAT_COMM,
    "token": CAT_COMM,
    "checkpoint": CAT_OTHER,
    "migration": CAT_OTHER,
    "balance": CAT_OTHER,
    "heartbeat": CAT_OTHER,
    "wait": CAT_COMM,
    # seam conversions translate boundary data between methods — the
    # hybrid run's communication
    "seam": CAT_COMM,
    # dependency-driven runs (repro.graph): stall markers for nodes
    # ready far beyond their estimated cost
    "graph": CAT_OTHER,
    # the per-rank recovery ledger: injected faults and the recoveries
    # they triggered (repro.chaos)
    "chaos": CAT_OTHER,
    "recover": CAT_OTHER,
}


def span_category(name: str) -> str:
    """Category of a span name (prefix before ``:``), §7 buckets.

    Unknown prefixes land in :data:`CAT_OTHER` so a new span kind can
    never silently inflate the compute/communicate split.
    """
    return _PREFIX_CATEGORY.get(name.split(":", 1)[0], CAT_OTHER)


#: span name -> category, memoized (names are precomputed and few)
_CATEGORY_CACHE: dict[str, str] = {}


class NullTracer:
    """The disabled tracer: every operation is a constant no-op.

    ``begin`` returns ``0.0`` (a cached float constant) and ``end`` /
    ``count`` discard their arguments, so the instrumented hot path
    allocates nothing and costs two attribute lookups per span when
    tracing is off.  All runtimes default to the shared
    :data:`NULL_TRACER` instance.
    """

    __slots__ = ()

    #: discriminates the null tracer without an isinstance check
    enabled = False

    def begin(self) -> float:
        """Start a span: returns the (dummy) start timestamp."""
        return 0.0

    def end(self, name: str, t0: float, step: int = -1,
            tid: int = 0) -> None:
        """Finish a span started at ``t0`` — discarded."""

    def add_span(self, name: str, ts: float, dur: float, step: int = -1,
                 tid: int = 0) -> None:
        """Record a span with explicit timestamps — discarded."""

    def count(self, peer: int, nbytes: int, sent: bool = True) -> None:
        """Account one channel message to a peer — discarded."""

    def flush(self) -> None:
        """Nothing buffered, nothing to flush."""

    def close(self) -> None:
        """Nothing open, nothing to close."""


#: The shared disabled tracer every runtime defaults to.
NULL_TRACER = NullTracer()


class Tracer:
    """A rank's bounded span/counter stream to ``trace-<rank>.jsonl``.

    Parameters
    ----------
    path:
        Output JSONL file (created eagerly with the meta line, so a
        crashed rank still leaves an alignable — if short — trace).
    rank:
        This rank's id; becomes the Chrome trace ``pid`` lane.
    clock:
        Span clock, defaults to :func:`time.perf_counter`.  Pass a
        simulated clock (or use :meth:`add_span` with explicit
        timestamps and ``sim=True``) for discrete-event runs.
    max_events:
        Hard bound on recorded spans; beyond it spans are counted as
        dropped and the file stops growing (the stream is *bounded*).
    flush_every:
        Buffered spans between file appends.
    sim:
        Mark the stream as simulated time (origins pinned to zero, so
        merged simulated ranks align at t = 0).
    job:
        Service-layer job id this stream belongs to; recorded on the
        meta line (only when non-empty) so traces from a shared worker
        pool stay attributable per job.
    """

    def __init__(
        self,
        path: str | Path,
        rank: int = 0,
        clock=time.perf_counter,
        max_events: int = 200_000,
        flush_every: int = 2_048,
        sim: bool = False,
        job: str = "",
    ) -> None:
        self.path = Path(path)
        self.rank = rank
        self.clock = clock
        self.max_events = int(max_events)
        self.flush_every = int(flush_every)
        self.sim = sim
        self.job = job
        self.enabled = True
        self.spans_recorded = 0
        self.dropped = 0
        self._buf: list[str] = []
        self._counters: dict[tuple[int, str], list[int]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        wall_t0 = 0.0 if sim else time.time()  # wall-clock record
        clock_t0 = 0.0 if sim else self.clock()
        self.wall_t0 = wall_t0
        self.clock_t0 = clock_t0
        meta = {
            "type": "meta",
            "rank": rank,
            "wall_t0": wall_t0,
            "clock_t0": clock_t0,
            "sim": sim,
            "version": 1,
        }
        if job:
            meta["job"] = job
        self.path.write_text(json.dumps(meta) + "\n")

    # -- the hot-path interface (mirrors NullTracer) -------------------
    def begin(self) -> float:
        """Start a span: returns the current span-clock timestamp."""
        return self.clock()

    def end(self, name: str, t0: float, step: int = -1,
            tid: int = 0) -> None:
        """Finish a span started at ``t0`` and record it."""
        self.add_span(name, t0, self.clock() - t0, step=step, tid=tid)

    def add_span(self, name: str, ts: float, dur: float, step: int = -1,
                 tid: int = 0) -> None:
        """Record one span with explicit start/duration (seconds)."""
        # Formatted by hand: span names are precomputed ASCII literals
        # and float repr is valid JSON, so this is json.dumps minus its
        # per-call cost — the difference is visible at 5 spans/step.
        cat = _CATEGORY_CACHE.get(name)
        if cat is None:
            cat = _CATEGORY_CACHE[name] = span_category(name)
        with self._lock:
            if self._closed or self.spans_recorded >= self.max_events:
                self.dropped += 1
                return
            self.spans_recorded += 1
            self._buf.append(
                f'{{"type": "span", "name": "{name}", "cat": "{cat}", '
                f'"ts": {ts!r}, "dur": {dur!r}, '
                f'"step": {step}, "tid": {tid}}}'
            )
            if len(self._buf) >= self.flush_every:
                self._flush_locked()

    def count(self, peer: int, nbytes: int, sent: bool = True) -> None:
        """Accumulate one channel message in the per-peer counters."""
        key = (peer, "sent" if sent else "recvd")
        with self._lock:
            box = self._counters.get(key)
            if box is None:
                box = self._counters[key] = [0, 0]
            box[0] += 1
            box[1] += nbytes

    # -- plumbing ------------------------------------------------------
    def _counter_lines(self, ts: float) -> list[str]:
        return [
            json.dumps({
                "type": "counter",
                "peer": peer,
                "dir": direction,
                "msgs": msgs,
                "bytes": nbytes,
                "ts": ts,
            })
            for (peer, direction), (msgs, nbytes)
            in sorted(self._counters.items())
        ]

    def _flush_locked(self) -> None:
        lines = self._buf
        self._buf = []
        lines.extend(self._counter_lines(0.0 if self.sim else self.clock()))
        if lines:
            with open(self.path, "a") as fh:
                fh.write("\n".join(lines) + "\n")

    def flush(self) -> None:
        """Append all buffered spans and a counter snapshot to the file."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush and write the footer; further spans are discarded."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._flush_locked()
            footer = {
                "type": "end",
                "spans": self.spans_recorded,
                "dropped": self.dropped,
            }
            with open(self.path, "a") as fh:
                fh.write(json.dumps(footer) + "\n")
            self.enabled = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
