"""The §7 breakdown: T_comp / T_comm / efficiency from a trace.

The paper measures "the time per integration step" from the outside and
attributes the gap between measured and ideal speed to communication
(eqs. 5-8).  A trace makes that attribution direct: summing each rank's
spans by category yields the per-rank computation time ``T_comp``,
communication time ``T_comm`` (ghost exchanges, collectives, barriers)
and everything else (checkpoints, migration pauses), from which the
utilization ``T_comp / (T_comp + T_comm + T_other)`` — eq. 8's ``f``
measured from the inside — falls out per rank and for the whole run.

``python -m repro.tools trace <run>`` prints this table for a finished
run and writes ``BENCH_trace.json``; the same summary is attached to
:class:`repro.RunResult` when a facade run traces itself.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Sequence

from .merge import load_trace, trace_files
from .tracer import CAT_COMM, CAT_COMPUTE, CAT_OTHER

__all__ = [
    "RankBreakdown",
    "TraceSummary",
    "summarize",
    "format_breakdown_table",
    "write_trace_bench",
]


@dataclass
class RankBreakdown:
    """One rank's time-per-category totals (seconds of span time)."""

    rank: int
    t_comp: float = 0.0
    t_comm: float = 0.0
    t_other: float = 0.0
    spans: int = 0
    steps: int = 0                 # distinct integration steps covered
    bytes_sent: int = 0
    bytes_recvd: int = 0
    messages_sent: int = 0
    dropped_spans: int = 0

    @property
    def t_total(self) -> float:
        """All span time of this rank."""
        return self.t_comp + self.t_comm + self.t_other

    @property
    def utilization(self) -> float:
        """Eq. 8 measured from the inside: compute share of span time."""
        total = self.t_total
        return self.t_comp / total if total > 0 else 0.0


@dataclass
class TraceSummary:
    """The §7 compute/communicate decomposition of one traced run."""

    ranks: list[RankBreakdown] = field(default_factory=list)
    simulated: bool = False

    @property
    def n_ranks(self) -> int:
        """Number of rank traces merged into this summary."""
        return len(self.ranks)

    @property
    def t_comp(self) -> float:
        """Total computation seconds across ranks."""
        return sum(r.t_comp for r in self.ranks)

    @property
    def t_comm(self) -> float:
        """Total communication seconds across ranks."""
        return sum(r.t_comm for r in self.ranks)

    @property
    def t_other(self) -> float:
        """Total checkpoint/migration/heartbeat seconds across ranks."""
        return sum(r.t_other for r in self.ranks)

    @property
    def utilization(self) -> float:
        """Run-wide compute share of traced time (eq. 8's ``f``)."""
        total = self.t_comp + self.t_comm + self.t_other
        return self.t_comp / total if total > 0 else 0.0

    def per_step(self) -> dict[str, float]:
        """Mean per-step ``{t_comp, t_comm, t_other}`` of one rank.

        Divides by the max step count seen so the numbers compare
        directly with externally-timed seconds per step.
        """
        steps = max((r.steps for r in self.ranks), default=0)
        n = max(self.n_ranks, 1)
        if steps == 0:
            return {"t_comp": 0.0, "t_comm": 0.0, "t_other": 0.0}
        return {
            "t_comp": self.t_comp / n / steps,
            "t_comm": self.t_comm / n / steps,
            "t_other": self.t_other / n / steps,
        }

    def timings(self) -> dict[int, dict[str, float]]:
        """Per-rank ``{rank: {"t_comp": ..., "t_comm": ..., ...}}``."""
        return {
            r.rank: {
                "t_comp": r.t_comp,
                "t_comm": r.t_comm,
                "t_other": r.t_other,
                "utilization": r.utilization,
            }
            for r in self.ranks
        }


def summarize(paths: Sequence[str | Path] | str | Path) -> TraceSummary:
    """Reduce per-rank trace files to a :class:`TraceSummary`.

    ``paths`` may be a list of JSONL files or a run directory (resolved
    like :func:`repro.trace.merge.write_chrome_trace`).
    """
    if isinstance(paths, (str, Path)):
        paths = trace_files(paths)
    summary = TraceSummary()
    by_rank: dict[int, RankBreakdown] = {}
    rank_steps: dict[int, set] = {}
    for path in paths:
        t = load_trace(path)
        rank = int(t["meta"]["rank"])
        # A migrated-and-restarted rank leaves one file per generation;
        # its incarnations accumulate into one breakdown.
        bd = by_rank.get(rank)
        if bd is None:
            bd = by_rank[rank] = RankBreakdown(rank=rank)
            rank_steps[rank] = set()
        steps = rank_steps[rank]
        for s in t["spans"]:
            cat = s.get("cat", CAT_OTHER)
            dur = float(s["dur"])
            if cat == CAT_COMPUTE:
                bd.t_comp += dur
            elif cat == CAT_COMM:
                bd.t_comm += dur
            else:
                bd.t_other += dur
            bd.spans += 1
            # Integration steps are counted from compute spans only: a
            # trailing heartbeat/checkpoint span carries the *next*
            # step number and would inflate the per-step averages.
            if cat == CAT_COMPUTE and s.get("step", -1) >= 0:
                steps.add(s["step"])
        bd.steps = len(steps)
        latest: dict[tuple[int, str], tuple[int, int]] = {}
        for c in t["counters"]:
            latest[(c["peer"], c["dir"])] = (c["msgs"], c["bytes"])
        for (peer, direction), (msgs, nbytes) in latest.items():
            if direction == "sent":
                bd.bytes_sent += nbytes
                bd.messages_sent += msgs
            else:
                bd.bytes_recvd += nbytes
        if t["end"] is not None:
            bd.dropped_spans += int(t["end"].get("dropped", 0))
        summary.simulated = bool(t["meta"].get("sim", False))
    summary.ranks = sorted(by_rank.values(), key=lambda r: r.rank)
    return summary


def format_breakdown_table(summary: TraceSummary) -> str:
    """The §7 table: per-rank T_comp / T_comm split and utilization."""
    from ..harness.metrics import format_table

    rows = []
    for r in summary.ranks:
        steps = max(r.steps, 1)
        rows.append([
            r.rank,
            r.steps,
            f"{r.t_comp / steps * 1e3:.3f} ms",
            f"{r.t_comm / steps * 1e3:.3f} ms",
            f"{r.t_other / steps * 1e3:.3f} ms",
            f"{r.bytes_sent:,}",
            f"{r.utilization:.3f}",
        ])
    per = summary.per_step()
    rows.append([
        "all",
        max((r.steps for r in summary.ranks), default=0),
        f"{per['t_comp'] * 1e3:.3f} ms",
        f"{per['t_comm'] * 1e3:.3f} ms",
        f"{per['t_other'] * 1e3:.3f} ms",
        f"{sum(r.bytes_sent for r in summary.ranks):,}",
        f"{summary.utilization:.3f}",
    ])
    kind = "simulated" if summary.simulated else "measured"
    return format_table(
        ["rank", "steps", "T_comp/step", "T_comm/step", "T_other/step",
         "bytes sent", "f (eq. 8)"],
        rows,
        title=f"per-step compute/communicate decomposition "
              f"({kind}, §7)",
    )


def write_trace_bench(
    summary: TraceSummary,
    out: str | Path = "BENCH_trace.json",
    extra: dict | None = None,
) -> Path:
    """Write the summary (plus optional bench numbers) as JSON."""
    payload = {
        "ranks": [asdict(r) for r in summary.ranks],
        "per_step": summary.per_step(),
        "utilization": summary.utilization,
        "t_comp_total": summary.t_comp,
        "t_comm_total": summary.t_comm,
        "t_other_total": summary.t_other,
        "simulated": summary.simulated,
    }
    if extra:
        payload.update(extra)
    out = Path(out)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    return out
