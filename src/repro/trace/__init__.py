"""Phase-level tracing of the compute/communicate cycle (paper §7).

The paper's entire evaluation is a decomposition of the time per
integration step into computation and communication — "the speed of a
workstation is the number of fluid nodes integrated per second" — yet a
runtime that can only be timed from the outside cannot say *where* a
step went.  This package threads a low-overhead span/counter tracer
through all four runtimes (serial, threaded, socket-distributed,
cluster-simulated):

* every compute phase, ghost exchange, collective, checkpoint write and
  migration pause becomes a **span** (name, start, duration, step);
* every channel send/recv increments per-peer **byte/message counters**;
* each rank streams a bounded ``trace-<rank>.jsonl``
  (:class:`Tracer`), which :func:`merge_traces` /
  :func:`write_chrome_trace` turn into one Chrome trace-event JSON that
  loads in ``chrome://tracing`` or Perfetto;
* :func:`summarize` reduces a set of rank traces to the §7
  T_comp/T_comm/efficiency table (:class:`TraceSummary`), printed by
  ``python -m repro.tools trace``.

The hot path is gated by :data:`NULL_TRACER`: a :class:`NullTracer`
whose ``begin``/``end``/``count`` are constant-returning no-ops, so the
instrumented runtimes stay allocation-free and within noise of the
un-instrumented kernels when tracing is disabled (guarded by a
``count_allocations`` test and the ``bench --trace`` overhead
assertion).  Simulated runs emit spans with *simulated* clocks through
the same :class:`Tracer`, so real and simulated traces are directly
comparable in the same viewer and the same report.
"""

from .tracer import (
    CAT_COMM,
    CAT_COMPUTE,
    CAT_OTHER,
    NULL_TRACER,
    NullTracer,
    Tracer,
    span_category,
)
from .merge import load_trace, merge_traces, trace_files, write_chrome_trace
from .report import (
    RankBreakdown,
    TraceSummary,
    format_breakdown_table,
    summarize,
    write_trace_bench,
)

__all__ = [
    "NullTracer",
    "Tracer",
    "NULL_TRACER",
    "CAT_COMPUTE",
    "CAT_COMM",
    "CAT_OTHER",
    "span_category",
    "trace_files",
    "load_trace",
    "merge_traces",
    "write_chrome_trace",
    "RankBreakdown",
    "TraceSummary",
    "summarize",
    "format_breakdown_table",
    "write_trace_bench",
]
