"""Run distributed computations under fault plans and judge the outcome.

This is the executable form of the PR's acceptance contract: a run
under a seeded :class:`~repro.chaos.plan.FaultPlan` must end in either
a **bit-for-bit match** against the fault-free serial reference (the
recovery machinery healed the fault completely) or a **clean
diagnostic abort** (a :class:`~repro.distrib.MonitorError` naming what
went wrong) — never a hang, never a silent divergence.

:func:`run_scenario` executes one seeded scenario end to end and
classifies it; :func:`sweep` runs the canonical set (plus a fault-free
baseline used for the recovery-time metric) and is what both the
``repro chaos`` CLI and ``repro bench --chaos`` call.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from .plan import DUMP_KINDS, PROCESS_KINDS, SCENARIOS, FaultPlan

__all__ = [
    "CANONICAL",
    "ChaosOutcome",
    "chaos_settings",
    "chaos_spec",
    "check_recovery_ledger",
    "run_scenario",
    "serial_reference",
    "sweep",
]

#: The five scenarios the acceptance gate requires (SCENARIOS adds the
#: orderly-reconnect and reorder extras on top for the nightly sweep).
CANONICAL = ("kill", "stall", "loss", "corruption", "spike")

#: Outcome classifications, best to worst.  ``match`` and
#: ``clean_abort`` pass the gate; ``hang``, ``divergence`` and
#: ``error`` fail it.
_PASSING = frozenset({"match", "clean_abort"})


@dataclass
class ChaosOutcome:
    """One chaos run, classified."""

    scenario: str
    seed: int
    outcome: str               # match | clean_abort | hang | divergence
                               # | ledger_gap | error
    detail: str = ""
    elapsed: float = 0.0       # wall seconds of the faulted run
    steps: int = 0
    steps_per_second: float = 0.0
    recovery_seconds: float = 0.0   # elapsed minus the fault-free baseline
    restarts: int = 0
    migrations: int = 0
    rebalances: int = 0
    faults: list[dict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.outcome in _PASSING


def chaos_spec(blocks: tuple[int, ...] = (2, 1)):
    """The small lattice-Boltzmann channel problem the chaos runs march.

    Small enough that a full sweep (each scenario replays the run at
    least once through a checkpoint restart) stays in CI budget, large
    enough that every rank owns real boundary traffic.
    """
    from ..distrib import ProblemSpec

    return ProblemSpec(
        method="lb",
        grid_shape=(32, 24),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )


def chaos_settings(steps: int, save_every: int, plan: FaultPlan | None):
    """Run settings tuned for fast fault turnaround.

    Short receive/stall timeouts so a lost strip or a stopped worker is
    *detected* in seconds rather than the production minute; a small
    per-step delay so wall-anchored faults (load spikes at ~0.5 s) land
    while the run is still in flight.
    """
    from ..distrib import RunSettings

    return RunSettings(
        steps=steps,
        save_every=save_every,
        save_gap=0.0,
        step_delay=0.015,
        recv_timeout=3.0,
        sync_timeout=20.0,
        stall_timeout=6.0,
        run_timeout=120.0,
        monitor_poll=0.02,
        # tracing is on so every injected fault and every recovery
        # action lands in the span ledger check_recovery_ledger audits
        trace=plan is not None,
        fault_plan=plan.to_json() if plan is not None else "",
    )


def _ledger_spans(workdir: str | Path) -> list[tuple[str, str]]:
    """All ``chaos:``/``recover:`` spans of a traced run, as
    ``(prefix, kind)`` pairs, in file order across every rank stream
    (workers, restarted incarnations, and the monitor's own lane)."""
    import json

    out: list[tuple[str, str]] = []
    for path in sorted(Path(workdir).glob("trace/trace-*.jsonl")):
        for line in path.read_text().splitlines():
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # a crashed rank may leave a torn final line
            if rec.get("type") != "span":
                continue
            name = rec.get("name", "")
            if name.startswith(("chaos:", "recover:")):
                prefix, _, kind = name.partition(":")
                out.append((prefix, kind))
    return out


def check_recovery_ledger(
    workdir: str | Path, restarts: int = 0
) -> list[str]:
    """Shape-check the recovery ledger of one traced chaos run.

    The hardening contract is auditable from the trace alone: every
    injected fault that takes a process down (``chaos:kill``,
    ``chaos:stop``) must be answered by a recovery span
    (``recover:restart`` from the restored incarnation, plus the
    monitor's ``recover:ckpt_restart``/``recover:migrate``).  Corrupted
    checkpoints (``dump_*`` kinds) only matter once a restart tries to
    restore one, so they require a recovery span only when the run
    restarted.  Message and host faults are self-healing by design —
    retransmission and load shedding leave no ledger obligation.

    Returns human-readable violations; empty means the ledger is
    well-formed.  Runs that ended in a classified clean abort are not
    audited — an abort is the recovery action.
    """
    spans = _ledger_spans(workdir)
    chaos = [kind for prefix, kind in spans if prefix == "chaos"]
    recovers = [kind for prefix, kind in spans if prefix == "recover"]
    violations: list[str] = []
    n_proc = sum(1 for kind in chaos if kind in PROCESS_KINDS)
    if n_proc and len(recovers) < n_proc:
        violations.append(
            f"{n_proc} process fault span(s) "
            f"({[k for k in chaos if k in PROCESS_KINDS]}) but only "
            f"{len(recovers)} recover: span(s) {recovers}"
        )
    n_dump = sum(1 for kind in chaos if kind in DUMP_KINDS)
    if n_dump and restarts and not recovers:
        violations.append(
            f"{n_dump} checkpoint fault span(s) and {restarts} "
            f"restart(s) but no recover: span at all"
        )
    return violations


def serial_reference(spec, steps: int) -> dict[str, np.ndarray]:
    """The fault-free serial run every chaos outcome is compared to."""
    from ..core import Decomposition, Simulation
    from ..distrib import initial_fields

    solid, _, _ = spec.build_geometry()
    if spec.is_hybrid:
        # A hybrid problem has no single-block equivalent — the seams
        # live on the spec's own block faces, so the reference runs the
        # spec's decomposition in-process (bit-identical to the
        # distributed run by construction).
        from ..fluids.coupling import build_converters

        decomp = spec.build_decomposition()
        methods = spec.build_methods()
        sim = Simulation(
            list(methods), decomp, initial_fields(spec, "rest"), solid,
            converters=build_converters(decomp, methods),
        )
    else:
        decomp = Decomposition(
            spec.grid_shape, (1,) * spec.ndim, periodic=spec.periodic,
            solid=solid,
        )
        sim = Simulation(
            spec.build_method(), decomp, initial_fields(spec, "rest"), solid
        )
    sim.step(steps)
    return sim.global_state()


def _classify_error(exc: Exception) -> tuple[str, str]:
    from ..distrib import MonitorError

    if isinstance(exc, MonitorError):
        if "timed out" in str(exc):
            # The monitor's own deadline fired with workers neither
            # finished nor crashed: that is a hang, the one thing the
            # hardening must never allow.
            return "hang", str(exc)
        return "clean_abort", str(exc)
    return "error", f"{type(exc).__name__}: {exc}"


def run_scenario(
    scenario: str,
    seed: int,
    workdir: str | Path,
    steps: int = 40,
    save_every: int = 10,
    blocks: tuple[int, ...] = (2, 1),
    reference: dict[str, np.ndarray] | None = None,
    baseline_elapsed: float = 0.0,
    plan: FaultPlan | None = None,
) -> ChaosOutcome:
    """Execute one seeded scenario and classify the outcome.

    ``scenario="none"`` runs fault-free (the baseline the recovery-time
    metric subtracts).  Pass ``plan`` to override the scenario's
    generated plan with an explicit one (the ``repro chaos --plan``
    path).
    """
    from ..distrib import DistributedRun

    spec = chaos_spec(blocks)
    n_ranks = spec.build_decomposition().n_active
    if plan is None and scenario != "none":
        plan = FaultPlan.scenario(scenario, seed, n_ranks, steps,
                                  save_every)
    if reference is None:
        reference = serial_reference(spec, steps)

    from ..distrib import initial_fields

    out = ChaosOutcome(
        scenario=scenario,
        seed=seed,
        outcome="error",
        steps=steps,
        faults=[asdict(f) for f in plan.faults] if plan else [],
    )
    settings = chaos_settings(steps, save_every, plan)
    if scenario == "rebalance_kill":
        # The kill must race a *live* rebalance: a skewed synthetic
        # load manufactures a real imbalance and aggressive planner
        # gates make it act within the short run, so the SIGKILL lands
        # before, during, or after the epoch depending on the seed.
        settings.policy = "rebalance"
        settings.balance_threshold = 0.05
        settings.balance_cooldown = 0.5
        settings.balance_min_gain = 0.0
        settings.step_delays = [0.03, 0.005]
    run = DistributedRun(
        spec,
        initial_fields(spec, "rest"),
        Path(workdir),
        settings,
    )
    mon = run.start()
    t0 = time.monotonic()
    try:
        run.wait()
        fields = run.collect()
    except Exception as exc:  # noqa: BLE001 - classified, not swallowed
        out.outcome, out.detail = _classify_error(exc)
    else:
        mismatched = [
            name for name, ref in reference.items()
            if not np.array_equal(fields[name], ref)
        ]
        if mismatched:
            out.outcome = "divergence"
            out.detail = (
                f"fields {mismatched} differ from the fault-free "
                f"serial reference"
            )
        else:
            out.outcome = "match"
    out.elapsed = time.monotonic() - t0
    out.steps_per_second = steps / out.elapsed if out.elapsed > 0 else 0.0
    out.recovery_seconds = max(out.elapsed - baseline_elapsed, 0.0)
    out.restarts = mon.restarts
    out.migrations = mon.migrations
    out.rebalances = mon.rebalances
    if out.outcome == "match" and plan is not None:
        # bit-stable output is necessary but not sufficient: the span
        # ledger must also show every process fault was answered by a
        # recovery action (a clean abort *is* the recovery, so only
        # matches are audited).
        gaps = check_recovery_ledger(workdir, restarts=out.restarts)
        if gaps:
            out.outcome = "ledger_gap"
            out.detail = "; ".join(gaps)
    return out


def sweep(
    workdir: str | Path,
    seeds: tuple[int, ...] = (0,),
    scenarios: tuple[str, ...] = CANONICAL,
    steps: int = 40,
    save_every: int = 10,
    blocks: tuple[int, ...] = (2, 1),
) -> list[ChaosOutcome]:
    """Run every (scenario, seed) pair, preceded by a fault-free baseline.

    The baseline run must match the serial reference bit-for-bit — if
    it does not, the harness itself is broken and every faulted result
    would be noise; it also anchors the recovery-time metric.
    """
    for name in scenarios:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r} (expected one of "
                f"{sorted(SCENARIOS)})"
            )
    workdir = Path(workdir)
    spec = chaos_spec(blocks)
    reference = serial_reference(spec, steps)
    baseline = run_scenario(
        "none", 0, workdir / "baseline", steps=steps,
        save_every=save_every, blocks=blocks, reference=reference,
    )
    if baseline.outcome != "match":
        raise RuntimeError(
            f"fault-free baseline did not match the serial reference "
            f"({baseline.outcome}: {baseline.detail})"
        )
    outcomes = [baseline]
    for seed in seeds:
        for scenario in scenarios:
            outcomes.append(run_scenario(
                scenario, seed,
                workdir / f"{scenario}_s{seed}",
                steps=steps, save_every=save_every, blocks=blocks,
                reference=reference,
                baseline_elapsed=baseline.elapsed,
            ))
    return outcomes
