"""Deterministic, seeded fault plans.

The paper's runtime exists to survive a hostile environment: owners
reclaim their workstations mid-run, the shared Ethernet drops and
reorders packets, and crashes are recovered from staggered checkpoints
(§4.1, §5, App. B).  A :class:`FaultPlan` makes that hostility
*reproducible*: a seeded RNG schedules a set of :class:`Fault` events —
kill or SIGSTOP a worker at step N, drop/delay/duplicate/truncate
messages at the transport layer, corrupt a checkpoint dump, spike a
host's load — and the same JSON-serialized plan drives both the live
distributed runtime (via ``WorkerKnobs.fault_plan``) and the cluster
simulator (via ``ClusterSimulation(fault_plan=...)``), so a failure
seen once can be replayed exactly.

Every fault is identified by a stable ``fault_id`` so the injector can
mark it *fired* on disk: a kill fault keyed only by step would re-fire
after every checkpoint restart (the restart replays the same steps)
and pin the run in a crash loop.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field

__all__ = ["Fault", "FaultPlan", "KINDS", "MESSAGE_KINDS", "SCENARIOS"]

#: Faults applied by the worker process itself at a step boundary.
PROCESS_KINDS = frozenset({"kill", "stop"})
#: Faults applied at the channel layer when a frame is sent.
MESSAGE_KINDS = frozenset(
    {"msg_drop", "msg_dup", "msg_delay", "msg_truncate", "conn_break"}
)
#: Faults applied to a checkpoint dump right after it is written.
DUMP_KINDS = frozenset({"dump_corrupt", "dump_truncate"})
#: Faults applied by the monitor (live) or the simulator (modeled).
HOST_KINDS = frozenset({"load_spike"})

KINDS = PROCESS_KINDS | MESSAGE_KINDS | DUMP_KINDS | HOST_KINDS


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``step`` anchors process/message/dump faults to the integration
    step counter (deterministic across runs); ``at``/``seconds`` anchor
    host-load faults to wall seconds since the run started (host load
    is a wall-clock phenomenon — there is no step counter on a host).
    """

    kind: str
    rank: int = 0        # victim rank (for load_spike: the rank whose host)
    step: int = -1       # fire at this integration step (process/msg/dump)
    count: int = 1       # how many frames a message fault affects
    seconds: float = 0.0  # duration (stop pause model, load spike length)
    load: float = 0.0    # load_spike: the five-minute load to publish
    at: float = -1.0     # load_spike: wall seconds after run start
    arg: int = 0         # msg_truncate: bytes to cut from the payload

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{sorted(KINDS)})"
            )

    @property
    def fault_id(self) -> str:
        """Stable identity used for the fired-once markers on disk."""
        return f"{self.kind}_r{self.rank}_s{self.step}_a{self.at:g}"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, JSON-serializable schedule of faults."""

    seed: int = 0
    faults: tuple[Fault, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # serialization (travels inside WorkerConfig JSON and CLI files)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [asdict(f) for f in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(Fault(**f) for f in data.get("faults", ())),
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def for_rank(self, rank: int, kinds: frozenset[str]) -> tuple[Fault, ...]:
        """The plan's faults of the given kinds targeting one rank."""
        return tuple(
            f for f in self.faults if f.rank == rank and f.kind in kinds
        )

    def host_faults(self) -> tuple[Fault, ...]:
        """The plan's host-level faults (applied by monitor/simulator)."""
        return tuple(f for f in self.faults if f.kind in HOST_KINDS)

    def process_faults(self) -> tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind in PROCESS_KINDS)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def scenario(
        cls,
        name: str,
        seed: int,
        n_ranks: int,
        steps: int,
        save_every: int,
    ) -> "FaultPlan":
        """One of the canonical seeded scenarios (see :data:`SCENARIOS`).

        The scenario fixes the fault *shape*; the seed jitters victim
        rank and timing, so a seed sweep explores different interleavings
        of the same failure mode.
        """
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r} (expected one of "
                f"{sorted(SCENARIOS)})"
            )
        rng = random.Random((seed, name).__repr__())
        rank = rng.randrange(n_ranks)
        # Fire after the first complete checkpoint so recovery has
        # something newer than the initial state to restart from, and
        # before the final steps so the fault actually interrupts work.
        lo = save_every + 1 if 0 < save_every < steps else 1
        hi = max(lo + 1, steps - 2)
        step = rng.randrange(lo, hi)
        faults: tuple[Fault, ...]
        if name == "kill":
            faults = (Fault("kill", rank=rank, step=step),)
        elif name == "stall":
            faults = (Fault("stop", rank=rank, step=step),)
        elif name == "loss":
            faults = (
                Fault("msg_drop", rank=rank, step=step,
                      count=rng.randint(1, 2)),
            )
        elif name == "corruption":
            # Corrupt the next checkpoint this rank writes, then kill it
            # a little later: the monitor must detect the bad dump and
            # fall back to the previous complete checkpoint.
            faults = (
                Fault(
                    "dump_corrupt" if rng.random() < 0.5
                    else "dump_truncate",
                    rank=rank,
                    step=step,
                ),
                Fault("kill", rank=rank, step=min(step + 2, steps - 1)),
            )
        elif name == "spike":
            faults = (
                Fault(
                    "load_spike",
                    rank=rank,
                    at=0.3 + rng.random() * 0.4,
                    load=2.0 + rng.random(),
                    seconds=30.0,
                ),
            )
        elif name == "break":
            faults = (Fault("conn_break", rank=rank, step=step),)
        elif name == "rebalance_kill":
            # The same single kill as "kill", but the runner marches it
            # under policy="rebalance" with a skewed synthetic load, so
            # the SIGKILL races a live rebalance epoch: depending on
            # seed it lands before the planner acts, mid-epoch (a rank
            # dies instead of dumping), or after the re-cut (the
            # restart must pick decomposition-compatible dumps).
            faults = (Fault("kill", rank=rank, step=step),)
        else:  # "reorder"
            faults = (
                Fault("msg_delay", rank=rank, step=step),
                Fault("msg_dup", rank=rank,
                      step=min(step + 1, steps - 1)),
            )
        return cls(seed=seed, faults=faults)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_ranks: int,
        steps: int,
        save_every: int = 0,
        n_faults: int = 2,
        kinds: tuple[str, ...] | None = None,
    ) -> "FaultPlan":
        """A random mixed plan for sweep testing (nightly CI)."""
        menu = tuple(kinds) if kinds is not None else (
            "kill", "stop", "msg_drop", "msg_dup", "msg_delay",
            "conn_break", "dump_corrupt", "load_spike",
        )
        for kind in menu:
            if kind not in KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = random.Random(seed)
        lo = save_every + 1 if 0 < save_every < steps else 1
        hi = max(lo + 1, steps - 1)
        faults = []
        for _ in range(n_faults):
            kind = rng.choice(menu)
            rank = rng.randrange(n_ranks)
            if kind in HOST_KINDS:
                faults.append(Fault(
                    kind, rank=rank,
                    at=0.3 + rng.random(),
                    load=1.6 + rng.random() * 1.5,
                    seconds=30.0,
                ))
            else:
                faults.append(Fault(
                    kind, rank=rank, step=rng.randrange(lo, hi),
                    count=rng.randint(1, 2),
                ))
        return cls(seed=seed, faults=tuple(faults))


#: The canonical scenarios the acceptance gate sweeps (plus two extras
#: exercising the orderly-reconnect and reorder-tolerance paths).
SCENARIOS = (
    "kill",        # SIGKILL a worker mid-run -> checkpoint restart
    "stall",       # SIGSTOP a worker -> stall/timeout detection -> restart
    "loss",        # drop boundary strips -> recv timeout -> restart
    "corruption",  # corrupt a checkpoint, then crash -> fallback restart
    "spike",       # host load > 1.5 -> migration (§5.1)
    "break",       # orderly connection break -> backoff reconnect, no restart
    "reorder",     # delayed + duplicated frames -> absorbed in-protocol
    "rebalance_kill",  # SIGKILL under policy="rebalance": the kill may
    #  land before, during or after a rebalance epoch — every
    #  interleaving must end in a ledger-closed recovery
)
