"""Deterministic fault injection for the distributed runtime.

One seeded, JSON-serializable :class:`FaultPlan` drives faults in both
the live runtime (worker kills/stalls, dropped or truncated frames,
corrupted checkpoint dumps, host-load spikes) and the cluster
simulator, so every failure mode the paper's monitor must survive
(§4.1, §5) can be reproduced bit-for-bit from a seed.
"""

from .inject import (
    NULL_INJECTOR,
    ChannelFaultInjector,
    FiredMarkers,
    NullInjector,
    WorkerFaults,
    corrupt_dump,
)
from .plan import KINDS, MESSAGE_KINDS, SCENARIOS, Fault, FaultPlan
from .runner import (
    CANONICAL,
    ChaosOutcome,
    check_recovery_ledger,
    run_scenario,
    sweep,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "KINDS",
    "MESSAGE_KINDS",
    "SCENARIOS",
    "CANONICAL",
    "ChaosOutcome",
    "check_recovery_ledger",
    "run_scenario",
    "sweep",
    "NULL_INJECTOR",
    "NullInjector",
    "ChannelFaultInjector",
    "FiredMarkers",
    "WorkerFaults",
    "corrupt_dump",
]
