"""Fault injectors: where a :class:`~repro.chaos.plan.FaultPlan` bites.

Three injection points mirror the three layers a real cluster fails at:

* :class:`ChannelFaultInjector` sits in the channel send path
  (``ChannelSet.send_data`` / ``UdpChannelSet.send_data``) and
  drops, duplicates, delays or truncates individual frames, or breaks
  the connection outright — the shared-Ethernet failure modes of
  App. C/D.
* :class:`WorkerFaults` fires at step boundaries inside the worker
  (SIGKILL = a crashed workstation, SIGSTOP = an owner reclaiming the
  machine, §5.1) and corrupts checkpoint dumps right after they are
  written (a failing disk or NFS server, §4.1).
* Host-load spikes are applied by the monitor (live) or the simulator
  (modeled) — see :meth:`FaultPlan.host_faults`.

The hot path follows the null-tracer convention: workers without a
fault plan hold :data:`NULL_INJECTOR` (``enabled`` is False) and the
channel layer skips the hook with one attribute check.

**Fired-once markers.**  A checkpoint restart replays the steps since
the last complete checkpoint, so a fault keyed only by step would
re-fire on every incarnation and pin the run in a crash loop.  Each
fault claims a marker file (``chaos/fired_<id>``, created with
``O_EXCL``) before firing; the marker survives the process, so every
fault fires exactly once per run no matter how many restarts follow.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import Callable, Iterable, Sequence

from .plan import DUMP_KINDS, MESSAGE_KINDS, PROCESS_KINDS, Fault

__all__ = [
    "NULL_INJECTOR",
    "NullInjector",
    "FiredMarkers",
    "ChannelFaultInjector",
    "WorkerFaults",
    "corrupt_dump",
]

#: ``(to, payload, step, phase, axis, side)`` — one frame about to go out.
Frame = tuple


class NullInjector:
    """Inert injector: the channel hot path checks one attribute."""

    enabled = False

    def filter_send(self, frame: Frame):  # pragma: no cover - never hot
        return (frame,), ()


NULL_INJECTOR = NullInjector()


class FiredMarkers:
    """At-most-once claims for fault ids, durable across restarts."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def claim(self, fault: Fault) -> bool:
        """True exactly once per fault id across all incarnations."""
        try:
            fd = os.open(
                self.directory / f"fired_{fault.fault_id}",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def already_fired(self, fault: Fault) -> bool:
        return (self.directory / f"fired_{fault.fault_id}").exists()


class ChannelFaultInjector:
    """Message-level faults applied where frames leave a channel set.

    ``filter_send`` maps one outgoing frame to the frames that actually
    go on the wire plus the peers whose links must be broken first:

    * ``msg_drop``     -> no frames (the strip never leaves)
    * ``msg_dup``      -> the frame twice (receiver must dedup/ignore)
    * ``msg_delay``    -> no frames now; released before the next send
    * ``msg_truncate`` -> the frame with ``arg`` (>=1) payload bytes cut
    * ``conn_break``   -> break the link to the peer, then send (the
      send path must reconnect with backoff to deliver it)
    """

    enabled = True

    def __init__(
        self,
        faults: Iterable[Fault],
        markers: FiredMarkers,
        ledger: Callable[[Fault], None] | None = None,
    ):
        self._pending = [
            f for f in faults if f.kind in MESSAGE_KINDS
        ]
        self._markers = markers
        self._ledger = ledger or (lambda fault: None)
        self._delayed: list[Frame] = []
        self._live: dict[str, int] = {}   # fault_id -> frames remaining
        self.fired: list[Fault] = []

    def _match(self, step: int) -> Fault | None:
        for fault in self._pending:
            if step < fault.step:
                continue
            live = self._live.get(fault.fault_id)
            if live is None:
                if not self._markers.claim(fault):
                    # fired by a previous incarnation — retire it
                    self._pending.remove(fault)
                    return self._match(step)
                live = max(fault.count, 1)
                self.fired.append(fault)
                self._ledger(fault)
            live -= 1
            if live <= 0:
                self._pending.remove(fault)
                self._live.pop(fault.fault_id, None)
            else:
                self._live[fault.fault_id] = live
            return fault
        return None

    def filter_send(self, frame: Frame) -> tuple[Sequence[Frame], Sequence[int]]:
        out: list[Frame] = list(self._delayed)
        self._delayed.clear()
        to, payload, step = frame[0], frame[1], frame[2]
        fault = self._match(step)
        if fault is None:
            out.append(frame)
            return out, ()
        if fault.kind == "msg_drop":
            pass
        elif fault.kind == "msg_dup":
            out.extend((frame, frame))
        elif fault.kind == "msg_delay":
            self._delayed.append(frame)
        elif fault.kind == "msg_truncate":
            cut = max(fault.arg, 1)
            out.append((to, payload[: max(len(payload) - cut, 0)],
                        *frame[2:]))
        else:  # conn_break
            out.append(frame)
            return out, (to,)
        return out, ()


class WorkerFaults:
    """Process- and dump-level faults fired by the worker itself."""

    def __init__(
        self,
        faults: Iterable[Fault],
        markers: FiredMarkers,
        log: Callable[[str], None] | None = None,
        tracer=None,
    ):
        faults = list(faults)
        self._step_faults = [f for f in faults if f.kind in PROCESS_KINDS]
        self._dump_faults = [f for f in faults if f.kind in DUMP_KINDS]
        self._markers = markers
        self._log = log or (lambda msg: None)
        self._tracer = tracer

    def _record(self, fault: Fault, step: int) -> None:
        self._log(f"chaos: firing {fault.fault_id}")
        if self._tracer is not None:
            self._tracer.add_span(
                f"chaos:{fault.kind}", self._tracer.clock(), 0.0, step=step
            )
            # The process is about to die or freeze — persist the span.
            self._tracer.flush()

    def at_step(self, step: int) -> None:
        """Fire any process fault scheduled for this step (never returns
        normally when one fires: the process is killed or stopped)."""
        for fault in self._step_faults:
            if fault.step != step or not self._markers.claim(fault):
                continue
            self._record(fault, step)
            if fault.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            else:  # "stop" — an owner reclaimed the workstation (§5.1);
                # nothing resumes us until the monitor's restart SIGCONTs
                # and kills the incarnation.
                os.kill(os.getpid(), signal.SIGSTOP)

    def after_checkpoint(self, path: str | Path, step: int) -> None:
        """Corrupt a just-written checkpoint dump when scheduled."""
        for fault in self._dump_faults:
            if step < fault.step or not self._markers.claim(fault):
                continue
            self._record(fault, step)
            corrupt_dump(path, truncate=fault.kind == "dump_truncate")
            self._log(f"chaos: corrupted {Path(path).name}")


def corrupt_dump(path: str | Path, truncate: bool = False) -> None:
    """Damage a dump file the way a failing disk would.

    ``truncate`` cuts the file short (a crash mid-write past the atomic
    rename, or a full filesystem); otherwise a run of bytes in the
    middle is flipped (silent media corruption) — either way
    :func:`repro.distrib.dumpfile.load_dump` must refuse the file.
    """
    path = Path(path)
    size = path.stat().st_size
    if truncate:
        with open(path, "r+b") as fh:
            fh.truncate(max(size * 3 // 5, 1))
        return
    with open(path, "r+b") as fh:
        fh.seek(size // 2)
        chunk = fh.read(64)
        fh.seek(size // 2)
        fh.write(bytes(b ^ 0xFF for b in chunk))
