"""The distributed system (paper §§4-5, App. A-B).

The four control programs (initialization, decomposition, job-submit,
monitoring), the parallel worker program with SIGUSR2-triggered
migration, dump files, the flock-based synchronization algorithm, the
virtual host registry, and a one-call orchestrator.
"""

from .decompose import decompose_problem
from .diagnostics import (
    DEFAULT_VMAX,
    DiagnosticsFailure,
    DiagnosticsLog,
    DiagRecord,
    GlobalDiagnostics,
    fold_partials,
    local_partials,
    serial_diagnostics,
)
from .dumpfile import dump_path, load_dump, load_dumps, save_dump
from .hostdb import (
    IDLE_USER_MINUTES,
    MIGRATE_LOAD_LIMIT,
    SUBMIT_LOAD_LIMIT,
    HostDB,
    HostInfo,
    paper_cluster,
)
from .initprog import initial_fields
from .monitor import Monitor, MonitorError
from .orchestrator import DistributedRun, RunSettings, run_distributed
from .spec import ProblemSpec
from .submit import spawn_worker, submit_all
from .sync import MessageSaveTurns, SaveTurns, SyncFiles, SyncFileWarning
from .worker import (
    EXIT_DIAGNOSTIC,
    EXIT_DONE,
    EXIT_MIGRATED,
    EXIT_REBALANCED,
    Worker,
    WorkerConfig,
)

__all__ = [
    "ProblemSpec",
    "initial_fields",
    "decompose_problem",
    "dump_path",
    "save_dump",
    "load_dump",
    "load_dumps",
    "HostDB",
    "HostInfo",
    "paper_cluster",
    "SUBMIT_LOAD_LIMIT",
    "MIGRATE_LOAD_LIMIT",
    "IDLE_USER_MINUTES",
    "Monitor",
    "MonitorError",
    "DistributedRun",
    "RunSettings",
    "run_distributed",
    "spawn_worker",
    "submit_all",
    "SyncFiles",
    "SaveTurns",
    "MessageSaveTurns",
    "SyncFileWarning",
    "Worker",
    "WorkerConfig",
    "EXIT_DONE",
    "EXIT_MIGRATED",
    "EXIT_DIAGNOSTIC",
    "EXIT_REBALANCED",
    "DiagRecord",
    "DiagnosticsLog",
    "DiagnosticsFailure",
    "GlobalDiagnostics",
    "DEFAULT_VMAX",
    "local_partials",
    "fold_partials",
    "serial_diagnostics",
]
