"""The job-submit program (paper §4.1).

"The job-submit program finds free workstations in the cluster, and
begins a parallel subprocess on each workstation.  It provides each
process with a dump file that specifies one subregion of the problem.
The processes execute the same program on different data."

Host selection implements the paper's two-group strategy via
:meth:`repro.distrib.hostdb.HostDB.select_free`; the "remote start" is a
local subprocess tagged with the virtual host name (the substitution
documented in DESIGN.md — every control-plane mechanism is real, only
the machine boundary is virtual).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from .hostdb import HostDB
from .worker import WorkerConfig

__all__ = ["spawn_worker", "submit_all"]


def _worker_env() -> dict[str, str]:
    """Environment for a worker subprocess.

    Workers run with their working directory as ``cwd``, so relative
    ``PYTHONPATH`` entries inherited from the submitting process (for
    example ``PYTHONPATH=src`` from the test harness) would silently
    stop resolving and every worker would die on ``import repro`` —
    absolutize them against the *submitter's* cwd, and keep the
    directory providing :mod:`repro` itself importable from anywhere.
    """
    env = dict(os.environ)
    entries = [
        str(Path(p).resolve())
        for p in env.get("PYTHONPATH", "").split(os.pathsep)
        if p
    ]
    pkg_root = str(Path(__file__).resolve().parents[2])
    if pkg_root not in entries:
        entries.append(pkg_root)
    env["PYTHONPATH"] = os.pathsep.join(entries)
    return env


def spawn_worker(cfg: WorkerConfig) -> subprocess.Popen:
    """Start one parallel subprocess from its config file."""
    cfg_path = WorkerConfig.path(cfg.workdir, cfg.rank)
    cfg_path.write_text(cfg.to_json())
    log_dir = Path(cfg.workdir) / "logs"
    log_dir.mkdir(parents=True, exist_ok=True)
    # Popen duplicates the descriptor for the child; closing the
    # parent's handle here keeps long monitored runs (every migration,
    # rebalance and restart respawns workers) from accumulating open
    # files in the submitting process.
    with open(log_dir / f"rank{cfg.rank:04d}.stdout", "ab") as log:
        return subprocess.Popen(
            [sys.executable, "-m", "repro.distrib.worker", str(cfg_path)],
            stdout=log,
            stderr=subprocess.STDOUT,
            cwd=cfg.workdir,
            env=_worker_env(),
        )


def submit_all(
    workdir: str | Path,
    hostdb: HostDB,
    n_ranks: int,
    base_cfg: dict,
) -> dict[int, subprocess.Popen]:
    """Select free hosts for every rank and start the workers.

    ``base_cfg`` carries the common :class:`WorkerConfig` fields
    (steps_total, save_every, ...); per-rank fields are filled here.

    Submission is all-or-nothing: if spawning any rank fails, the
    already-started workers are killed and every host assignment made
    here is rolled back before the error propagates, so the host
    database never records ranks of a run that does not exist.
    """
    workdir = Path(workdir)
    (workdir / "logs").mkdir(parents=True, exist_ok=True)
    hosts = hostdb.select_free(n_ranks)
    procs: dict[int, subprocess.Popen] = {}
    assigned: list[str] = []
    try:
        for rank, host in enumerate(hosts):
            hostdb.assign(host.name, rank)
            assigned.append(host.name)
            cfg = WorkerConfig(
                workdir=str(workdir),
                rank=rank,
                host=host.name,
                generation=0,
                **base_cfg,
            )
            procs[rank] = spawn_worker(cfg)
    except BaseException:
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
        for proc in procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        for name in assigned:
            hostdb.assign(name, None)
        raise
    return procs
