"""Serializable problem specification shared by all distributed programs.

The paper's parallel processes "execute the same program on different
data": every workstation runs the identical solver binary, parameterized
by a dump file.  Here the equivalent of the compiled-in problem setup is
a JSON-serializable :class:`ProblemSpec` that the initialization,
decomposition, submit and worker programs all reconstruct identically —
geometry and boundary conditions are specified by *name + parameters*
(not by code objects) so a worker restarted on a different host after a
migration rebuilds bit-identical boundary conditions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.decomposition import Decomposition
from ..fluids.boundary import GlobalBox, PressureOutlet, VelocityInlet
from ..fluids.fd import FDMethod
from ..fluids.geometry import channel_geometry, flue_pipe
from ..fluids.lbm import LBMethod
from ..fluids.params import FluidParams

__all__ = ["ProblemSpec"]


@dataclass(frozen=True)
class ProblemSpec:
    """Everything needed to reconstruct the problem on any host.

    Parameters
    ----------
    method:
        ``"fd"`` or ``"lb"``.
    grid_shape:
        Global grid nodes per axis (also fixes the dimensionality).
    blocks:
        Decomposition block counts per axis.
    periodic:
        Per-axis periodicity.
    params:
        Keyword arguments of :class:`~repro.fluids.FluidParams`.
    geometry:
        ``{"kind": "open"}`` (no walls),
        ``{"kind": "channel", "wall_nodes": int}`` or
        ``{"kind": "flue_pipe", "variant": ..., "jet_speed": ...,
        "ramp_steps": ...}``.
    weights:
        Optional per-axis block weights for a non-uniform decomposition
        (see :class:`~repro.core.decomposition.Decomposition`); the
        rebalance coordinator rewrites this field with the adopted
        integer shares so restarted workers re-cut identically.
    """

    method: str
    grid_shape: tuple[int, ...]
    blocks: tuple[int, ...]
    periodic: tuple[bool, ...]
    params: dict[str, Any] = field(default_factory=dict)
    geometry: dict[str, Any] = field(default_factory=lambda: {"kind": "open"})
    weights: tuple[tuple[float, ...] | None, ...] | None = None

    def __post_init__(self) -> None:
        if self.method not in ("fd", "lb"):
            raise ValueError(f"unknown method {self.method!r}")
        kind = self.geometry.get("kind", "open")
        if kind not in ("open", "channel", "flue_pipe"):
            raise ValueError(f"unknown geometry kind {kind!r}")
        # Normalize JSON artifacts so a spec round-trips to an equal
        # value (lists decode where tuples were encoded).
        if "gravity" in self.params:
            self.params["gravity"] = tuple(self.params["gravity"])
        if self.weights is not None:
            norm = tuple(
                None if w is None else tuple(float(x) for x in w)
                for w in self.weights
            )
            object.__setattr__(self, "weights", norm)

    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    def build_params(self) -> FluidParams:
        """Reconstruct the FluidParams of this problem."""
        kw = dict(self.params)
        kw.setdefault("gravity", (0.0,) * self.ndim)
        kw["gravity"] = tuple(kw["gravity"])
        return FluidParams(**kw)

    def build_geometry(
        self,
    ) -> tuple[np.ndarray | None, list[VelocityInlet], list[PressureOutlet]]:
        """(solid mask, inlets, outlets) for this problem."""
        g = dict(self.geometry)
        kind = g.pop("kind", "open")
        if kind == "open":
            return None, [], []
        if kind == "channel":
            solid = channel_geometry(
                self.grid_shape, wall_nodes=g.get("wall_nodes", 1)
            )
            return solid, [], []
        if kind == "flue_pipe":
            if self.ndim != 2:
                raise ValueError("flue_pipe geometry is two-dimensional")
            setup = flue_pipe(self.grid_shape, **g)  # type: ignore[arg-type]
            return setup.solid, [setup.inlet], [setup.outlet]
        raise ValueError(f"unknown geometry kind {kind!r}")

    def build_method(self, backend: str | None = None):
        """Reconstruct the numerical method with its boundary conditions.

        ``backend`` optionally names a kernel backend (see
        :mod:`repro.fluids.backends`); the backend is per-process
        runtime state, not part of the spec — two ranks of one run may
        rebuild the same spec with different backends.
        """
        params = self.build_params()
        _, inlets, outlets = self.build_geometry()
        cls = FDMethod if self.method == "fd" else LBMethod
        return cls(
            params, self.ndim, inlets=inlets, outlets=outlets,
            backend=backend or None,
        )

    def build_decomposition(self) -> Decomposition:
        """Reconstruct the decomposition (inactive blocks included)."""
        solid, _, _ = self.build_geometry()
        return Decomposition(
            self.grid_shape,
            self.blocks,
            periodic=self.periodic,
            solid=solid,
            weights=self.weights,
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to canonical JSON."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProblemSpec":
        raw = json.loads(text)
        weights = raw.get("weights")
        if weights is not None:
            weights = tuple(
                None if w is None else tuple(w) for w in weights
            )
        return cls(
            method=raw["method"],
            grid_shape=tuple(raw["grid_shape"]),
            blocks=tuple(raw["blocks"]),
            periodic=tuple(bool(p) for p in raw["periodic"]),
            params=dict(raw.get("params", {})),
            geometry=dict(raw.get("geometry", {"kind": "open"})),
            weights=weights,
        )

    def save(self, path: str | Path) -> None:
        """Write the spec to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ProblemSpec":
        return cls.from_json(Path(path).read_text())
