"""Serializable problem specification shared by all distributed programs.

The paper's parallel processes "execute the same program on different
data": every workstation runs the identical solver binary, parameterized
by a dump file.  Here the equivalent of the compiled-in problem setup is
a JSON-serializable :class:`ProblemSpec` that the initialization,
decomposition, submit and worker programs all reconstruct identically —
geometry and boundary conditions are specified by *name + parameters*
(not by code objects) so a worker restarted on a different host after a
migration rebuilds bit-identical boundary conditions.

Spec versions
-------------
* **v1** — ``method`` is the string ``"fd"`` or ``"lb"``; every
  subregion runs that method.  The JSON form is unchanged from the
  original design (no ``spec_version`` key), so checkpoints, serve
  cache entries and job directories written before hybrid runs existed
  round-trip byte-identically and keep their content hashes.
* **v2** — ``method`` is a region map ``{"default": "fd", "regions":
  [{"method": "lb", "box": [[lo...], [hi...]]}, ...]}`` assigning a
  method per subregion: a block runs the method of the *last* region
  whose half-open global-node box fully contains it, else the default.
  A region that only partially overlaps some block is a loud error —
  seams live on block faces, never inside a block.  The JSON form
  carries an explicit ``"spec_version": 2``; unknown versions raise.

Maps that select a single method everywhere (no regions, or regions
that all repeat the default) normalize down to the plain v1 string, so
spelling variants of the same problem hash identically in the serve
layer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.decomposition import Decomposition
from ..fluids.boundary import GlobalBox, PressureOutlet, VelocityInlet
from ..fluids.fd import FDMethod
from ..fluids.geometry import (
    channel_geometry,
    cylinder_channel,
    flue_pipe,
    lid_cavity,
)
from ..fluids.lbm import LBMethod
from ..fluids.params import FluidParams

__all__ = ["ProblemSpec", "METHOD_CLASSES"]

#: canonical method name -> implementation
METHOD_CLASSES = {"fd": FDMethod, "lb": LBMethod}

#: spec versions this build can read
KNOWN_SPEC_VERSIONS = (1, 2)


def _normalize_method(method, grid_shape) -> str | dict[str, Any]:
    """Validate and canonicalize the ``method`` field (docstring above)."""
    if isinstance(method, str):
        if method not in METHOD_CLASSES:
            raise ValueError(f"unknown method {method!r}")
        return method
    if not isinstance(method, dict):
        raise ValueError(
            f"method must be a string or a region map, got {type(method).__name__}"
        )
    unknown = set(method) - {"default", "regions"}
    if unknown:
        raise ValueError(f"unknown method-map keys {sorted(unknown)}")
    default = method.get("default")
    if default not in METHOD_CLASSES:
        raise ValueError(f"unknown default method {default!r}")
    ndim = len(grid_shape)
    regions: list[dict[str, Any]] = []
    for reg in method.get("regions", ()):
        if not isinstance(reg, dict) or set(reg) - {"method", "box"}:
            raise ValueError(f"malformed method region {reg!r}")
        m = reg.get("method")
        if m not in METHOD_CLASSES:
            raise ValueError(f"unknown region method {m!r}")
        box = reg.get("box")
        if (
            not isinstance(box, (list, tuple))
            or len(box) != 2
            or any(len(side) != ndim for side in box)
        ):
            raise ValueError(
                f"region box must be [[lo...], [hi...]] with {ndim} "
                f"components each, got {box!r}"
            )
        lo = [int(x) for x in box[0]]
        hi = [int(x) for x in box[1]]
        for d in range(ndim):
            if not (0 <= lo[d] < hi[d] <= grid_shape[d]):
                raise ValueError(
                    f"region box {box!r} outside grid {tuple(grid_shape)} "
                    f"(half-open global node coordinates)"
                )
        # A region repeating the default is a no-op *unless* it
        # overlaps an earlier region it must override (last wins).
        overlaps_earlier = any(
            all(r["box"][0][d] < hi[d] and lo[d] < r["box"][1][d]
                for d in range(ndim))
            for r in regions
        )
        if m != default or overlaps_earlier:
            regions.append({"box": [lo, hi], "method": m})
    if not regions:
        return default  # single-method map -> canonical v1 string
    return {"default": default, "regions": regions}


@dataclass(frozen=True)
class ProblemSpec:
    """Everything needed to reconstruct the problem on any host.

    Parameters
    ----------
    method:
        ``"fd"`` / ``"lb"``, or a per-region method map (module
        docstring); normalized at construction.
    grid_shape:
        Global grid nodes per axis (also fixes the dimensionality).
    blocks:
        Decomposition block counts per axis.
    periodic:
        Per-axis periodicity.
    params:
        Keyword arguments of :class:`~repro.fluids.FluidParams`.
    geometry:
        ``{"kind": "open"}`` (no walls),
        ``{"kind": "channel", "wall_nodes": int}``,
        ``{"kind": "flue_pipe", "variant": ..., "jet_speed": ...,
        "ramp_steps": ...}``,
        ``{"kind": "cavity", "lid_speed": ..., "wall_nodes": ...,
        "ramp_steps": ...}`` (lid-driven cavity) or
        ``{"kind": "cylinder", "radius_frac": ..., "center_frac": ...,
        "wall_nodes": ...}`` (cylinder in a channel).
    weights:
        Optional per-axis block weights for a non-uniform decomposition
        (see :class:`~repro.core.decomposition.Decomposition`); the
        rebalance coordinator rewrites this field with the adopted
        integer shares so restarted workers re-cut identically.
    init:
        Optional named initial condition, ``{"kind": ..., **options}``
        with the kinds of :func:`repro.distrib.initial_fields`
        (``"standing_wave"``, ``"random"``, ``"taylor_green"``,
        ``"uniform_flow"``); ``None``
        means start from rest.  Part of the spec — and hence of serve
        content hashes — because the initial state determines the
        solution.  Omitted from the JSON form when ``None`` so
        pre-existing v1 artifacts and their hashes are unchanged.
    """

    method: str | dict[str, Any]
    grid_shape: tuple[int, ...]
    blocks: tuple[int, ...]
    periodic: tuple[bool, ...]
    params: dict[str, Any] = field(default_factory=dict)
    geometry: dict[str, Any] = field(default_factory=lambda: {"kind": "open"})
    weights: tuple[tuple[float, ...] | None, ...] | None = None
    init: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "method", _normalize_method(self.method, self.grid_shape)
        )
        kind = self.geometry.get("kind", "open")
        if kind not in ("open", "channel", "flue_pipe", "cavity", "cylinder"):
            raise ValueError(f"unknown geometry kind {kind!r}")
        if "center_frac" in self.geometry:
            geometry = dict(self.geometry)
            geometry["center_frac"] = tuple(geometry["center_frac"])
            object.__setattr__(self, "geometry", geometry)
        if self.init is not None:
            if not isinstance(self.init, dict) or "kind" not in self.init:
                raise ValueError(
                    f"init must be a dict with a 'kind' key, got {self.init!r}"
                )
            if self.init["kind"] not in (
                "rest", "standing_wave", "random", "taylor_green",
                "uniform_flow",
            ):
                raise ValueError(
                    f"unknown initial condition {self.init['kind']!r}"
                )
        # Normalize JSON artifacts so a spec round-trips to an equal
        # value (lists decode where tuples were encoded) — into a fresh
        # dict: the caller's params mapping is never mutated.
        if "gravity" in self.params:
            params = dict(self.params)
            params["gravity"] = tuple(params["gravity"])
            object.__setattr__(self, "params", params)
        if self.weights is not None:
            norm = tuple(
                None if w is None else tuple(float(x) for x in w)
                for w in self.weights
            )
            object.__setattr__(self, "weights", norm)

    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    # ------------------------------------------------------------------
    # method map
    # ------------------------------------------------------------------
    @property
    def spec_version(self) -> int:
        """1 for single-method string specs, 2 for region-map specs."""
        return 2 if isinstance(self.method, dict) else 1

    @property
    def is_hybrid(self) -> bool:
        """True when more than one method runs in this problem."""
        return isinstance(self.method, dict)

    @property
    def default_method(self) -> str:
        return self.method["default"] if self.is_hybrid else self.method

    @property
    def method_names(self) -> tuple[str, ...]:
        """Sorted distinct methods this problem runs."""
        if not self.is_hybrid:
            return (self.method,)
        names = {self.method["default"]}
        names.update(r["method"] for r in self.method["regions"])
        return tuple(sorted(names))

    @property
    def pad(self) -> int:
        """Ghost width of the run: the widest any involved method needs."""
        return max(METHOD_CLASSES[m].pad for m in self.method_names)

    def methods_by_rank(self) -> tuple[str, ...]:
        """Canonical method name per dense active rank.

        Resolves the region map against the block grid: a block takes
        the method of the last region that fully contains it.  A region
        that cuts through a block raises — method seams must coincide
        with subregion boundaries, where the ghost-exchange converters
        operate.
        """
        decomp = self.build_decomposition()
        blocks = decomp.active_blocks()
        if not self.is_hybrid:
            return (self.method,) * len(blocks)
        out = []
        for blk in blocks:
            name = self.method["default"]
            for reg in self.method["regions"]:
                lo, hi = reg["box"]
                inside = all(
                    lo[d] <= blk.lo[d] and blk.hi[d] <= hi[d]
                    for d in range(self.ndim)
                )
                outside = any(
                    blk.hi[d] <= lo[d] or hi[d] <= blk.lo[d]
                    for d in range(self.ndim)
                )
                if inside:
                    name = reg["method"]
                elif not outside:
                    raise ValueError(
                        f"method region box {reg['box']} cuts through "
                        f"block {blk.index} [{blk.lo}, {blk.hi}); align "
                        "region boundaries with block boundaries"
                    )
            out.append(name)
        return tuple(out)

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    def build_params(self) -> FluidParams:
        """Reconstruct the FluidParams of this problem."""
        kw = dict(self.params)
        kw.setdefault("gravity", (0.0,) * self.ndim)
        kw["gravity"] = tuple(kw["gravity"])
        return FluidParams(**kw)

    def build_geometry(
        self,
    ) -> tuple[np.ndarray | None, list[VelocityInlet], list[PressureOutlet]]:
        """(solid mask, inlets, outlets) for this problem."""
        g = dict(self.geometry)
        kind = g.pop("kind", "open")
        if kind == "open":
            return None, [], []
        if kind == "channel":
            solid = channel_geometry(
                self.grid_shape, wall_nodes=g.get("wall_nodes", 1)
            )
            return solid, [], []
        if kind == "flue_pipe":
            if self.ndim != 2:
                raise ValueError("flue_pipe geometry is two-dimensional")
            setup = flue_pipe(self.grid_shape, **g)  # type: ignore[arg-type]
            return setup.solid, [setup.inlet], [setup.outlet]
        if kind == "cavity":
            if self.ndim != 2:
                raise ValueError("cavity geometry is two-dimensional")
            solid, lid = lid_cavity(self.grid_shape, **g)  # type: ignore[arg-type]
            return solid, [lid], []
        if kind == "cylinder":
            if self.ndim != 2:
                raise ValueError("cylinder geometry is two-dimensional")
            solid = cylinder_channel(self.grid_shape, **g)  # type: ignore[arg-type]
            return solid, [], []
        raise ValueError(f"unknown geometry kind {kind!r}")

    def build_methods(self, backend: str | None = None) -> tuple:
        """One method instance per dense active rank.

        The single construction path for every runtime (facade, serial
        reference, workers, decomposer): one instance per *method kind*
        (methods keep no per-subregion state — it lives on the
        subregions), shared across the ranks running it, built with the
        run-wide ghost width :attr:`pad` so mixed-pad methods share one
        exchange plan.  ``backend`` optionally names a kernel backend
        (see :mod:`repro.fluids.backends`); the backend is per-process
        runtime state, not part of the spec.
        """
        params = self.build_params()
        _, inlets, outlets = self.build_geometry()
        pad = self.pad
        built = {
            name: METHOD_CLASSES[name](
                params, self.ndim, inlets=inlets, outlets=outlets,
                backend=backend or None,
                pad=None if METHOD_CLASSES[name].pad == pad else pad,
            )
            for name in self.method_names
        }
        return tuple(built[name] for name in self.methods_by_rank())

    def build_method(self, backend: str | None = None):
        """Reconstruct the single method of a v1 (non-hybrid) spec.

        Kept for single-method callers; hybrid specs have no single
        method and raise — use :meth:`build_methods`.
        """
        if self.is_hybrid:
            raise ValueError(
                "hybrid spec has no single method; use build_methods()"
            )
        params = self.build_params()
        _, inlets, outlets = self.build_geometry()
        return METHOD_CLASSES[self.method](
            params, self.ndim, inlets=inlets, outlets=outlets,
            backend=backend or None,
        )

    def build_decomposition(self) -> Decomposition:
        """Reconstruct the decomposition (inactive blocks included)."""
        solid, _, _ = self.build_geometry()
        return Decomposition(
            self.grid_shape,
            self.blocks,
            periodic=self.periodic,
            solid=solid,
            weights=self.weights,
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to canonical JSON.

        v1 specs emit the exact historical form (no ``spec_version``
        key) so on-disk artifacts and serve-layer content hashes from
        before the hybrid redesign are stable; v2 specs carry an
        explicit ``"spec_version": 2``.
        """
        raw = asdict(self)
        if self.spec_version != 1:
            raw["spec_version"] = self.spec_version
        if raw.get("init") is None:
            # keep the historical v1 field set: pre-init artifacts and
            # serve content hashes must not change
            raw.pop("init", None)
        return json.dumps(raw, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProblemSpec":
        raw = json.loads(text)
        method = raw["method"]
        inferred = 2 if isinstance(method, dict) else 1
        version = raw.get("spec_version", inferred)
        if version not in KNOWN_SPEC_VERSIONS:
            raise ValueError(
                f"unknown spec_version {version!r}; this build reads "
                f"versions {KNOWN_SPEC_VERSIONS}"
            )
        if version == 1 and inferred == 2:
            raise ValueError(
                "spec_version 1 cannot carry a method map; use "
                "spec_version 2"
            )
        weights = raw.get("weights")
        if weights is not None:
            weights = tuple(
                None if w is None else tuple(w) for w in weights
            )
        return cls(
            method=method,
            grid_shape=tuple(raw["grid_shape"]),
            blocks=tuple(raw["blocks"]),
            periodic=tuple(bool(p) for p in raw["periodic"]),
            params=dict(raw.get("params", {})),
            geometry=dict(raw.get("geometry", {"kind": "open"})),
            weights=weights,
            init=raw.get("init"),
        )

    def save(self, path: str | Path) -> None:
        """Write the spec to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ProblemSpec":
        return cls.from_json(Path(path).read_text())
