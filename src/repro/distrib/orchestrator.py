"""One-call driver for a distributed run (init -> decompose -> submit ->
monitor -> collect).

The paper performs initialization, decomposition, job submission and
monitoring on one designated workstation; :class:`DistributedRun` plays
that workstation.  The result of a completed run is the set of final
dump files, reassembled into global arrays for comparison against the
serial program — the integration tests assert bit-for-bit equality.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from ..balance.planner import BalancePolicy
from ..core.subregion import assemble_global
from .decompose import decompose_problem
from .dumpfile import dump_path, load_dump
from .hostdb import HostDB, HostInfo, paper_cluster
from .monitor import Monitor
from .settings import WorkerKnobs, worker_knob_names
from .spec import ProblemSpec
from .submit import submit_all

__all__ = ["RunSettings", "DistributedRun", "run_distributed"]


@dataclass
class RunSettings(WorkerKnobs):
    """Knobs of a distributed run (worker + monitor configuration).

    Every knob a worker sees is inherited from
    :class:`~repro.distrib.settings.WorkerKnobs` — the same base
    :class:`~repro.distrib.worker.WorkerConfig` extends — so a knob
    added there reaches the workers without any copying here.  The
    fields declared below are the monitor's own.
    """

    steps: int
    monitor_poll: float = 0.02
    stall_timeout: float = 60.0
    run_timeout: float = 300.0
    hosts: list[HostInfo] = field(default_factory=paper_cluster)
    policy: str = "migrate"    # "migrate" (§5.1) or "rebalance"
    #  (adaptive load balancing: resize slabs instead of leaving hosts)
    balance_threshold: float = 0.05
    balance_cooldown: float = 5.0
    balance_min_gain: float = 1.0
    balance_state_bytes: float = 72.0
    balance_bandwidth: float = 12.5e6   # local disks + loopback move
    #  dump state far faster than the paper's Ethernet model

    def balance_policy(self) -> BalancePolicy:
        """The :class:`~repro.balance.BalancePolicy` these knobs select."""
        return BalancePolicy(
            threshold=self.balance_threshold,
            cooldown=self.balance_cooldown,
            min_gain=self.balance_min_gain,
            state_bytes_per_node=self.balance_state_bytes,
            bandwidth=self.balance_bandwidth,
        )

    def worker_base_cfg(self) -> dict:
        """The WorkerConfig fields shared by every rank.

        Derived from the :class:`WorkerKnobs` field list, so the set of
        forwarded knobs cannot drift from the worker's declaration.
        """
        base = {name: getattr(self, name) for name in worker_knob_names()}
        base["steps_total"] = self.steps
        return base


class DistributedRun:
    """A full distributed computation in a working directory."""

    def __init__(
        self,
        spec: ProblemSpec,
        global_fields: Mapping[str, np.ndarray],
        workdir: str | Path,
        settings: RunSettings,
    ) -> None:
        self.spec = spec
        self.settings = settings
        # Workers run with cwd=workdir, so a relative workdir would
        # make every path in their config resolve against itself.
        self.workdir = Path(workdir).resolve()
        if self.workdir.exists() and any(self.workdir.iterdir()):
            raise ValueError(f"workdir {self.workdir} is not empty")
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.decomp = spec.build_decomposition()
        decompose_problem(spec, global_fields, self.workdir)
        if settings.execution == "graph":
            self._write_graph(spec)
        self.hostdb = HostDB(self.workdir / "hosts.json")
        self.hostdb.initialize(settings.hosts)
        self.monitor: Monitor | None = None

    def _write_graph(self, spec: ProblemSpec) -> None:
        """Plan the run's task DAG and stage it in the workdir.

        ``graph/graph.json`` is the full plan (the monitor replays
        heartbeats against it to name stalled ranks); each
        ``graph/rank%04d.json`` is one rank's slice — the nodes it owns
        plus its estimated per-step cost, enough for the worker to
        flag its own overruns without parsing the whole graph.
        """
        from ..fluids.coupling import build_converters
        from ..graph import plan_graph

        methods = spec.build_methods()
        converter_edges = ()
        if spec.is_hybrid:
            converter_edges = tuple(
                sorted(build_converters(self.decomp, methods))
            )
        graph = plan_graph(
            self.decomp,
            methods,
            self.settings.steps,
            converter_edges=converter_edges,
            diag_every=self.settings.diag_every,
            save_every=self.settings.save_every,
        )
        gdir = self.workdir / "graph"
        gdir.mkdir(parents=True, exist_ok=True)
        graph.save(gdir / "graph.json")
        import json

        for rank in (b.rank for b in self.decomp.active_blocks()):
            owned = [n for n in graph.rank_slice(rank) if n.rank == rank]
            slice_payload = {
                "rank": rank,
                "steps": self.settings.steps,
                "step_cost": graph.step_cost(rank),
                "counts": {},
                "nodes": [
                    [n.kind, n.step, n.phase, n.axis, n.side,
                     round(n.cost, 12)]
                    for n in owned
                ],
            }
            for n in owned:
                counts = slice_payload["counts"]
                counts[n.kind] = counts.get(n.kind, 0) + 1
            (gdir / f"rank{rank:04d}.json").write_text(
                json.dumps(slice_payload, sort_keys=True) + "\n"
            )

    def start(self) -> Monitor:
        """Submit the workers and return the live monitor."""
        procs = submit_all(
            self.workdir,
            self.hostdb,
            self.decomp.n_active,
            self.settings.worker_base_cfg(),
        )
        self.monitor = Monitor(
            self.workdir,
            self.hostdb,
            procs,
            self.settings.worker_base_cfg(),
            poll=self.settings.monitor_poll,
            stall_timeout=self.settings.stall_timeout,
            policy=self.settings.policy,
            balance=self.settings.balance_policy(),
        )
        return self.monitor

    def wait(self) -> None:
        """Block until the monitor drives every worker to completion."""
        assert self.monitor is not None, "call start() first"
        self.monitor.run(timeout=self.settings.run_timeout)

    def collect(self, fill: float = 0.0) -> dict[str, np.ndarray]:
        """Reassemble the final dumps into global field arrays.

        The decomposition is reloaded from the workdir's ``spec.json``
        rather than taken from construction time: a rebalance epoch
        rewrites the spec with the adopted slab weights, and assembling
        the re-cut dumps against the stale uniform blocks would
        misplace every interior.
        """
        decomp = ProblemSpec.load(
            self.workdir / "spec.json"
        ).build_decomposition()
        subs = [
            load_dump(dump_path(self.workdir / "dumps", rank, tag="final"))
            for rank in range(decomp.n_active)
        ]
        steps = {s.step for s in subs}
        if len(steps) != 1:
            raise RuntimeError(f"final dumps at different steps: {steps}")
        # On a hybrid run only the fields every rank holds reassemble
        # globally (method-private fields like the LB populations live
        # on their own subregions only).
        names = [
            name
            for name in subs[0].field_names()
            if all(name in s.fields for s in subs)
        ]
        return {
            name: assemble_global(decomp, subs, name, fill)
            for name in names
        }

    def cleanup(self) -> None:
        """Delete the working directory."""
        shutil.rmtree(self.workdir, ignore_errors=True)


def run_distributed(
    spec: ProblemSpec,
    global_fields: Mapping[str, np.ndarray],
    workdir: str | Path,
    settings: RunSettings,
) -> dict[str, np.ndarray]:
    """Run to completion and return the reassembled global state.

    Thin historical wrapper; prefer ``repro.run(spec,
    backend="distributed", settings=...)``, which also returns the
    diagnostics records and the merged trace.
    """
    run = DistributedRun(spec, global_fields, workdir, settings)
    run.start()
    run.wait()
    return run.collect()
