"""Virtual host registry: the cluster of non-dedicated workstations.

The paper's job-submit program separates workstations into idle-user and
active-user groups, examines the fifteen-minute CPU load average (via
``uptime``), and selects hosts whose load is below 0.6 — idle-user hosts
first, 715/50 models before the slightly slower 710 and 720 models.
The monitoring program later watches the five-minute average and
requests a migration when it exceeds 1.5 (a second full-time process).

We reproduce the whole decision logic against a *virtual* registry: a
flock-guarded JSON file on the shared filesystem records, per host, the
machine model, emulated load averages and user idle time, plus the rank
currently assigned to it.  Tests and the load generator perturb the
emulated loads exactly the way real users would perturb ``uptime``.
"""

from __future__ import annotations

import fcntl
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["HostInfo", "HostDB", "paper_cluster"]

#: §4.1 — submit-time load ceiling ("the load must be less than 0.6").
SUBMIT_LOAD_LIMIT = 0.6
#: §5.1 — migration trigger ("exceeds a pre-set value, typically 1.5").
MIGRATE_LOAD_LIMIT = 1.5
#: §4.1 — "more than 20 minutes idle time" marks an idle-user host.
IDLE_USER_MINUTES = 20.0

#: Paper's model preference order (§7: "choose 715 models first before
#: choosing the slightly slower 710 and 720 models").
_MODEL_PREFERENCE = {"715/50": 0, "720": 1, "710": 2}


@dataclass
class HostInfo:
    """One workstation's registry entry."""

    name: str
    model: str = "715/50"
    load5: float = 0.0          # five-minute CPU load average
    load15: float = 0.0         # fifteen-minute CPU load average
    idle_minutes: float = 60.0  # console idle time of the regular user
    rank: int | None = None     # parallel subprocess currently hosted

    @property
    def idle_user(self) -> bool:
        return self.idle_minutes > IDLE_USER_MINUTES


class HostDB:
    """flock-guarded JSON host registry."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def initialize(self, hosts: list[HostInfo]) -> None:
        """Create the registry with the given workstations."""
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise ValueError("host names must be unique")
        self._write({h.name: asdict(h) for h in hosts})

    def _write(self, raw: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(raw, fh, indent=1, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def _read(self) -> dict:
        if not self.path.exists():
            return {}
        with open(self.path, "r") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_SH)
            try:
                return json.load(fh)
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def _update(self, mutate) -> None:
        """Read-modify-write under an exclusive lock on a sidecar file."""
        lock = self.path.with_suffix(".lock")
        lock.parent.mkdir(parents=True, exist_ok=True)
        with open(lock, "a") as lk:
            fcntl.flock(lk.fileno(), fcntl.LOCK_EX)
            try:
                raw = self._read()
                mutate(raw)
                self._write(raw)
            finally:
                fcntl.flock(lk.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def hosts(self) -> list[HostInfo]:
        """All registered workstations."""
        return [HostInfo(**h) for h in self._read().values()]

    def get(self, name: str) -> HostInfo:
        """One workstation's entry by name."""
        return HostInfo(**self._read()[name])

    def host_of_rank(self, rank: int) -> HostInfo | None:
        """The workstation currently running ``rank``, if any."""
        for h in self.hosts():
            if h.rank == rank:
                return h
        return None

    def select_free(
        self,
        n: int,
        exclude: set[str] = frozenset(),
        load_limit: float = SUBMIT_LOAD_LIMIT,
    ) -> list[HostInfo]:
        """The §4.1 free-workstation search.

        Examine idle-user workstations first, then active-user ones;
        within each group prefer the fastest model class; accept a host
        when its fifteen-minute load average is below ``load_limit`` and
        it does not already run a parallel subprocess.
        """
        candidates = [
            h
            for h in self.hosts()
            if h.name not in exclude
            and h.rank is None
            and h.load15 < load_limit
        ]
        candidates.sort(
            key=lambda h: (
                0 if h.idle_user else 1,
                _MODEL_PREFERENCE.get(h.model, 99),
                h.load15,
                h.name,
            )
        )
        if len(candidates) < n:
            raise RuntimeError(
                f"need {n} free workstations, only {len(candidates)} "
                "satisfy the §4.1 criteria"
            )
        return candidates[:n]

    def overloaded(self, limit: float = MIGRATE_LOAD_LIMIT) -> list[HostInfo]:
        """Hosts whose five-minute load demands a migration (§5.1)."""
        return [
            h for h in self.hosts() if h.rank is not None and h.load5 > limit
        ]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def assign(self, name: str, rank: int | None) -> None:
        """Record (or clear, with None) a rank's placement on a host."""
        def mutate(raw: dict) -> None:
            raw[name]["rank"] = rank

        self._update(mutate)

    def set_load(
        self,
        name: str,
        load5: float | None = None,
        load15: float | None = None,
        idle_minutes: float | None = None,
    ) -> None:
        """Perturb a host's emulated ``uptime`` numbers."""

        def mutate(raw: dict) -> None:
            h = raw[name]
            if load5 is not None:
                h["load5"] = load5
            if load15 is not None:
                h["load15"] = load15
            if idle_minutes is not None:
                h["idle_minutes"] = idle_minutes

        self._update(mutate)


def paper_cluster(prefix: str = "hp") -> list[HostInfo]:
    """The paper's 25-workstation cluster (§7).

    Sixteen 715/50 models, six 720 models, three 710 models, all idle.
    """
    hosts = []
    for i in range(16):
        hosts.append(HostInfo(name=f"{prefix}715-{i:02d}", model="715/50"))
    for i in range(6):
        hosts.append(HostInfo(name=f"{prefix}720-{i:02d}", model="720"))
    for i in range(3):
        hosts.append(HostInfo(name=f"{prefix}710-{i:02d}", model="710"))
    return hosts
