"""In-flight global diagnostics over the collective layer.

The paper's monitor "checks every few minutes whether the parallel
processes are progressing correctly" (§4.1) — but a worker that starts
spewing NaNs keeps stepping and heartbeating happily until the run ends
or stalls.  This module gives the run a physical pulse: every ``every``
steps the workers allreduce total mass, kinetic energy and max |V| (a
CFL/Mach sentinel for the weakly-compressible methods), append the
record to a per-run ``diagnostics.jsonl`` the monitor consumes as a
progress heartbeat, and abort with
:data:`~repro.distrib.worker.EXIT_DIAGNOSTIC` the moment a NaN or CFL
violation goes global — a *diagnosed* failure instead of a stall
timeout.

The same partials/fold also run under the serial and threaded runners
through the in-process backend, so a distributed diagnostic stream can
be validated bit-for-bit against a serial one.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..net.collectives import Communicator, build_schedule, drive_all
from .sync import _locked_append

__all__ = [
    "DEFAULT_VMAX",
    "DiagRecord",
    "DiagnosticsFailure",
    "DiagnosticsLog",
    "GlobalDiagnostics",
    "local_partials",
    "fold_partials",
    "serial_diagnostics",
]

#: Default max-|V| abort threshold: the lattice speed of sound
#: ``c_s = 1/sqrt(3)``.  Both methods are weakly-compressible, valid for
#: Mach << 1; a velocity at c_s means the run is physically gone even if
#: it has not overflowed yet.
DEFAULT_VMAX = 1.0 / np.sqrt(3.0)

#: Collective-sequence slots reserved per integration step.  The
#: communicator's op counter is pinned to ``step * SEQ_PER_STEP`` before
#: each check, so a rank restarted after migration (counter reset)
#: stays in lockstep with the survivors.
SEQ_PER_STEP = 8


class DiagnosticsFailure(RuntimeError):
    """A globally-reduced quantity crossed an abort threshold."""

    def __init__(self, record: "DiagRecord", reason: str) -> None:
        super().__init__(f"step {record.step}: {reason}")
        self.record = record
        self.reason = reason


@dataclass
class DiagRecord:
    """One globally-reduced diagnostics sample (a JSONL line)."""

    step: int
    total_mass: float
    kinetic_energy: float
    max_speed: float
    n_nonfinite: int
    wall_time: float = 0.0

    def to_line(self) -> str:
        """Serialize as one JSON line (non-strict JSON carries NaN)."""
        return json.dumps(asdict(self)) + "\n"

    @classmethod
    def from_line(cls, line: str) -> "DiagRecord":
        """Parse one JSON line back into a record."""
        d = json.loads(line)
        return cls(
            step=int(d["step"]),
            total_mass=float(d["total_mass"]),
            kinetic_energy=float(d["kinetic_energy"]),
            max_speed=float(d["max_speed"]),
            n_nonfinite=int(d["n_nonfinite"]),
            wall_time=float(d.get("wall_time", 0.0)),
        )


class DiagnosticsLog:
    """Reader/writer of a run's ``diagnostics.jsonl``.

    Appends are flock'd and fsync'd like every other shared file of the
    run; the reader tolerates a torn final line (a crash mid-append).
    """

    FILENAME = "diagnostics.jsonl"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @classmethod
    def for_workdir(cls, workdir: str | Path) -> "DiagnosticsLog":
        """The canonical per-run log location."""
        return cls(Path(workdir) / cls.FILENAME)

    def append(self, record: DiagRecord) -> None:
        """Append one record (locked, fsync'd)."""
        _locked_append(self.path, record.to_line())

    def read(self) -> list[DiagRecord]:
        """All complete records, oldest first."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                out.append(DiagRecord.from_line(line))
            except (ValueError, KeyError):  # torn tail line
                continue
        return out

    def last(self) -> DiagRecord | None:
        """The newest complete record, or ``None``."""
        recs = self.read()
        return recs[-1] if recs else None

    def last_step(self) -> int | None:
        """Step of the newest complete record (a progress signal)."""
        rec = self.last()
        return rec.step if rec is not None else None


def local_partials(sub) -> np.ndarray:
    """One subregion's contribution: ``[mass, ke, max|V|, n_nonfinite]``.

    Computed over the *interior* fluid nodes only (ghosts belong to the
    neighbour, solids carry no fluid).  The first two entries fold with
    ``sum``, the last two with ``max``.
    """
    interior_solid = sub.solid[sub.interior]
    fluid = ~interior_solid
    rho = sub.interior_view("rho")[fluid]
    vsq = np.zeros_like(rho)
    checked = [rho]
    for name in ("u", "v", "w"):
        if name in sub.fields:
            vel = sub.interior_view(name)[fluid]
            vsq += vel * vel
            checked.append(vel)
    mass = float(rho.sum())
    ke = float(0.5 * (rho * vsq).sum())
    max_speed = float(np.sqrt(vsq.max())) if vsq.size else 0.0
    n_nonfinite = int(sum(np.count_nonzero(~np.isfinite(a))
                          for a in checked))
    return np.array([mass, ke, max_speed, float(n_nonfinite)])


def fold_partials(parts: list[np.ndarray]) -> np.ndarray:
    """Rank-ordered serial fold of partials — the bit-for-bit reference.

    Matches what the collective allreduce produces for these small
    payloads on any transport and either algorithm.
    """
    sums = parts[0][:2]
    maxs = parts[0][2:]
    for p in parts[1:]:
        sums = np.add(sums, p[:2])
        maxs = np.maximum(maxs, p[2:])
    return np.concatenate([sums, maxs])


def serial_diagnostics(subs, step: int | None = None,
                       algorithm: str = "tree") -> DiagRecord:
    """Global diagnostics of in-process subregions (serial runners).

    Runs the very same allgather schedules as the distributed path,
    interleaved co-operatively in this thread, then folds in rank
    order — so the record is bit-for-bit what a distributed run of the
    same decomposition reports.
    """
    parts = [local_partials(s) for s in subs]
    n = len(parts)
    if n > 1:
        gens = {
            r: build_schedule("allgather", algorithm, r, n,
                              parts[r].tobytes())
            for r in range(n)
        }
        blocks = drive_all(gens)[0]
        parts = [np.frombuffer(b, np.float64) for b in blocks]
    folded = fold_partials(parts)
    return DiagRecord(
        step=int(subs[0].step if step is None else step),
        total_mass=float(folded[0]),
        kinetic_energy=float(folded[1]),
        max_speed=float(folded[2]),
        n_nonfinite=int(folded[3]),
        wall_time=time.time(),
    )


class GlobalDiagnostics:
    """Periodic allreduced diagnostics with abort thresholds.

    One instance per rank; ``check`` must be reached by every rank of
    the communicator's group at the same integration step.  Rank 0
    appends each record to ``log``.  A global NaN (or a max speed above
    ``vmax``) raises :class:`DiagnosticsFailure` on *every* rank — they
    all computed the same reduced record — so the whole run aborts in
    one step, diagnosed.
    """

    def __init__(
        self,
        comm: Communicator,
        every: int,
        vmax: float = DEFAULT_VMAX,
        log: DiagnosticsLog | None = None,
        pin_seq: bool = True,
    ) -> None:
        if every < 0:
            raise ValueError("diagnostics period must be >= 0")
        self.comm = comm
        self.every = every
        self.vmax = vmax
        self.log = log
        self.pin_seq = pin_seq
        self.last: DiagRecord | None = None

    def maybe_check(self, sub) -> DiagRecord | None:
        """Run :meth:`check` if the subregion's step is due."""
        if self.every <= 0 or sub.step == 0 or sub.step % self.every:
            return None
        return self.check(sub)

    def check(self, sub) -> DiagRecord:
        """Allreduce this step's partials; abort on NaN/CFL violation."""
        if self.pin_seq:
            self.comm.seq = sub.step * SEQ_PER_STEP
        partials = local_partials(sub)
        sums = self.comm.allreduce(partials[:2], "sum")
        maxs = self.comm.allreduce(partials[2:], "max")
        record = DiagRecord(
            step=int(sub.step),
            total_mass=float(sums[0]),
            kinetic_energy=float(sums[1]),
            max_speed=float(maxs[0]),
            n_nonfinite=int(maxs[1]),
            wall_time=time.time(),
        )
        self.last = record
        if self.log is not None and self.comm.rank == 0:
            self.log.append(record)
        if record.n_nonfinite:
            raise DiagnosticsFailure(
                record,
                f"non-finite values in the global state "
                f"(a rank reported {record.n_nonfinite} bad nodes)",
            )
        if self.vmax > 0.0 and record.max_speed > self.vmax:
            raise DiagnosticsFailure(
                record,
                f"max |V| = {record.max_speed:.4f} exceeds the "
                f"CFL/Mach sentinel {self.vmax:.4f}",
            )
        return record
