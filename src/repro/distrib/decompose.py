"""The decomposition program (paper §4.1).

"The decomposition program decomposes the initial state into subregions,
generates local states for each subregion, and saves them in separate
files, called dump files."  Initialization and decomposition are
performed serially by one designated workstation, exactly as the paper
chooses for simplicity.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from ..core.subregion import make_subregions
from .dumpfile import dump_path, save_dump
from .spec import ProblemSpec

__all__ = ["decompose_problem"]


def decompose_problem(
    spec: ProblemSpec,
    global_fields: Mapping[str, np.ndarray],
    workdir: str | Path,
) -> list[Path]:
    """Cut the global initial state into per-rank dump files.

    Method-private fields (the LB populations) are materialized here by
    ``init_subregion`` so every dump is complete: a workstation needs
    nothing but its dump file and the problem spec to participate.
    Returns the dump paths indexed by rank.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    spec.save(workdir / "spec.json")

    methods = spec.build_methods()
    decomp = spec.build_decomposition()
    solid, _, _ = spec.build_geometry()
    subs = make_subregions(decomp, spec.pad, global_fields, solid)
    paths = []
    for sub, method in zip(subs, methods):
        method.init_subregion(sub)
        path = dump_path(workdir / "dumps", sub.block.rank)
        save_dump(sub, path)
        paths.append(path)
    return paths
