"""The initialization program (paper §4.1).

"The initialization program produces the initial state of the problem to
be solved as if there was only one workstation" — global field arrays on
the full grid.  Named initial conditions cover the problems of the
paper; arbitrary arrays can also be passed straight to the decomposition
program.
"""

from __future__ import annotations

import numpy as np

from ..fluids.analytic import standing_wave
from .spec import ProblemSpec

__all__ = ["initial_fields"]


def initial_fields(
    spec: ProblemSpec,
    kind: str = "rest",
    **kw,
) -> dict[str, np.ndarray]:
    """Build the global initial state for a problem.

    Kinds
    -----
    ``"rest"``:
        Uniform density ``rho0``, zero velocity — the start of every
        flue-pipe and Poiseuille run (the jet/body force does the rest).
    ``"standing_wave"``:
        A small acoustic standing wave along x (options: ``mode``,
        ``amplitude``), used by wave-propagation validations.
    ``"random"``:
        Reproducible random density perturbation (options: ``seed``,
        ``amplitude``), used by robustness and conservation tests.
    """
    params = spec.build_params()
    shape = spec.grid_shape
    ndim = spec.ndim
    vel_names = ("u", "v", "w")[:ndim]

    fields: dict[str, np.ndarray] = {
        "rho": np.full(shape, params.rho0, dtype=np.float64)
    }
    for name in vel_names:
        fields[name] = np.zeros(shape, dtype=np.float64)

    if kind == "rest":
        pass
    elif kind == "standing_wave":
        mode = int(kw.get("mode", 1))
        amplitude = float(kw.get("amplitude", 1e-3))
        x = (np.arange(shape[0], dtype=np.float64) + 0.5) * params.dx
        rho_1d, u_1d = standing_wave(
            x,
            t=0.0,
            length=shape[0] * params.dx,
            mode=mode,
            amplitude=amplitude,
            rho0=params.rho0,
            cs=params.cs,
        )
        expand = (...,) + (None,) * (ndim - 1)
        fields["rho"][:] = rho_1d[expand]
        fields["u"][:] = u_1d[expand]
    elif kind == "random":
        seed = int(kw.get("seed", 0))
        amplitude = float(kw.get("amplitude", 1e-3))
        rng = np.random.default_rng(seed)
        fields["rho"] += amplitude * (rng.random(shape) - 0.5)
    else:
        raise ValueError(f"unknown initial condition {kind!r}")

    # Solid nodes start at the reference state.
    solid, _, _ = spec.build_geometry()
    if solid is not None:
        fields["rho"][solid] = params.rho0
        for name in vel_names:
            fields[name][solid] = 0.0
    return fields
