"""The initialization program (paper §4.1).

"The initialization program produces the initial state of the problem to
be solved as if there was only one workstation" — global field arrays on
the full grid.  Named initial conditions cover the problems of the
paper; arbitrary arrays can also be passed straight to the decomposition
program.
"""

from __future__ import annotations

import numpy as np

from ..fluids.analytic import standing_wave, taylor_green
from .spec import ProblemSpec

__all__ = ["initial_fields"]


def initial_fields(
    spec: ProblemSpec,
    kind: str | None = "rest",
    **kw,
) -> dict[str, np.ndarray]:
    """Build the global initial state for a problem.

    ``kind=None`` resolves the spec's own declarative initial condition
    (:attr:`ProblemSpec.init`, falling back to ``"rest"``) — the path
    the facade and serve workers use, so a spec fully determines its
    solution.  Explicit keyword options override the spec's.

    Kinds
    -----
    ``"rest"``:
        Uniform density ``rho0``, zero velocity — the start of every
        flue-pipe and Poiseuille run (the jet/body force does the rest).
    ``"standing_wave"``:
        A small acoustic standing wave along x (options: ``mode``,
        ``amplitude``), used by wave-propagation validations.
    ``"random"``:
        Reproducible random density perturbation (options: ``seed``,
        ``amplitude``), used by robustness and conservation tests.
    ``"taylor_green"``:
        The 2D Taylor-Green vortex array (options: ``u0``), the exact
        decaying-vortex oracle used by the scored scenarios.
    ``"uniform_flow"``:
        Impulsive start: uniform velocity ``speed`` along x plus a
        small deterministic sinusoidal cross-flow perturbation
        (``perturb``, relative to ``speed``) that seeds wake
        instabilities quickly (the cylinder vortex street).
    """
    if kind is None:
        init = dict(spec.init or {"kind": "rest"})
        kind = init.pop("kind", "rest")
        init.update(kw)
        kw = init
    params = spec.build_params()
    shape = spec.grid_shape
    ndim = spec.ndim
    vel_names = ("u", "v", "w")[:ndim]

    fields: dict[str, np.ndarray] = {
        "rho": np.full(shape, params.rho0, dtype=np.float64)
    }
    for name in vel_names:
        fields[name] = np.zeros(shape, dtype=np.float64)

    if kind == "rest":
        pass
    elif kind == "standing_wave":
        mode = int(kw.get("mode", 1))
        amplitude = float(kw.get("amplitude", 1e-3))
        x = (np.arange(shape[0], dtype=np.float64) + 0.5) * params.dx
        rho_1d, u_1d = standing_wave(
            x,
            t=0.0,
            length=shape[0] * params.dx,
            mode=mode,
            amplitude=amplitude,
            rho0=params.rho0,
            cs=params.cs,
        )
        expand = (...,) + (None,) * (ndim - 1)
        fields["rho"][:] = rho_1d[expand]
        fields["u"][:] = u_1d[expand]
    elif kind == "random":
        seed = int(kw.get("seed", 0))
        amplitude = float(kw.get("amplitude", 1e-3))
        rng = np.random.default_rng(seed)
        fields["rho"] += amplitude * (rng.random(shape) - 0.5)
    elif kind == "uniform_flow":
        speed = float(kw.get("speed", 0.05))
        perturb = float(kw.get("perturb", 1e-3))
        fields["u"][:] = speed
        if ndim >= 2 and perturb:
            phase = np.sin(
                np.linspace(0.0, 2.0 * np.pi, shape[0], endpoint=False)
            )
            expand = (...,) + (None,) * (ndim - 1)
            fields["v"] += perturb * speed * phase[expand]
    elif kind == "taylor_green":
        if ndim != 2:
            raise ValueError("taylor_green initial condition is 2D")
        if shape[0] != shape[1]:
            raise ValueError(
                "taylor_green needs a square periodic box, got "
                f"{tuple(shape)}"
            )
        u0 = float(kw.get("u0", 0.05))
        x = np.arange(shape[0], dtype=np.float64)[:, None] * params.dx
        y = np.arange(shape[1], dtype=np.float64)[None, :] * params.dx
        u, v = taylor_green(
            x, y, t=0.0, length=shape[0] * params.dx, u0=u0,
            nu=params.nu,
        )
        fields["u"][:] = u
        fields["v"][:] = v
    else:
        raise ValueError(f"unknown initial condition {kind!r}")

    # Solid nodes start at the reference state.
    solid, _, _ = spec.build_geometry()
    if solid is not None:
        fields["rho"][solid] = params.rho0
        for name in vel_names:
            fields[name][solid] = 0.0
    return fields
