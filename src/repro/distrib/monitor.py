"""The monitoring program (paper §4.1, §5.1).

"The monitoring program checks every few minutes whether the parallel
processes are progressing correctly.  If an unrecoverable error occurs,
the distributed simulation is stopped, and a new simulation is started
from the last state which is saved automatically every 10-20 minutes.
If a workstation becomes too busy, automatic migration of the affected
process takes place."

The monitor owns the control plane of a distributed run:

* watches worker exit codes, heartbeats and the virtual host registry;
* triggers migrations when a host's five-minute load exceeds 1.5
  (§5.1), when a worker asks to leave (a user's direct ``kill -USR2``
  leaves a wish file), or when a test calls :meth:`request_migration`;
* drives the migration sequence — publish the request, interrupt every
  process with SIGUSR2, wait for the migrator's dump-and-exit and for
  the others to stop themselves, restart the migrator from its dump on
  a freshly selected host, then SIGCONT the waiting processes;
* on a worker crash or stall, kills the run and restarts everything
  from the last *complete* staggered checkpoint.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import time
from pathlib import Path

from ..net.portfile import PortRegistry
from .diagnostics import DiagnosticsLog
from .dumpfile import dump_path
from .hostdb import MIGRATE_LOAD_LIMIT, HostDB
from .submit import spawn_worker
from .sync import SaveTurns
from .worker import EXIT_DIAGNOSTIC, EXIT_DONE, EXIT_MIGRATED, WorkerConfig

__all__ = ["Monitor", "MonitorError"]


class MonitorError(RuntimeError):
    """The distributed computation could not be driven to completion."""


def _proc_state(pid: int) -> str:
    """Linux process state letter ('R', 'S', 'T', 'Z', ...)."""
    try:
        text = Path(f"/proc/{pid}/stat").read_text()
    except OSError:
        return "X"
    # state is the field after the parenthesized comm, which may itself
    # contain spaces — split after the last ')'.
    return text.rsplit(")", 1)[1].split()[0]


class Monitor:
    """Control plane of one distributed run."""

    def __init__(
        self,
        workdir: str | Path,
        hostdb: HostDB,
        procs: dict[int, subprocess.Popen],
        base_cfg: dict,
        poll: float = 0.05,
        load_limit: float = MIGRATE_LOAD_LIMIT,
        stall_timeout: float = 60.0,
        max_restarts: int = 2,
    ) -> None:
        self.workdir = Path(workdir)
        self.hostdb = hostdb
        self.procs = dict(procs)
        self.base_cfg = dict(base_cfg)
        self.poll = poll
        self.load_limit = load_limit
        self.stall_timeout = stall_timeout
        self.max_restarts = max_restarts
        self.generation = 0
        self.migrations = 0
        self.restarts = 0
        self._done: set[int] = set()
        self._forced: list[int] = []
        self._diag_log = DiagnosticsLog.for_workdir(self.workdir)
        self._log_path = self.workdir / "logs" / "monitor.log"
        self._log_path.parent.mkdir(parents=True, exist_ok=True)

    def log(self, msg: str) -> None:
        """Append a line to the monitor log."""
        with open(self._log_path, "a") as fh:
            fh.write(f"{time.time():.3f} {msg}\n")  # wall stamp

    # ------------------------------------------------------------------
    # public controls
    # ------------------------------------------------------------------
    def request_migration(self, rank: int) -> None:
        """Ask for a migration of ``rank`` at the next opportunity."""
        self._forced.append(rank)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, timeout: float = 300.0) -> None:
        """Drive the computation until every worker finished."""
        deadline = time.monotonic() + timeout
        last_progress = time.monotonic()
        last_steps: dict[int, int] = {}
        while len(self._done) < len(self.procs):
            if time.monotonic() > deadline:
                self._kill_all()
                raise MonitorError("distributed run timed out")

            # 1. exit-code bookkeeping
            crashed = []
            for rank, proc in self.procs.items():
                if rank in self._done:
                    continue
                code = proc.poll()
                if code is None:
                    continue
                if code == EXIT_DONE:
                    self._done.add(rank)
                elif code == EXIT_DIAGNOSTIC:
                    # The workers aborted themselves on a globally
                    # reduced NaN/CFL violation.  Restarting from the
                    # last checkpoint would only replay the blow-up —
                    # stop and report the diagnosed failure instead.
                    self._diagnostic_failure(rank)
                elif code == EXIT_MIGRATED:
                    # handled inside _migrate(); seeing it here means the
                    # worker left without us asking — treat as a crash.
                    crashed.append(rank)
                else:
                    crashed.append(rank)
            if crashed:
                codes = {r: self.procs[r].returncode for r in crashed}
                self.log(f"workers crashed: {codes}")
                self._restart_from_checkpoint(crashed)
                last_progress = time.monotonic()
                continue

            # 2. migration triggers: forced requests, user wish files,
            #    overloaded hosts (five-minute load > 1.5, §5.1).
            want = set(self._forced)
            self._forced.clear()
            for wish in (self.workdir / "sync").glob("wish_rank*"):
                want.add(int(wish.name[len("wish_rank"):]))
                wish.unlink()
            for host in self.hostdb.overloaded(self.load_limit):
                if host.rank is not None:
                    want.add(host.rank)
            want -= self._done
            if want:
                self._migrate(sorted(want))
                last_progress = time.monotonic()
                continue

            # 3. stall detection via heartbeats; the diagnostics log is
            #    a second progress pulse (a run whose heartbeat files
            #    are on a wedged filesystem still advances it).
            steps = self._read_heartbeats()
            diag_step = self._diag_log.last_step()
            if diag_step is not None:
                steps[-1] = diag_step
            if steps != last_steps:
                last_steps = steps
                last_progress = time.monotonic()
            elif time.monotonic() - last_progress > self.stall_timeout:
                self.log("stall detected")
                self._restart_from_checkpoint()
                last_progress = time.monotonic()
                continue

            time.sleep(self.poll)
        self.log("all workers done")
        self._merge_traces()

    def _merge_traces(self) -> None:
        """Merge the ranks' trace streams into one Chrome trace JSON.

        Runs after completion when the workers traced themselves
        (``trace/trace-*.jsonl`` exists); the merged ``trace/trace.json``
        loads directly in ``chrome://tracing`` / Perfetto.
        """
        trace_dir = self.workdir / "trace"
        if not any(trace_dir.glob("trace-*.jsonl")):
            return
        from ..trace import write_chrome_trace

        out = write_chrome_trace(trace_dir, trace_dir / "trace.json")
        self.log(f"merged trace written to {out}")

    # ------------------------------------------------------------------
    # migration sequence (§5.1)
    # ------------------------------------------------------------------
    def _migrate(self, ranks: list[int]) -> None:
        epoch = self.generation
        self.log(f"migration epoch {epoch}: ranks {ranks}")

        running = {
            r: p for r, p in self.procs.items()
            if r not in self._done and p.poll() is None
        }
        # A SIGUSR2 that lands while a worker is still importing Python
        # modules would kill it (no handler yet).  Port registration
        # happens strictly after the handler is installed, so wait until
        # every running worker is registered for the current generation.
        transport = self.base_cfg.get("transport", "tcp")
        registry = PortRegistry(self.workdir / f"ports_{transport}.txt")
        registry.wait_for(
            epoch, set(running), timeout=self.stall_timeout
        )

        request = self.workdir / "sync" / f"epoch{epoch:04d}_request.json"
        request.parent.mkdir(parents=True, exist_ok=True)
        request.write_text(json.dumps({"ranks": ranks}))
        for proc in running.values():
            proc.send_signal(signal.SIGUSR2)

        # Wait for the migrating processes to dump and exit ...
        sync_deadline = time.monotonic() + self.stall_timeout
        for rank in ranks:
            proc = running[rank]
            while proc.poll() is None:
                if time.monotonic() > sync_deadline:
                    self._kill_all()
                    raise MonitorError(
                        f"rank {rank} never left during epoch {epoch}"
                    )
                time.sleep(self.poll)
            if proc.returncode != EXIT_MIGRATED:
                self._kill_all()
                raise MonitorError(
                    f"rank {rank} exited {proc.returncode} instead of "
                    f"migrating"
                )
        # ... and for everyone else to pause (marker + actually stopped).
        waiters = [r for r in running if r not in ranks]
        for rank in waiters:
            marker = (
                self.workdir / f"paused_rank{rank:04d}_epoch{epoch:04d}"
            )
            pid = running[rank].pid
            while not (marker.exists() and _proc_state(pid) == "T"):
                if time.monotonic() > sync_deadline:
                    self._kill_all()
                    raise MonitorError(
                        f"rank {rank} never paused during epoch {epoch}"
                    )
                time.sleep(self.poll)

        # Select free hosts and restart the migrated processes there.
        old_hosts = {}
        for rank in ranks:
            host = self.hostdb.host_of_rank(rank)
            if host is not None:
                old_hosts[rank] = host.name
                self.hostdb.assign(host.name, None)
        new_hosts = self.hostdb.select_free(
            len(ranks), exclude=set(old_hosts.values())
        )
        for rank, host in zip(ranks, new_hosts):
            self.hostdb.assign(host.name, rank)
            cfg = WorkerConfig(
                workdir=str(self.workdir),
                rank=rank,
                host=host.name,
                generation=epoch + 1,
                dump_in=str(
                    dump_path(
                        self.workdir / "dumps",
                        rank,
                        tag=f"migrate{epoch:04d}",
                    )
                ),
                **self.base_cfg,
            )
            self.procs[rank] = spawn_worker(cfg)
            self.log(f"rank {rank} restarted on {host.name}")

        for rank in waiters:
            self.procs[rank].send_signal(signal.SIGCONT)
        self.generation = epoch + 1
        self.migrations += 1

    def _diagnostic_failure(self, rank: int) -> None:
        """Stop the run and raise the workers' own diagnosis.

        Called when a worker exits with :data:`EXIT_DIAGNOSTIC`: the
        computation detected a global NaN or CFL violation through the
        in-flight diagnostics and aborted itself on every rank.  This
        is a *diagnosed* physics/numerics failure, not an
        infrastructure fault — no checkpoint restart.
        """
        self.log(f"rank {rank} reported a diagnostic abort")
        self._kill_all()
        msg = "run aborted on a diagnosed global blow-up"
        failure = self.workdir / "diag_failure.json"
        if failure.exists():
            try:
                info = json.loads(failure.read_text())
                msg += f": {info.get('reason', '')}"
                msg += f"\nrecord: {json.dumps(info.get('record'))}"
            except ValueError:  # pragma: no cover - torn write
                pass
        last = self._diag_log.last()
        if last is not None:
            msg += (f"\nlast diagnostics: step {last.step}, "
                    f"mass {last.total_mass:.6g}, "
                    f"KE {last.kinetic_energy:.6g}, "
                    f"max|V| {last.max_speed:.6g}, "
                    f"{last.n_nonfinite} non-finite nodes")
        raise MonitorError(msg)

    # ------------------------------------------------------------------
    # unrecoverable errors (§4.1)
    # ------------------------------------------------------------------
    def _worker_diagnostics(self, ranks: list[int] | None) -> str:
        """Root-failure evidence from the crashed workers' log files.

        Workers leave their reason for dying in three places: a
        ``rank*.err`` file when construction failed before logging was
        up, a ``FATAL:`` traceback in ``rank*.log`` when the run loop
        raised, and captured stdout/stderr in ``rank*.stdout`` for
        everything earlier (import errors, interpreter aborts).  Collect
        the most specific one available per rank so the MonitorError
        reports *why* the run kept dying, not just that it did.
        """
        log_dir = self.workdir / "logs"
        parts: list[str] = []
        for rank in sorted(ranks or []):
            evidence = None
            err = log_dir / f"rank{rank:04d}.err"
            log = log_dir / f"rank{rank:04d}.log"
            out = log_dir / f"rank{rank:04d}.stdout"
            if err.exists():
                evidence = err.read_text().strip()
            elif log.exists() and "FATAL:" in (text := log.read_text()):
                evidence = text[text.rindex("FATAL:"):].strip()
            elif out.exists() and (text := out.read_text().strip()):
                tail = text.splitlines()[-15:]
                evidence = "\n".join(tail)
            if evidence:
                parts.append(f"--- rank {rank} ---\n{evidence}")
        return "\n".join(parts)

    def _restart_from_checkpoint(self, crashed: list[int] | None = None) -> None:
        diagnostics = self._worker_diagnostics(crashed)
        if diagnostics:
            self.log(f"worker diagnostics:\n{diagnostics}")
        if self.restarts >= self.max_restarts:
            self._kill_all()
            msg = f"giving up after {self.restarts} restarts"
            if crashed:
                msg += f"; ranks {sorted(crashed)} crashed"
            if diagnostics:
                msg += f"\nworker diagnostics:\n{diagnostics}"
            raise MonitorError(msg)
        self.restarts += 1
        self._kill_all()
        step = SaveTurns.latest_complete_step(self.workdir)
        tag = f"ckpt{step:09d}" if step is not None else "state"
        self.log(f"restarting everything from '{tag}' dumps")
        # The whole simulation restarts — even ranks that had finished
        # must come back, because the ranks re-running from the
        # checkpoint need their boundary data for the replayed steps.
        self._done.clear()
        for marker in self.workdir.glob("done_rank*"):
            marker.unlink()
        # Fresh generation: every process re-registers its ports.
        self.generation += 1
        for rank in list(self.procs):
            host = self.hostdb.host_of_rank(rank)
            cfg = WorkerConfig(
                workdir=str(self.workdir),
                rank=rank,
                host=host.name if host else f"host{rank}",
                generation=self.generation,
                dump_in=str(
                    dump_path(self.workdir / "dumps", rank, tag=tag)
                ),
                **self.base_cfg,
            )
            self.procs[rank] = spawn_worker(cfg)

    def _kill_all(self) -> None:
        for rank, proc in self.procs.items():
            if proc.poll() is None:
                # Wake SIGSTOPped workers first so their teardown
                # (open files, sockets) is orderly where possible.
                try:
                    proc.send_signal(signal.SIGCONT)
                except OSError:  # pragma: no cover
                    pass
                proc.kill()
        for proc in self.procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # heartbeats
    # ------------------------------------------------------------------
    def _read_heartbeats(self) -> dict[int, int]:
        out: dict[int, int] = {}
        hb_dir = self.workdir / "hb"
        if not hb_dir.exists():
            return out
        for path in hb_dir.glob("rank*.txt"):
            try:
                step = int(path.read_text().split()[0])
            except (ValueError, IndexError, OSError):
                continue
            out[int(path.stem[len("rank"):])] = step
        return out
