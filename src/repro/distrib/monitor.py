"""The monitoring program (paper §4.1, §5.1).

"The monitoring program checks every few minutes whether the parallel
processes are progressing correctly.  If an unrecoverable error occurs,
the distributed simulation is stopped, and a new simulation is started
from the last state which is saved automatically every 10-20 minutes.
If a workstation becomes too busy, automatic migration of the affected
process takes place."

The monitor owns the control plane of a distributed run:

* watches worker exit codes, heartbeats and the virtual host registry;
* triggers migrations when a host's five-minute load exceeds 1.5
  (§5.1), when a worker asks to leave (a user's direct ``kill -USR2``
  leaves a wish file), or when a test calls :meth:`request_migration`;
* drives the migration sequence — publish the request, interrupt every
  process with SIGUSR2, wait for the migrator's dump-and-exit and for
  the others to stop themselves, restart the migrator from its dump on
  a freshly selected host, then SIGCONT the waiting processes;
* on a worker crash or stall, kills the run and restarts everything
  from the last *complete* staggered checkpoint;
* with ``policy="rebalance"``, feeds heartbeat compute times and host
  load averages into a :class:`~repro.balance.LoadEstimator` and asks
  the shared :class:`~repro.balance.RebalancePlanner` whether resizing
  the slabs pays for itself; an approved plan runs a *rebalance epoch*
  — every worker dumps at a sync step and exits, the global state is
  re-cut into weighted blocks, and the group restarts under the next
  generation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import time
from dataclasses import replace
from pathlib import Path

from ..balance.estimator import LoadEstimator
from ..balance.planner import BalancePolicy, RebalancePlanner
from ..chaos.plan import FaultPlan
from ..net.portfile import PortRegistry
from ..trace import NULL_TRACER, Tracer
from .diagnostics import DiagnosticsLog
from .dumpfile import DumpCorruption, dump_path, load_dump
from .hostdb import MIGRATE_LOAD_LIMIT, HostDB
from .spec import ProblemSpec
from .submit import spawn_worker
from .sync import SaveTurns
from .worker import (
    EXIT_DIAGNOSTIC,
    EXIT_DONE,
    EXIT_MIGRATED,
    EXIT_REBALANCED,
    WorkerConfig,
)

__all__ = ["Monitor", "MonitorError"]


class MonitorError(RuntimeError):
    """The distributed computation could not be driven to completion."""


class _EpochBroken(RuntimeError):
    """A migration or rebalance epoch failed mid-sequence
    (recoverable by a checkpoint restart)."""


def _proc_state(pid: int) -> str:
    """Linux process state letter ('R', 'S', 'T', 'Z', ...)."""
    try:
        text = Path(f"/proc/{pid}/stat").read_text()
    except OSError:
        return "X"
    # state is the field after the parenthesized comm, which may itself
    # contain spaces — split after the last ')'.
    return text.rsplit(")", 1)[1].split()[0]


class Monitor:
    """Control plane of one distributed run."""

    def __init__(
        self,
        workdir: str | Path,
        hostdb: HostDB,
        procs: dict[int, subprocess.Popen],
        base_cfg: dict,
        poll: float = 0.05,
        load_limit: float = MIGRATE_LOAD_LIMIT,
        stall_timeout: float = 60.0,
        max_restarts: int = 2,
        policy: str = "migrate",
        balance: BalancePolicy | None = None,
    ) -> None:
        if policy not in ("migrate", "rebalance"):
            raise ValueError(f"unknown policy {policy!r}")
        self.workdir = Path(workdir)
        self.hostdb = hostdb
        self.procs = dict(procs)
        self.base_cfg = dict(base_cfg)
        self.poll = poll
        self.load_limit = load_limit
        self.stall_timeout = stall_timeout
        self.max_restarts = max_restarts
        self.policy = policy
        self.generation = 0
        self.migrations = 0
        self.rebalances = 0
        self.restarts = 0
        self._done: set[int] = set()
        self._forced: list[int] = []
        self._forced_rebalance = False
        # Restart floor after a successful rebalance: the re-cut dumps.
        # Anything older (earlier checkpoints, the initial "state"
        # dumps) carries the pre-recut block geometry and must never be
        # restarted into the rewritten spec.
        self._recut_tag: str | None = None
        self.planner: RebalancePlanner | None = None
        self.estimator: LoadEstimator | None = None
        if policy == "rebalance":
            # Imported lazily: repro.balance.recut imports this package
            # at module load, so a top-level import would be circular.
            from ..balance.recut import RecutError, check_rebalanceable

            spec = ProblemSpec.load(self.workdir / "spec.json")
            if spec.is_hybrid:
                raise RecutError(
                    "policy='rebalance' cannot re-cut a hybrid "
                    "(mixed-method) run; use policy='migrate'"
                )
            decomp = spec.build_decomposition()
            check_rebalanceable(decomp)
            pol = balance or BalancePolicy()
            pad = spec.pad
            # The live planner works in axis-0 *rows* (slab thickness):
            # that is the unit the weighted decomposition cuts, and —
            # the cross-section being constant along a chain — speeds
            # in rows/second keep every planner formula consistent.
            # Scale the per-node cost model to per-row accordingly, and
            # keep the thinnest slab at least one ghost halo thick so
            # the exchange plan of that rank still closes.
            per_row = decomp.n_active_nodes / decomp.grid_shape[0]
            pol = replace(
                pol,
                min_share=max(pol.min_share, pad),
                state_bytes_per_node=pol.state_bytes_per_node * per_row,
            )
            self.planner = RebalancePlanner(pol)
            self._rows = [
                b.hi[0] - b.lo[0]
                for b in sorted(
                    decomp.active_blocks(), key=lambda b: b.rank
                )
            ]
            self.estimator = LoadEstimator(self._rows)
        self._diag_log = DiagnosticsLog.for_workdir(self.workdir)
        self._log_path = self.workdir / "logs" / "monitor.log"
        self._log_path.parent.mkdir(parents=True, exist_ok=True)
        # Host-level faults of the run's chaos plan (load spikes) are
        # the monitor's to apply: host load is control-plane state the
        # workers never touch.  On a *traced chaos run* the monitor's
        # recovery ledger streams to its own trace lane (one past the
        # last rank); ordinary traced runs keep exactly one lane per
        # worker rank.
        self._host_faults = []
        self._applied_faults: set[str] = set()
        if base_cfg.get("fault_plan"):
            plan = FaultPlan.from_json(base_cfg["fault_plan"])
            self._host_faults = list(plan.host_faults())
        self.tracer = NULL_TRACER
        if base_cfg.get("trace") and base_cfg.get("fault_plan"):
            self.tracer = Tracer(
                self.workdir / "trace" / "trace-mon.jsonl",
                rank=len(self.procs),
            )
        # Dependency-driven runs: replay heartbeats against the planned
        # task graph (staged by the orchestrator) so a slow rank is
        # reported *by name* with its cost estimate, not just as the
        # anonymous no-progress timeout below.
        self.graph_stalls: list = []
        self._graph_detector = None
        if base_cfg.get("execution") == "graph":
            from ..graph import HeartbeatStallDetector, TaskGraph

            gpath = self.workdir / "graph" / "graph.json"
            if gpath.exists():
                self._graph_detector = HeartbeatStallDetector(
                    TaskGraph.load(gpath),
                    factor=float(base_cfg.get("stall_factor", 8.0)),
                    floor=float(base_cfg.get("stall_floor", 0.05)),
                )

    def _ledger(self, name: str) -> None:
        """One recovery-ledger span (``chaos:``/``recover:`` prefix)."""
        if self.tracer.enabled:
            self.tracer.add_span(name, self.tracer.clock(), 0.0)
            self.tracer.flush()

    def log(self, msg: str) -> None:
        """Append a line to the monitor log."""
        with open(self._log_path, "a") as fh:
            fh.write(f"{time.time():.3f} {msg}\n")  # wall stamp

    # ------------------------------------------------------------------
    # public controls
    # ------------------------------------------------------------------
    def request_migration(self, rank: int) -> None:
        """Ask for a migration of ``rank`` at the next opportunity."""
        self._forced.append(rank)

    def request_rebalance(self) -> None:
        """Ask for a rebalance at the next opportunity (skips the
        planner's threshold/cooldown/amortization gates, not the
        shares-would-not-change check).  Requires ``policy="rebalance"``.
        """
        if self.planner is None:
            raise MonitorError('request_rebalance needs policy="rebalance"')
        self._forced_rebalance = True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, timeout: float = 300.0) -> None:
        """Drive the computation until every worker finished."""
        start = time.monotonic()
        deadline = start + timeout
        last_progress = time.monotonic()
        last_steps: dict[int, int] = {}
        try:
            self._run_loop(start, deadline, last_progress, last_steps)
        finally:
            self.tracer.close()
        self.log("all workers done")
        self._merge_traces()

    def _run_loop(
        self,
        start: float,
        deadline: float,
        last_progress: float,
        last_steps: dict[int, int],
    ) -> None:
        while len(self._done) < len(self.procs):
            if time.monotonic() > deadline:
                self._kill_all()
                raise MonitorError("distributed run timed out")
            self._apply_host_faults(time.monotonic() - start)

            # 1. exit-code bookkeeping
            crashed = []
            for rank, proc in self.procs.items():
                if rank in self._done:
                    continue
                code = proc.poll()
                if code is None:
                    continue
                if code == EXIT_DONE:
                    self._done.add(rank)
                elif code == EXIT_DIAGNOSTIC:
                    # The workers aborted themselves on a globally
                    # reduced NaN/CFL violation.  Restarting from the
                    # last checkpoint would only replay the blow-up —
                    # stop and report the diagnosed failure instead.
                    self._diagnostic_failure(rank)
                elif code == EXIT_MIGRATED:
                    # handled inside _migrate(); seeing it here means the
                    # worker left without us asking — treat as a crash.
                    crashed.append(rank)
                else:
                    crashed.append(rank)
            if crashed:
                codes = {r: self.procs[r].returncode for r in crashed}
                self.log(f"workers crashed: {codes}")
                self._restart_from_checkpoint(crashed)
                last_progress = time.monotonic()
                continue

            # 2. migration triggers: forced requests, user wish files,
            #    overloaded hosts (five-minute load > 1.5, §5.1).  Under
            #    the "rebalance" policy an overloaded host is answered
            #    by resizing slabs (below), not by leaving it.
            want = set(self._forced)
            self._forced.clear()
            for wish in (self.workdir / "sync").glob("wish_rank*"):
                want.add(int(wish.name[len("wish_rank"):]))
                wish.unlink()
            if self.policy == "migrate":
                for host in self.hostdb.overloaded(self.load_limit):
                    if host.rank is not None:
                        want.add(host.rank)
            want -= self._done
            if want:
                self._migrate(sorted(want))
                last_progress = time.monotonic()
                continue

            # 2b. rebalance trigger: feed the load estimator and ask the
            #     shared planner whether a re-cut pays for itself.
            if self.planner is not None and self._maybe_rebalance():
                last_progress = time.monotonic()
                continue

            # 3. stall detection via heartbeats; the diagnostics log is
            #    a second progress pulse (a run whose heartbeat files
            #    are on a wedged filesystem still advances it).
            steps = self._read_heartbeats()
            if self._graph_detector is not None:
                fresh = self._graph_detector.observe(
                    steps, time.monotonic()
                )
                for event in fresh:
                    self.graph_stalls.append(event)
                    self.log(
                        f"graph stall: {event.label} waited "
                        f"{event.waited:.3f}s "
                        f"(est {event.cost:.4f}s/step)"
                    )
            diag_step = self._diag_log.last_step()
            if diag_step is not None:
                steps[-1] = diag_step
            if steps != last_steps:
                last_steps = steps
                last_progress = time.monotonic()
            elif time.monotonic() - last_progress > self.stall_timeout:
                self.log("stall detected")
                self._restart_from_checkpoint()
                last_progress = time.monotonic()
                continue

            time.sleep(self.poll)

    def _apply_host_faults(self, elapsed: float) -> None:
        """Fire any due load-spike faults from the run's chaos plan."""
        for fault in self._host_faults:
            if fault.fault_id in self._applied_faults:
                continue
            if elapsed < fault.at:
                continue
            self._applied_faults.add(fault.fault_id)
            host = self.hostdb.host_of_rank(fault.rank)
            if host is None:
                self.log(
                    f"chaos: {fault.fault_id} skipped (rank "
                    f"{fault.rank} not on any host)"
                )
                continue
            self.hostdb.set_load(host.name, load5=fault.load)
            self.log(
                f"chaos: load spike on {host.name} "
                f"(load5={fault.load:.2f}, rank {fault.rank})"
            )
            self._ledger("chaos:load_spike")

    def _merge_traces(self) -> None:
        """Merge the ranks' trace streams into one Chrome trace JSON.

        Runs after completion when the workers traced themselves
        (``trace/trace-*.jsonl`` exists); the merged ``trace/trace.json``
        loads directly in ``chrome://tracing`` / Perfetto.
        """
        trace_dir = self.workdir / "trace"
        if not any(trace_dir.glob("trace-*.jsonl")):
            return
        from ..trace import write_chrome_trace

        out = write_chrome_trace(trace_dir, trace_dir / "trace.json")
        self.log(f"merged trace written to {out}")

    # ------------------------------------------------------------------
    # migration sequence (§5.1)
    # ------------------------------------------------------------------
    def _migrate(self, ranks: list[int]) -> None:
        """One migration epoch; a broken epoch degrades to a restart.

        The happy path is the §5.1 sequence.  When the epoch itself
        fails — a migrating rank dies instead of dumping, a waiter never
        pauses, the registry times out — the run is *not* lost: the
        epoch is abandoned and the whole group restarts from the last
        verified checkpoint (bounded by ``max_restarts``), exactly as a
        crash would be handled.
        """
        epoch = self.generation
        self.log(f"migration epoch {epoch}: ranks {ranks}")
        try:
            self._migrate_epoch(epoch, ranks)
        except _EpochBroken as exc:
            self.log(f"migration epoch {epoch} broken: {exc}")
            self._ledger("recover:migration_failed")
            self._restart_from_checkpoint()

    def _migrate_epoch(self, epoch: int, ranks: list[int]) -> None:
        running = {
            r: p for r, p in self.procs.items()
            if r not in self._done and p.poll() is None
        }
        # A SIGUSR2 that lands while a worker is still importing Python
        # modules would kill it (no handler yet).  Port registration
        # happens strictly after the handler is installed, so wait until
        # every running worker is registered for the current generation.
        transport = self.base_cfg.get("transport", "tcp")
        registry = PortRegistry(self.workdir / f"ports_{transport}.txt")
        try:
            registry.wait_for(
                epoch, set(running), timeout=self.stall_timeout
            )
        except TimeoutError as exc:
            raise _EpochBroken(f"port registry: {exc}") from exc

        request = self.workdir / "sync" / f"epoch{epoch:04d}_request.json"
        request.parent.mkdir(parents=True, exist_ok=True)
        request.write_text(json.dumps({"ranks": ranks}))
        for proc in running.values():
            proc.send_signal(signal.SIGUSR2)

        # Wait for the migrating processes to dump and exit ...
        sync_deadline = time.monotonic() + self.stall_timeout
        for rank in ranks:
            proc = running[rank]
            while proc.poll() is None:
                if time.monotonic() > sync_deadline:
                    raise _EpochBroken(
                        f"rank {rank} never left during epoch {epoch}"
                    )
                time.sleep(self.poll)
            if proc.returncode != EXIT_MIGRATED:
                raise _EpochBroken(
                    f"rank {rank} exited {proc.returncode} instead of "
                    f"migrating"
                )
        # ... and for everyone else to pause (marker + actually stopped).
        waiters = [r for r in running if r not in ranks]
        for rank in waiters:
            marker = (
                self.workdir / f"paused_rank{rank:04d}_epoch{epoch:04d}"
            )
            pid = running[rank].pid
            while not (marker.exists() and _proc_state(pid) == "T"):
                if time.monotonic() > sync_deadline:
                    raise _EpochBroken(
                        f"rank {rank} never paused during epoch {epoch}"
                    )
                time.sleep(self.poll)

        # Select free hosts and restart the migrated processes there.
        old_hosts = {}
        for rank in ranks:
            host = self.hostdb.host_of_rank(rank)
            if host is not None:
                old_hosts[rank] = host.name
                self.hostdb.assign(host.name, None)
        new_hosts = self.hostdb.select_free(
            len(ranks), exclude=set(old_hosts.values())
        )
        for rank, host in zip(ranks, new_hosts):
            self.hostdb.assign(host.name, rank)
            cfg = WorkerConfig(
                workdir=str(self.workdir),
                rank=rank,
                host=host.name,
                generation=epoch + 1,
                dump_in=str(
                    dump_path(
                        self.workdir / "dumps",
                        rank,
                        tag=f"migrate{epoch:04d}",
                    )
                ),
                **self.base_cfg,
            )
            self.procs[rank] = spawn_worker(cfg)
            self.log(f"rank {rank} restarted on {host.name}")

        for rank in waiters:
            self.procs[rank].send_signal(signal.SIGCONT)
        self.generation = epoch + 1
        self.migrations += 1
        self._ledger("recover:migrate")

    # ------------------------------------------------------------------
    # rebalance epochs (adaptive load balancing)
    # ------------------------------------------------------------------
    def _maybe_rebalance(self) -> bool:
        """Feed the estimator and run one planner decision.

        Returns True when a rebalance epoch was executed.  Only
        meaningful with every rank still running: a re-cut needs the
        complete global state, so a group with finished ranks (or a
        crash being handled) never rebalances.
        """
        assert self.planner is not None and self.estimator is not None
        est = self.estimator
        for rank, (step, wall, comp) in (
            self._read_heartbeat_records().items()
        ):
            est.observe_heartbeat(rank, step, wall, comp)
        for host in self.hostdb.hosts():
            if host.rank is not None:
                est.observe_load(host.rank, host.load5)
        if self._done:
            self._forced_rebalance = False
            return False
        if est.min_step() is None:
            # An epoch needs the whole group up and past step 0: until
            # every rank has heartbeated, "speeds" are just host loads
            # and the sync protocol has nobody to answer the signal.
            return False
        force = self._forced_rebalance
        self._forced_rebalance = False
        steps_total = int(self.base_cfg.get("steps_total", 0))
        plan = self.planner.propose(
            est.speeds(),
            list(self._rows),
            steps_remaining=steps_total - (est.min_step() or 0),
            now=time.monotonic(),
            force=force,
        )
        if plan is None:
            return False
        self._rebalance(plan)
        return True

    def _rebalance(self, plan) -> None:
        """Execute one rebalance epoch (modeled on the migration epoch).

        Publish the request, SIGUSR2 every worker; they synchronize to
        a common step, dump (tag ``balance<epoch>``) and exit
        :data:`EXIT_REBALANCED`.  Re-cut the assembled state into the
        plan's weighted slabs (``recut<epoch>`` dumps + rewritten
        spec.json), then restart the whole group under the bumped
        generation — the same channel-reopen path a migration uses.

        Like a migration epoch, a *broken* epoch — a rank dies instead
        of dumping, the sync times out, the re-cut fails on a missing
        dump — does not lose the run: the epoch is abandoned and the
        whole group restarts from the last verified checkpoint.
        """
        epoch = self.generation
        self.log(
            f"rebalance epoch {epoch}: rows {list(plan.current)} -> "
            f"{list(plan.shares)} (imbalance {plan.imbalance:.3f}, "
            f"cost {plan.cost:.2f}s, "
            f"saving {plan.projected_saving:.2f}s)"
        )
        try:
            self._rebalance_epoch(epoch, plan)
        except _EpochBroken as exc:
            self.log(f"rebalance epoch {epoch} broken: {exc}")
            self._ledger("recover:rebalance_failed")
            self._restart_from_checkpoint()

    def _rebalance_epoch(self, epoch: int, plan) -> None:
        shares = list(plan.shares)
        running = {
            r: p for r, p in self.procs.items()
            if r not in self._done and p.poll() is None
        }
        if len(running) != len(self.procs):  # pragma: no cover - raced
            self.log("rebalance abandoned: not every rank is running")
            return
        transport = self.base_cfg.get("transport", "tcp")
        registry = PortRegistry(self.workdir / f"ports_{transport}.txt")
        try:
            registry.wait_for(
                epoch, set(running), timeout=self.stall_timeout
            )
        except TimeoutError as exc:
            self._kill_all()
            raise _EpochBroken(f"port registry: {exc}") from exc

        request = self.workdir / "sync" / f"epoch{epoch:04d}_request.json"
        request.parent.mkdir(parents=True, exist_ok=True)
        request.write_text(json.dumps({
            "action": "rebalance",
            "ranks": sorted(running),
            "shares": shares,
        }))
        for proc in running.values():
            proc.send_signal(signal.SIGUSR2)

        sync_deadline = time.monotonic() + self.stall_timeout
        for rank, proc in running.items():
            while proc.poll() is None:
                if time.monotonic() > sync_deadline:
                    self._kill_all()
                    raise _EpochBroken(
                        f"rank {rank} never left during rebalance "
                        f"epoch {epoch}"
                    )
                time.sleep(self.poll)
            if proc.returncode != EXIT_REBALANCED:
                self._kill_all()
                raise _EpochBroken(
                    f"rank {rank} exited {proc.returncode} instead of "
                    f"rebalancing"
                )

        from ..balance.recut import recut_problem  # lazy: import cycle

        try:
            new = recut_problem(
                self.workdir,
                shares,
                in_tag=f"balance{epoch:04d}",
                out_tag=f"recut{epoch:04d}",
            )
        except (DumpCorruption, OSError, ValueError) as exc:
            self._kill_all()
            raise _EpochBroken(f"re-cut failed: {exc}") from exc
        for rank in sorted(running):
            host = self.hostdb.host_of_rank(rank)
            cfg = WorkerConfig(
                workdir=str(self.workdir),
                rank=rank,
                host=host.name if host else f"host{rank}",
                generation=epoch + 1,
                dump_in=str(
                    dump_path(
                        self.workdir / "dumps",
                        rank,
                        tag=f"recut{epoch:04d}",
                    )
                ),
                **self.base_cfg,
            )
            self.procs[rank] = spawn_worker(cfg)
        self.generation = epoch + 1
        self._rows = [
            b.hi[0] - b.lo[0]
            for b in sorted(new.active_blocks(), key=lambda b: b.rank)
        ]
        self.estimator.set_nodes(self._rows)
        self.planner.commit(time.monotonic(), plan)
        self.rebalances += 1
        # Checkpoints written before this point carry the *old* block
        # geometry; the recut dumps are the restart floor from now on.
        self._recut_tag = f"recut{epoch:04d}"
        self.log(
            f"rebalance epoch {epoch} complete: generation "
            f"{self.generation}, slab rows {self._rows}"
        )

    def _diagnostic_failure(self, rank: int) -> None:
        """Stop the run and raise the workers' own diagnosis.

        Called when a worker exits with :data:`EXIT_DIAGNOSTIC`: the
        computation detected a global NaN or CFL violation through the
        in-flight diagnostics and aborted itself on every rank.  This
        is a *diagnosed* physics/numerics failure, not an
        infrastructure fault — no checkpoint restart.
        """
        self.log(f"rank {rank} reported a diagnostic abort")
        # Every rank learns of the blow-up through the same diagnostic
        # collective and exits on its own with EXIT_DIAGNOSTIC; give
        # slow ranks a moment to finish their orderly teardown (log and
        # trace flushes) before force-killing stragglers.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if all(p.poll() is not None for p in self.procs.values()):
                break
            time.sleep(0.05)
        self._kill_all()
        msg = "run aborted on a diagnosed global blow-up"
        failure = self.workdir / "diag_failure.json"
        if failure.exists():
            try:
                info = json.loads(failure.read_text())
                msg += f": {info.get('reason', '')}"
                msg += f"\nrecord: {json.dumps(info.get('record'))}"
            except ValueError:  # pragma: no cover - torn write
                pass
        last = self._diag_log.last()
        if last is not None:
            msg += (f"\nlast diagnostics: step {last.step}, "
                    f"mass {last.total_mass:.6g}, "
                    f"KE {last.kinetic_energy:.6g}, "
                    f"max|V| {last.max_speed:.6g}, "
                    f"{last.n_nonfinite} non-finite nodes")
        raise MonitorError(msg)

    # ------------------------------------------------------------------
    # unrecoverable errors (§4.1)
    # ------------------------------------------------------------------
    def _worker_diagnostics(self, ranks: list[int] | None) -> str:
        """Root-failure evidence from the crashed workers' log files.

        Workers leave their reason for dying in three places: a
        ``rank*.err`` file when construction failed before logging was
        up, a ``FATAL:`` traceback in ``rank*.log`` when the run loop
        raised, and captured stdout/stderr in ``rank*.stdout`` for
        everything earlier (import errors, interpreter aborts).  Collect
        the most specific one available per rank so the MonitorError
        reports *why* the run kept dying, not just that it did.
        """
        log_dir = self.workdir / "logs"
        parts: list[str] = []
        for rank in sorted(ranks or []):
            evidence = None
            err = log_dir / f"rank{rank:04d}.err"
            log = log_dir / f"rank{rank:04d}.log"
            out = log_dir / f"rank{rank:04d}.stdout"
            if err.exists():
                evidence = err.read_text().strip()
            elif log.exists() and "FATAL:" in (text := log.read_text()):
                evidence = text[text.rindex("FATAL:"):].strip()
            elif out.exists() and (text := out.read_text().strip()):
                tail = text.splitlines()[-15:]
                evidence = "\n".join(tail)
            if evidence:
                parts.append(f"--- rank {rank} ---\n{evidence}")
        return "\n".join(parts)

    def _current_blocks(self) -> dict[int, tuple] | None:
        """Per-rank ``(lo, hi)`` of the decomposition spec.json names.

        ``None`` when the spec cannot be rebuilt — the walk then skips
        the geometry check and falls back to checksums alone.
        """
        try:
            spec = ProblemSpec.load(self.workdir / "spec.json")
            decomp = spec.build_decomposition()
        except (OSError, ValueError):  # pragma: no cover - torn spec
            return None
        return {
            b.rank: (tuple(b.lo), tuple(b.hi))
            for b in decomp.active_blocks()
        }

    def _select_checkpoint(self) -> str:
        """The newest complete checkpoint whose dumps all check out.

        Walks the complete checkpoints newest-first; a dump
        disqualifies its step when it is corrupted or missing
        (checksums, §4.1 — restarting into garbage is worse than losing
        a save interval) or when its block geometry no longer matches
        the decomposition spec.json currently names: after a rebalance
        re-cut the domain, every pre-recut checkpoint is a perfectly
        *valid* dump of the wrong shape, and restoring it would crash
        the group into a give-up loop.  The fallback floor is the last
        re-cut's dumps once a rebalance committed, the initial
        ``state`` dumps otherwise.
        """
        blocks = self._current_blocks()
        floor = self._recut_tag or "state"
        steps = [
            f"ckpt{step:09d}"
            for step in SaveTurns.complete_steps(self.workdir)
        ]
        for tag in steps + [floor]:
            try:
                for rank in self.procs:
                    path = dump_path(
                        self.workdir / "dumps", rank, tag=tag
                    )
                    sub = load_dump(path)
                    if blocks is not None and (
                        (tuple(sub.block.lo), tuple(sub.block.hi))
                        != blocks.get(rank)
                    ):
                        raise DumpCorruption(
                            f"{path.name}: block "
                            f"{tuple(sub.block.lo)}..{tuple(sub.block.hi)}"
                            f" does not match the current decomposition"
                        )
            except (DumpCorruption, OSError) as exc:
                self.log(
                    f"checkpoint {tag} rejected, falling back one: {exc}"
                )
                self._ledger("recover:ckpt_fallback")
                continue
            return tag
        return floor  # nothing verified; the floor is the best guess

    def _restart_from_checkpoint(self, crashed: list[int] | None = None) -> None:
        diagnostics = self._worker_diagnostics(crashed)
        if diagnostics:
            self.log(f"worker diagnostics:\n{diagnostics}")
        if self.restarts >= self.max_restarts:
            self._kill_all()
            msg = f"giving up after {self.restarts} restarts"
            if crashed:
                msg += f"; ranks {sorted(crashed)} crashed"
            if diagnostics:
                msg += f"\nworker diagnostics:\n{diagnostics}"
            raise MonitorError(msg)
        self.restarts += 1
        self._kill_all()
        tag = self._select_checkpoint()
        self.log(f"restarting everything from '{tag}' dumps")
        self._ledger("recover:ckpt_restart")
        # The replay re-saves every checkpoint after the restart point;
        # stale save-turn tokens from the previous incarnation would
        # make those saves abort.
        ckpt_step = int(tag[4:]) if tag.startswith("ckpt") else 0
        SaveTurns.reset_after(self.workdir, ckpt_step)
        # The whole simulation restarts — even ranks that had finished
        # must come back, because the ranks re-running from the
        # checkpoint need their boundary data for the replayed steps.
        self._done.clear()
        for marker in self.workdir.glob("done_rank*"):
            marker.unlink()
        # Fresh generation: every process re-registers its ports.
        self.generation += 1
        for rank in list(self.procs):
            host = self.hostdb.host_of_rank(rank)
            cfg = WorkerConfig(
                workdir=str(self.workdir),
                rank=rank,
                host=host.name if host else f"host{rank}",
                generation=self.generation,
                dump_in=str(
                    dump_path(self.workdir / "dumps", rank, tag=tag)
                ),
                **self.base_cfg,
            )
            self.procs[rank] = spawn_worker(cfg)

    def _kill_all(self) -> None:
        for rank, proc in self.procs.items():
            if proc.poll() is None:
                # Wake SIGSTOPped workers first so their teardown
                # (open files, sockets) is orderly where possible.
                try:
                    proc.send_signal(signal.SIGCONT)
                except OSError:  # pragma: no cover
                    pass
                proc.kill()
        for proc in self.procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # heartbeats
    # ------------------------------------------------------------------
    def _read_heartbeats(self) -> dict[int, int]:
        return {
            rank: step
            for rank, (step, _, _) in self._read_heartbeat_records().items()
        }

    def _read_heartbeat_records(
        self,
    ) -> dict[int, tuple[int, float, float | None]]:
        """Per-rank ``(step, wall stamp, compute s/step)`` heartbeats.

        The third field is absent in heartbeats written before the
        first completed step (and in pre-existing files), hence
        optional.
        """
        out: dict[int, tuple[int, float, float | None]] = {}
        hb_dir = self.workdir / "hb"
        if not hb_dir.exists():
            return out
        for path in hb_dir.glob("rank*.txt"):
            try:
                parts = path.read_text().split()
                step = int(parts[0])
                wall = float(parts[1])
                comp = float(parts[2]) if len(parts) > 2 else None
            except (ValueError, IndexError, OSError):
                continue
            out[int(path.stem[len("rank"):])] = (step, wall, comp)
        return out
