"""Shared-file synchronization (paper App. B) and staggered saving (§5.2).

The migration synchronization algorithm: "a synchronization request is
sent to all the processes by means of a UNIX interrupt.  In response,
every process writes the current integration time step into a shared
file (using file locking semaphores, and append mode).  Then, every
process examines the shared file to find the largest integration time
step T_max among all the processes [and] chooses (T_max + 1) to be the
upcoming synchronization time step" — the smallest synchronization step
possible at any given time, so a pending migration happens as soon as
possible.  Because a signal can land mid-step, a process may complete
the step in flight after writing; ``T_max + 1`` is still reachable by
everyone and passed by no one.

Staggered saving: when all processes save state at about the same time
they saturate the network and the file server, so "the parallel
processes must save their state one after the other in an orderly
fashion".  A flock-guarded turn counter orders the savers by rank; the
last saver publishes a completion marker, which is what makes a
checkpoint *restartable* — the monitoring program only ever restarts
from checkpoints whose marker exists, so a crash mid-save-sequence can
never mix steps.
"""

from __future__ import annotations

import fcntl
import os
import time
import warnings
from pathlib import Path

__all__ = ["SyncFiles", "SaveTurns", "MessageSaveTurns", "SyncFileWarning"]


class SyncFileWarning(RuntimeWarning):
    """A shared sync file held a malformed record.

    Every write is a flock'd, fsync'd append of one whole line, so a
    torn or garbled line is a real fault (filesystem, foreign writer,
    manual edit) worth surfacing — not something to skip silently.
    """


def _locked_append(path: Path, line: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _read_pairs(path: Path) -> dict[int, int]:
    """Parse ``rank value`` lines, keeping the last complete record per rank.

    A rank may legitimately append more than once across epochs; later
    complete records override earlier ones.  Malformed lines raise a
    :class:`SyncFileWarning` and are excluded — they never shadow or
    erase a rank's last complete record.
    """
    out: dict[int, int] = {}
    if not path.exists():
        return out
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        parts = line.split()
        try:
            if len(parts) != 2:
                raise ValueError(f"expected 2 fields, found {len(parts)}")
            rank, value = int(parts[0]), int(parts[1])
        except ValueError as exc:
            warnings.warn(
                f"{path.name}:{lineno}: malformed sync record "
                f"{line!r} ({exc})",
                SyncFileWarning,
                stacklevel=2,
            )
            continue
        out[rank] = value
    return out


class SyncFiles:
    """The App. B shared files for one migration epoch."""

    def __init__(self, workdir: str | Path, epoch: int):
        base = Path(workdir) / "sync"
        self.epoch = epoch
        self.steps_path = base / f"epoch{epoch:04d}_steps.txt"
        self.reached_path = base / f"epoch{epoch:04d}_reached.txt"

    # -- phase 1: everyone reports its current step -------------------
    def write_step(self, rank: int, step: int) -> None:
        """Append ``rank step`` (called from the SIGUSR2 handler)."""
        _locked_append(self.steps_path, f"{rank} {step}\n")

    def has_written(self, rank: int) -> bool:
        """Whether ``rank`` already reported its step this epoch."""
        return rank in _read_pairs(self.steps_path)

    def wait_sync_step(
        self, n_ranks: int, timeout: float = 60.0, poll: float = 0.005
    ) -> int:
        """Block until all ranks reported, then return ``T_max + 1``."""
        deadline = time.monotonic() + timeout
        while True:
            steps = _read_pairs(self.steps_path)
            if len(steps) >= n_ranks:
                return max(steps.values()) + 1
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {len(steps)}/{n_ranks} ranks reported their "
                    f"step for epoch {self.epoch}"
                )
            time.sleep(poll)

    # -- phase 2: everyone confirms having completed T_sync -----------
    def mark_reached(self, rank: int, step: int) -> None:
        """Record that ``rank`` completed the synchronization step."""
        _locked_append(self.reached_path, f"{rank} {step}\n")

    def wait_all_reached(
        self, n_ranks: int, timeout: float = 60.0, poll: float = 0.005
    ) -> None:
        """Barrier: channels may only close once every rank finished
        the synchronization step (so no in-flight strip is lost)."""
        deadline = time.monotonic() + timeout
        while True:
            if len(_read_pairs(self.reached_path)) >= n_ranks:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"ranks missing from reached-barrier of epoch {self.epoch}"
                )
            time.sleep(poll)


class SaveTurns:
    """Rank-ordered turn taking for staggered state saves."""

    def __init__(self, workdir: str | Path, step: int):
        self.step = step
        base = Path(workdir) / "sync"
        base.mkdir(parents=True, exist_ok=True)
        self.counter_path = base / f"save_turn_step{step:09d}.txt"
        self.complete_path = SaveTurns.complete_marker(workdir, step)

    def _read_counter(self) -> int:
        if not self.counter_path.exists():
            return 0
        text = self.counter_path.read_text().strip()
        return int(text) if text else 0

    def wait_turn(
        self,
        position: int,
        timeout: float = 120.0,
        poll: float = 0.002,
        gap: float = 0.0,
    ) -> None:
        """Block until it is this rank's turn to save.

        ``gap`` inserts the free time slot (§5.2) between consecutive
        savers so "other programs can use the network and the file
        system at the same time".
        """
        deadline = time.monotonic() + timeout
        while self._read_counter() < position:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"save turn {position} never came at step {self.step}"
                )
            time.sleep(poll)
        if gap > 0:
            time.sleep(gap)

    def finish_turn(self, position: int, n_ranks: int) -> None:
        """Pass the token; the last saver publishes the completion marker."""
        with open(self.counter_path, "a+") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.seek(0)
                text = fh.read().strip()
                current = int(text) if text else 0
                if current != position:
                    raise RuntimeError(
                        f"save token at {current}, expected {position}"
                    )
                fh.seek(0)
                fh.truncate()
                fh.write(str(position + 1))
                fh.flush()
                os.fsync(fh.fileno())
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        if position + 1 == n_ranks:
            self.complete_path.touch()

    @staticmethod
    def complete_marker(workdir: str | Path, step: int) -> Path:
        """Path of the completion marker for a checkpoint step."""
        return (Path(workdir) / "sync"
                / f"ckpt_step{step:09d}_complete")

    @staticmethod
    def complete_steps(workdir: str | Path) -> list[int]:
        """Every step with a complete (restartable) checkpoint, newest
        first — the fallback order a restart walks when the newest
        checkpoint turns out to be corrupt."""
        base = Path(workdir) / "sync"
        steps = []
        for p in base.glob("ckpt_step*_complete"):
            try:
                steps.append(int(p.name[len("ckpt_step"):-len("_complete")]))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return sorted(steps, reverse=True)

    @staticmethod
    def latest_complete_step(workdir: str | Path) -> int | None:
        """Newest step with a complete (restartable) checkpoint."""
        steps = SaveTurns.complete_steps(workdir)
        return steps[0] if steps else None

    @staticmethod
    def reset_after(workdir: str | Path, step: int) -> None:
        """Discard save-turn state for every step beyond ``step``.

        A restart replays the run from checkpoint ``step``, so the
        workers will pass the save token again at every later
        checkpoint.  Any counter file or completion marker those steps
        left behind before the crash (including a *complete* save whose
        dumps later failed checksum verification) would make
        :meth:`finish_turn` see a token that is already ahead of the
        replaying rank and abort the whole run — so the monitor clears
        them before respawning workers.
        """
        base = Path(workdir) / "sync"
        for pattern, prefix, suffix in (
            ("save_turn_step*.txt", "save_turn_step", ".txt"),
            ("ckpt_step*_complete", "ckpt_step", "_complete"),
        ):
            for p in base.glob(pattern):
                try:
                    found = int(p.name[len(prefix):-len(suffix)])
                except ValueError:  # pragma: no cover - foreign file
                    continue
                if found > step:
                    p.unlink(missing_ok=True)


class MessageSaveTurns:
    """Rank-ordered save turns passed as messages, not shared files.

    The same §5.2 staggering as :class:`SaveTurns`, but the token
    travels over the collective layer's point-to-point channels
    (:meth:`~repro.net.collectives.Communicator.send_token`): rank
    ``r`` saves after receiving the token from ``r - 1`` and then
    forwards it to ``r + 1``.  Tokens are keyed by the checkpoint step,
    so no counter state has to survive a migration.  Ordering no longer
    needs a shared filesystem; the last saver still touches the
    completion marker, which is how the monitoring program recognizes a
    restartable checkpoint (the App. B shared-file path stays the
    default).
    """

    def __init__(self, comm, workdir: str | Path, step: int):
        self.comm = comm
        self.step = step
        self.complete_path = SaveTurns.complete_marker(workdir, step)

    def wait_turn(
        self,
        position: int,
        timeout: float = 120.0,  # noqa: ARG002 - the communicator's own
        # receive timeout governs the blocking wait
        poll: float = 0.002,  # noqa: ARG002 - interface parity; nothing
        # to poll, the receive blocks
        gap: float = 0.0,
    ) -> None:
        """Block until the token arrives from the previous rank."""
        if position > 0:
            self.comm.recv_token(position - 1, self.step)
        if gap > 0:
            time.sleep(gap)

    def finish_turn(self, position: int, n_ranks: int) -> None:
        """Forward the token; the last saver publishes the marker."""
        if position + 1 < n_ranks:
            self.comm.send_token(position + 1, self.step)
        else:
            self.complete_path.parent.mkdir(parents=True, exist_ok=True)
            self.complete_path.touch()
