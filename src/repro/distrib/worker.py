"""The parallel program each workstation executes (paper §4-5).

One worker process owns one subregion.  Its life is the two-beat loop of
§3 — compute locally, communicate with neighbours — plus the mechanisms
that make the computation transparent to the workstations' regular
users:

* **SIGUSR2 migration requests** (§5.1): both the monitoring program and
  a regular user can ask a parallel subprocess to migrate at any time
  via ``kill -USR2``.  The signal handler appends the current
  integration step to the epoch's shared sync file (App. B); at the next
  step boundary the worker joins the synchronization protocol, runs to
  the agreed step ``T_max + 1``, and then either dumps-and-exits (if it
  is the one migrating) or closes its channels, stops itself with
  SIGSTOP and waits for the monitor's SIGCONT to re-open channels under
  the next port-registry generation.
* **Staggered checkpointing** (§5.2): every ``save_every`` steps the
  workers save their state one after the other in rank order, the last
  one publishing the completion marker the monitor restarts from.
* **Heartbeats**: the monitoring program checks every few minutes
  whether the parallel processes are progressing correctly; workers
  report their step so a stall is observable.

Run as ``python -m repro.distrib.worker <config.json>``.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..chaos.inject import ChannelFaultInjector, FiredMarkers, WorkerFaults
from ..chaos.plan import DUMP_KINDS, MESSAGE_KINDS, PROCESS_KINDS, FaultPlan
from ..core.exchange import build_plan
from ..fluids.coupling import build_converters, seam_wire_fields
from ..net.channels import ChannelSet
from ..net.collectives import Communicator
from ..net.portfile import PortRegistry
from ..net.transport import SocketExchanger
from ..net.udp import UdpChannelSet
from ..trace import NULL_TRACER, Tracer
from .diagnostics import (
    DEFAULT_VMAX,
    DiagnosticsFailure,
    DiagnosticsLog,
    GlobalDiagnostics,
)
from .dumpfile import dump_path, load_dump, save_dump
from .settings import WorkerKnobs
from .spec import ProblemSpec
from .sync import MessageSaveTurns, SaveTurns, SyncFiles

__all__ = [
    "WorkerConfig",
    "Worker",
    "EXIT_DONE",
    "EXIT_MIGRATED",
    "EXIT_DIAGNOSTIC",
    "EXIT_REBALANCED",
    "main",
]

EXIT_DONE = 0
#: EX_TEMPFAIL — the process left to be restarted on another host.
EXIT_MIGRATED = 75
#: EX_PROTOCOL — the run aborted itself on a diagnosed global
#: NaN/CFL violation (see :mod:`repro.distrib.diagnostics`); there is
#: no point restarting from the latest checkpoint without intervention.
EXIT_DIAGNOSTIC = 76
#: The whole group dumped at a sync step and left for a domain re-cut;
#: the monitor reassembles the dumps into new weighted blocks and
#: restarts everyone under the next generation (rebalance epoch).
EXIT_REBALANCED = 77

#: worker-side smoothing of the per-step compute seconds published in
#: the heartbeat (the monitor's load estimator smooths again)
_COMP_ALPHA = 0.2


@dataclass
class WorkerConfig(WorkerKnobs):
    """Runtime configuration handed to a worker by the submit program.

    The per-rank identity fields live here; every run-wide knob
    (checkpoint period, transport, timeouts, ...) is inherited from
    :class:`~repro.distrib.settings.WorkerKnobs`, the single
    declaration shared with
    :class:`~repro.distrib.orchestrator.RunSettings`.
    """

    workdir: str
    rank: int
    host: str
    steps_total: int
    generation: int = 0
    dump_in: str = ""          # dump file to restore from

    def to_json(self) -> str:
        """Serialize to JSON for the worker command line."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkerConfig":
        return cls(**json.loads(text))

    @staticmethod
    def path(workdir: str | Path, rank: int) -> Path:
        """Canonical config-file path for a rank."""
        return Path(workdir) / f"cfg_rank{rank:04d}.json"


class Worker:
    """One parallel subprocess of the distributed computation."""

    def __init__(self, cfg: WorkerConfig):
        self.cfg = cfg
        self.workdir = Path(cfg.workdir)
        self.rank = cfg.rank
        self.spec = ProblemSpec.load(self.workdir / "spec.json")
        # Per-rank kernel backend: the per-rank list wins over the
        # global knob; both live in the shared base cfg, so a monitor
        # restart rebuilds the identical kernel for this rank.
        backend = cfg.backend
        if cfg.backends:
            if len(cfg.backends) <= self.rank:
                raise ValueError(
                    f"backends list has {len(cfg.backends)} entries but "
                    f"this is rank {self.rank}"
                )
            backend = cfg.backends[self.rank]
        methods = self.spec.build_methods(backend=backend)
        self.method = methods[self.rank]
        self.decomp = self.spec.build_decomposition()
        self.n_ranks = self.decomp.n_active
        # Seam converters for *this* rank's mixed-method edges, keyed by
        # neighbour rank (empty on uniform runs — the historical path).
        self.converters = {
            src: conv
            for (dst, src), conv in build_converters(
                self.decomp, methods
            ).items()
            if dst == self.rank
        }

        dump_in = cfg.dump_in or str(
            dump_path(self.workdir / "dumps", self.rank)
        )
        self.sub = load_dump(dump_in)
        if self.sub.block.rank != self.rank:
            raise RuntimeError(
                f"dump {dump_in} holds rank {self.sub.block.rank}, "
                f"worker is rank {self.rank}"
            )
        # Rebuild method-private masks and scratch (never dumped).
        self.method.init_subregion(self.sub)

        self.plan = build_plan(self.decomp, self.rank, self.method.pad)
        neighbor_ranks = {
            op.neighbor_rank for op in self.plan.recv_ops()
        } - {self.rank}
        if cfg.transport not in ("tcp", "udp"):
            raise ValueError(f"unknown transport {cfg.transport!r}")
        self.registry = PortRegistry(
            self.workdir / f"ports_{cfg.transport}.txt"
        )
        if cfg.transport == "tcp":
            self.channels = ChannelSet(
                self.rank, neighbor_ranks, self.registry,
                reconnect_attempts=cfg.reconnect_attempts,
                reconnect_base=cfg.reconnect_base,
                hangup_grace=cfg.hangup_grace,
            )
        else:
            self.channels = UdpChannelSet(
                self.rank, neighbor_ranks, self.registry,
                loss_rate=cfg.udp_loss,
            )
        self.tracer = NULL_TRACER
        if cfg.trace:
            # A rank restarted after migrating away must not truncate
            # the trace its previous incarnation streamed.
            gen = f".g{cfg.generation}" if cfg.generation else ""
            self.tracer = Tracer(
                self.workdir / "trace"
                / f"trace-{self.rank:04d}{gen}.jsonl",
                rank=self.rank,
                job=cfg.job_id,
            )
            self.channels.tracer = self.tracer
        self._compute_names = tuple(
            f"compute:{i}"
            for i in range(len(self.method.exchange_phases))
        )
        self._exchange_names = tuple(
            f"exchange:{i}"
            for i in range(len(self.method.exchange_phases))
        )
        self.exchanger = SocketExchanger(
            self.sub,
            self.plan,
            self.channels,
            strict_order=cfg.strict_order,
            timeout=cfg.recv_timeout,
            extended_sweep=self.decomp.n_active < self.decomp.n_blocks,
            converters=self.converters,
            wire_fields=seam_wire_fields(self.method),
        )
        if cfg.save_barrier not in ("file", "message"):
            raise ValueError(f"unknown save barrier {cfg.save_barrier!r}")
        self.comm: Communicator | None = None
        self.diag: GlobalDiagnostics | None = None
        if cfg.diag_every > 0 or cfg.save_barrier == "message":
            self.comm = Communicator(
                self.channels,
                self.rank,
                self.n_ranks,
                algorithm=cfg.diag_algorithm,
                timeout=cfg.recv_timeout,
                link_timeout=cfg.open_timeout,
                tracer=self.tracer,
            )
        if cfg.diag_every > 0:
            self.diag = GlobalDiagnostics(
                self.comm,
                every=cfg.diag_every,
                vmax=cfg.diag_vmax if cfg.diag_vmax > 0.0 else DEFAULT_VMAX,
                log=DiagnosticsLog.for_workdir(self.workdir)
                if self.rank == 0 else None,
            )
        self.generation = cfg.generation
        self._sync_epoch: int | None = None
        # Per-rank synthetic-load override of the shared step_delay knob.
        self._step_delay = cfg.step_delay
        if self.rank < len(cfg.step_delays):
            self._step_delay = float(cfg.step_delays[self.rank])
        #: EMA of per-step compute seconds (delay + compute + finalize,
        #: excluding exchanges), published in the heartbeat so the
        #: monitor's load estimator can see per-rank speed even though
        #: the BSP lockstep equalizes every rank's step counter.
        self._comp_ema: float | None = None
        # Dependency-driven runs: the orchestrator stages this rank's
        # slice of the planned task graph; its estimated per-step cost
        # lets the worker flag its *own* overruns as named graph:stall
        # spans (the monitor's heartbeat replay covers silent ranks).
        self._graph_step_cost: float | None = None
        if cfg.execution == "graph":
            slice_path = (
                self.workdir / "graph" / f"rank{self.rank:04d}.json"
            )
            if slice_path.exists():
                payload = json.loads(slice_path.read_text())
                self._graph_step_cost = float(payload["step_cost"])
        self._log_path = self.workdir / "logs" / f"rank{self.rank:04d}.log"
        self._log_path.parent.mkdir(parents=True, exist_ok=True)
        # Deterministic fault injection (repro.chaos): process/dump
        # faults fire from the step loop, message faults hook the
        # channel send path.  Fired-once markers live in the workdir so
        # a fault never re-fires after the checkpoint restart it caused.
        self.faults: WorkerFaults | None = None
        if cfg.fault_plan:
            plan = FaultPlan.from_json(cfg.fault_plan)
            markers = FiredMarkers(self.workdir / "chaos")
            self.faults = WorkerFaults(
                plan.for_rank(self.rank, PROCESS_KINDS | DUMP_KINDS),
                markers,
                log=self.log,
                tracer=self.tracer if cfg.trace else None,
            )
            msg_faults = plan.for_rank(self.rank, MESSAGE_KINDS)
            if msg_faults:
                self.channels.injector = ChannelFaultInjector(
                    msg_faults, markers, ledger=self._chaos_ledger
                )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log(self, msg: str) -> None:
        """Append a line to this worker's log file."""
        with open(self._log_path, "a") as fh:
            fh.write(f"{time.time():.3f} step={self.sub.step} {msg}\n")  # wall stamp

    def _chaos_ledger(self, fault) -> None:
        """Record an injected message fault (log + recovery ledger)."""
        self.log(f"chaos: firing {fault.fault_id}")
        tracer = self.tracer
        if tracer.enabled:
            tracer.add_span(
                f"chaos:{fault.kind}", tracer.clock(), 0.0,
                step=self.sub.step,
            )

    def _request_path(self, epoch: int) -> Path:
        return self.workdir / "sync" / f"epoch{epoch:04d}_request.json"

    def _usr2_handler(self, signum, frame) -> None:  # noqa: ARG002
        """App. B phase 1, run directly from the interrupt.

        If the monitor has published a migration request for the current
        generation, report our step into the epoch's sync file; if not
        (a regular user signalled this process directly), leave a wish
        file for the monitoring program to pick up.
        """
        epoch = self.generation
        if self._request_path(epoch).exists():
            sf = SyncFiles(self.workdir, epoch)
            if not sf.has_written(self.rank):
                sf.write_step(self.rank, self.sub.step)
            self._sync_epoch = epoch
        else:
            wish = self.workdir / "sync" / f"wish_rank{self.rank:04d}"
            wish.parent.mkdir(parents=True, exist_ok=True)
            wish.touch()

    def install_signals(self) -> None:
        """Install the SIGUSR2 migration-request handler."""
        signal.signal(signal.SIGUSR2, self._usr2_handler)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Open channels and run the compute/communicate loop to completion."""
        self.install_signals()
        self.channels.open(self.generation, timeout=self.cfg.open_timeout)
        self.log(f"channels open, generation {self.generation}")
        if self.cfg.dump_in:
            # This incarnation was restored from a dump (checkpoint
            # restart, migration or rebalance) — ledger the recovery.
            self.log(f"recovered from {Path(self.cfg.dump_in).name}")
            if self.tracer.enabled:
                self.tracer.add_span(
                    "recover:restart", self.tracer.clock(), 0.0,
                    step=self.sub.step,
                )
        try:
            try:
                while True:
                    if self._sync_epoch is not None:
                        rc = self._sync_protocol()
                        if rc is not None:
                            return rc
                    if self.sub.step >= self.cfg.steps_total:
                        break
                    if self.faults is not None:
                        self.faults.at_step(self.sub.step)
                    self._step_once()
                    self._heartbeat()
                    self._maybe_checkpoint()
            except DiagnosticsFailure as failure:
                return self._diagnostic_abort(failure)
            save_dump(
                self.sub,
                dump_path(self.workdir / "dumps", self.rank, tag="final"),
            )
            (self.workdir / f"done_rank{self.rank:04d}").touch()
            self.log("done")
            return EXIT_DONE
        finally:
            self.channels.close()
            self.tracer.close()

    def _step_once(self) -> None:
        method = self.method
        sub = self.sub
        tracer = self.tracer
        step_no = sub.step
        comp = 0.0
        wall0 = time.perf_counter()
        if self.converters:
            # Mixed-method edges translate once per step before the
            # first compute phase (both sides convert time-t state);
            # the regular phase exchanges below skip those edges.
            t0 = tracer.begin()
            self.exchanger.exchange_seam()
            tracer.end("seam:0", t0, step=step_no)
        if self._step_delay > 0.0:
            c0 = time.perf_counter()
            time.sleep(self._step_delay)
            comp += time.perf_counter() - c0
        for phase, fields in enumerate(method.exchange_phases):
            t0 = tracer.begin()
            c0 = time.perf_counter()
            method.compute_phase(sub, phase)
            comp += time.perf_counter() - c0
            tracer.end(self._compute_names[phase], t0, step=step_no)
            t0 = tracer.begin()
            self.exchanger.exchange(fields, phase)
            tracer.end(self._exchange_names[phase], t0, step=step_no)
        t0 = tracer.begin()
        c0 = time.perf_counter()
        method.finalize_step(sub)
        comp += time.perf_counter() - c0
        tracer.end("finalize:0", t0, step=step_no)
        if self._comp_ema is None:
            self._comp_ema = comp
        else:
            self._comp_ema += _COMP_ALPHA * (comp - self._comp_ema)
        if self._graph_step_cost is not None:
            wall = time.perf_counter() - wall0
            cost = self._graph_step_cost
            if wall > self.cfg.stall_factor * cost + self.cfg.stall_floor:
                self.log(
                    f"graph stall: step:r{self.rank}:t{step_no} took "
                    f"{wall:.3f}s (est {cost:.4f}s)"
                )
                if tracer.enabled:
                    tracer.add_span(
                        f"graph:stall:step:r{self.rank}:t{step_no}",
                        tracer.clock(), 0.0, step=step_no,
                    )
        sub.step += 1
        if (
            self.cfg.nan_step > 0
            and sub.step == self.cfg.nan_step
            and self.rank == self.cfg.nan_rank
        ):
            view = sub.interior_view("rho")
            view.flat[view.size // 2] = np.nan
            self.log("injected NaN (test knob)")
        # The diagnostics collective runs here, not in the outer loop,
        # so catch-up stepping inside the migration sync protocol keeps
        # every rank's collective sequence aligned.
        if self.diag is not None:
            self.diag.maybe_check(sub)

    def _heartbeat(self) -> None:
        if self.sub.step % max(self.cfg.hb_every, 1):
            return
        t0 = self.tracer.begin()
        hb = self.workdir / "hb" / f"rank{self.rank:04d}.txt"
        hb.parent.mkdir(parents=True, exist_ok=True)
        comp = self._comp_ema if self._comp_ema is not None else 0.0
        hb.write_text(
            f"{self.sub.step} {time.time():.3f} {comp:.6e}\n"  # wall stamp
        )
        self.tracer.end("heartbeat:0", t0, step=self.sub.step)

    def _maybe_checkpoint(self) -> None:
        every = self.cfg.save_every
        if every <= 0 or self.sub.step % every or self.sub.step == 0:
            return
        if self.cfg.save_barrier == "message" and self.n_ranks > 1:
            turns = MessageSaveTurns(self.comm, self.workdir, self.sub.step)
        else:
            turns = SaveTurns(self.workdir, self.sub.step)
        t0 = self.tracer.begin()
        turns.wait_turn(self.rank, gap=self.cfg.save_gap)
        self.tracer.end("checkpoint:turn", t0, step=self.sub.step)
        t0 = self.tracer.begin()
        out = dump_path(
            self.workdir / "dumps",
            self.rank,
            tag=f"ckpt{self.sub.step:09d}",
        )
        save_dump(self.sub, out)
        self.tracer.end("checkpoint:write", t0, step=self.sub.step)
        turns.finish_turn(self.rank, self.n_ranks)
        self.log(f"checkpoint at step {self.sub.step}")
        if self.faults is not None:
            self.faults.after_checkpoint(out, self.sub.step)

    def _diagnostic_abort(self, failure: DiagnosticsFailure) -> int:
        """Record a diagnosed global blow-up and exit cleanly.

        Every rank of the group computed the same reduced record, so
        every rank raises and exits with :data:`EXIT_DIAGNOSTIC`
        together; rank 0 leaves ``diag_failure.json`` for the
        monitoring program to chain into its error report.
        """
        self.log(f"DIAGNOSTIC ABORT: {failure}")
        if self.rank == 0:
            out = self.workdir / "diag_failure.json"
            out.write_text(json.dumps(
                {
                    "reason": failure.reason,
                    "record": asdict(failure.record),
                },
                indent=2,
            ) + "\n")
        return EXIT_DIAGNOSTIC

    # ------------------------------------------------------------------
    # migration (§5.1 / App. B) and rebalance epochs
    # ------------------------------------------------------------------
    def _sync_protocol(self) -> int | None:
        """Run the synchronization; return an exit code if we leave.

        A migration epoch ends with the migrating ranks dumping and
        exiting :data:`EXIT_MIGRATED` while everyone else pauses.  A
        rebalance epoch ends with *every* rank dumping (tag
        ``balance<epoch>``) and exiting :data:`EXIT_REBALANCED`; the
        monitor re-cuts the assembled state into new weighted blocks
        and restarts the whole group under the next generation.
        """
        epoch = self._sync_epoch
        assert epoch is not None
        request = json.loads(self._request_path(epoch).read_text())
        rebalance = request.get("action") == "rebalance"
        prefix = "balance" if rebalance else "migration"
        sf = SyncFiles(self.workdir, epoch)
        t0 = self.tracer.begin()
        t_sync = sf.wait_sync_step(
            self.n_ranks, timeout=self.cfg.sync_timeout
        )
        self.tracer.end(f"{prefix}:sync", t0, step=self.sub.step)
        self.log(f"sync epoch {epoch}: target step {t_sync}")
        if self.sub.step > t_sync:  # pragma: no cover - invariant guard
            raise RuntimeError(
                f"rank {self.rank} already past sync step "
                f"{t_sync} (at {self.sub.step})"
            )
        while self.sub.step < t_sync:
            self._step_once()
        sf.mark_reached(self.rank, self.sub.step)
        t0 = self.tracer.begin()
        sf.wait_all_reached(self.n_ranks, timeout=self.cfg.sync_timeout)
        self.tracer.end(f"{prefix}:reach", t0, step=self.sub.step)

        if rebalance:
            self.channels.close()
            t0 = self.tracer.begin()
            out = dump_path(
                self.workdir / "dumps", self.rank, tag=f"balance{epoch:04d}"
            )
            save_dump(self.sub, out)
            self.tracer.end("balance:dump", t0, step=self.sub.step)
            self.log(f"leaving for re-cut (dump {out.name})")
            return EXIT_REBALANCED

        migrating = set(request["ranks"])
        self.channels.close()
        if self.rank in migrating:
            out = dump_path(
                self.workdir / "dumps", self.rank, tag=f"migrate{epoch:04d}"
            )
            save_dump(self.sub, out)
            self.log(f"migrating away (dump {out.name})")
            return EXIT_MIGRATED

        # Suspend until the monitor has restarted the migrating
        # process(es) on free hosts and sends SIGCONT (§5.1).
        marker = (
            self.workdir / f"paused_rank{self.rank:04d}_epoch{epoch:04d}"
        )
        marker.touch()
        self.log("paused for migration")
        self.tracer.flush()  # the pause may end in a kill
        t0 = self.tracer.begin()
        os.kill(os.getpid(), signal.SIGSTOP)
        # --- resumed by the monitoring program ---
        self.tracer.end("migration:pause", t0, step=self.sub.step)
        self.generation = epoch + 1
        self._sync_epoch = None
        self.channels.open(self.generation, timeout=self.cfg.open_timeout)
        self.log(f"resumed, generation {self.generation}")
        return None


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.distrib.worker <config.json>")
        return 2
    # A migration request can land while the worker is still loading its
    # dump (the monitor signals every process at once); catch it early
    # and replay it once the real handler is installed.
    pending: list[int] = []
    signal.signal(signal.SIGUSR2, lambda s, f: pending.append(s))
    cfg = WorkerConfig.from_json(Path(argv[0]).read_text())
    if cfg.niceness > 0:
        # §5.1: run at low priority so the computation is transparent
        # to the workstation's regular user.
        try:
            os.nice(cfg.niceness)
        except OSError:  # pragma: no cover - permission-restricted env
            pass
    try:
        worker = Worker(cfg)
    except Exception:
        # Construction failed before logging was available.
        err = Path(cfg.workdir) / "logs" / f"rank{cfg.rank:04d}.err"
        err.parent.mkdir(parents=True, exist_ok=True)
        err.write_text(traceback.format_exc())
        return 1
    worker.install_signals()
    if pending:
        worker._usr2_handler(signal.SIGUSR2, None)
    try:
        return worker.run()
    except Exception:
        worker.log("FATAL:\n" + traceback.format_exc())
        return 1


if __name__ == "__main__":
    sys.exit(main())
