"""The knobs shared by the run settings and every worker's config.

:class:`~repro.distrib.orchestrator.RunSettings` (what the user sets on
a run) and :class:`~repro.distrib.worker.WorkerConfig` (what the submit
program hands each rank) used to duplicate fifteen field declarations,
with ``RunSettings.worker_base_cfg()`` hand-copying each one across —
so a knob added to one side could silently never reach the workers.
Both now inherit :class:`WorkerKnobs`; the base config is *derived*
from the dataclass fields (:func:`worker_knob_names`), making the
omission impossible by construction.

All knob fields are keyword-only so the subclasses keep their own
positional signatures (``WorkerConfig(workdir, rank, host, ...)``,
``RunSettings(steps, ...)``): Python places keyword-only dataclass
fields after the subclass' positional ones regardless of inheritance
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["WorkerKnobs", "worker_knob_names"]


@dataclass(kw_only=True)
class WorkerKnobs:
    """Runtime knobs every rank of a run shares.

    The fields travel verbatim from
    :class:`~repro.distrib.orchestrator.RunSettings` into each rank's
    :class:`~repro.distrib.worker.WorkerConfig` (see
    :meth:`~repro.distrib.orchestrator.RunSettings.worker_base_cfg`).
    """

    save_every: int = 0        # checkpoint period in steps (0 = never)
    save_gap: float = 0.0      # §5.2 free time slot between savers
    hb_every: int = 1          # heartbeat period in steps
    strict_order: bool = False  # App. C ablation
    transport: str = "tcp"     # "tcp" (paper's choice) or "udp" (App. D)
    niceness: int = 10         # §5.1: low runtime priority (UNIX "nice")
    #  so the regular user's interactive tasks "receive the full
    #  attention of the processor immediately"
    step_delay: float = 0.0    # test/emulation knob: extra seconds per
    #  step, emulating a busy or slow host so App. A un-synchronization
    #  and first-come-first-served buffering can be exercised for real
    step_delays: list[float] = field(default_factory=list)
    #  per-rank variant of step_delay (indexed by rank, overrides it):
    #  a *skewed* synthetic load, slowing some ranks so the load
    #  estimator and rebalance planner see a real imbalance
    open_timeout: float = 30.0
    recv_timeout: float = 60.0
    sync_timeout: float = 60.0
    diag_every: int = 0        # global-diagnostics period (0 = off)
    diag_vmax: float = 0.0     # max-|V| abort threshold (0 = c_s default)
    diag_algorithm: str = "tree"   # collective algorithm: tree or ring
    save_barrier: str = "file"     # "file" (App. B default) or "message"
    udp_loss: float = 0.0      # injected datagram loss rate (App. D knob)
    trace: bool = False        # stream per-rank trace-<rank>.jsonl
    #  spans/counters (repro.trace) from every runtime phase
    nan_step: int = 0          # test/emulation knob: poison one value at
    nan_rank: int = 0          # this step on this rank, as a blown-up
    #  kernel would, to exercise the diagnosed-abort path
    fault_plan: str = ""       # JSON repro.chaos.FaultPlan: deterministic
    #  seeded fault injection (worker kills/stalls, frame drops/dups/
    #  truncations, checkpoint corruption, host-load spikes)
    reconnect_attempts: int = 5   # TCP link recovery: bounded
    reconnect_base: float = 0.05  # exponential backoff (base*2^k seconds)
    hangup_grace: float = 2.0  # receiver-side wait for a hung-up peer
    #  that still owes data to re-connect before ChannelError
    backend: str = ""          # kernel backend for every rank ("" = the
    #  numpy default; see repro.fluids.backends); unavailable backends
    #  degrade to numpy with a one-time warning, never an error
    job_id: str = ""           # repro.serve job this run belongs to;
    #  tags every rank's trace stream (meta line "job" field) so merged
    #  traces from a shared worker pool stay attributable per job
    backends: list[str] = field(default_factory=list)
    #  per-rank kernel backends (indexed by rank, overrides `backend`):
    #  heterogeneous hosts run heterogeneous kernels, and the calibrated
    #  speed ratios feed the load balancer exactly like the paper's
    #  heterogeneous workstations (§7).  Each rank indexes this list
    #  with its own rank, so monitor-driven restarts rebuild identical
    #  per-rank kernels.
    execution: str = "phased"  # "phased" (the BSP compute/communicate
    #  cycle) or "graph" (repro.graph: plan the task DAG, execute it
    #  dependency-driven — no step barrier in-process; distributed runs
    #  plan per-rank slices and the monitor reports named graph stalls).
    #  Results are bit-for-bit identical either way.
    stall_factor: float = 8.0  # graph-stall rule: a node (or a rank's
    stall_floor: float = 0.05  # step) whose dependencies have been
    #  ready for > factor x its estimated cost + floor seconds without
    #  finishing is reported as a named `graph:` stall.


def worker_knob_names() -> tuple[str, ...]:
    """Names of every shared knob, in declaration order."""
    return tuple(f.name for f in fields(WorkerKnobs))
