"""Dump files: the unit of distribution, checkpointing and migration.

The decomposition program "generates local states for each subregion,
and saves them in separate files, called dump files.  These files
contain all the information that is needed by a workstation to
participate in a distributed computation" (§4.1).  The same format
serves three roles: initial distribution, the periodic state saves the
monitoring program restarts from after an unrecoverable error, and the
save/restore pair at the heart of process migration (§5.1) — migration
"is equivalent to stopping the computation, saving the entire state on
disk, and then restarting; except, we only save the state of the
migrating process".

Format: a single ``.npz`` holding every padded field array, the solid
mask, and a JSON-encoded manifest (block geometry, pad, step counter,
scalar extras).  Writes go to a temporary name followed by an atomic
rename so a crash mid-save can never corrupt the last good dump.

The atomic rename protects against a *crash mid-save*; it cannot
protect against the media itself (a failing disk, a truncating NFS
server).  The manifest therefore records a CRC32 per stored array, and
:func:`load_dump` refuses a dump whose bytes no longer match with a
:class:`DumpCorruption` — which is what lets the monitoring program
fall back to the *previous* complete checkpoint instead of restarting
into garbage (§4.1).  Dumps written before checksums existed load
unverified (the manifest has no ``crc32`` entry to check against).
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..core.decomposition import Block
from ..core.subregion import SubregionState

__all__ = [
    "save_dump",
    "load_dump",
    "load_dumps",
    "dump_path",
    "verify_dump",
    "DumpCorruption",
]

_FIELD_PREFIX = "field__"


class DumpCorruption(RuntimeError):
    """A dump file failed its integrity checks (checksum, structure)."""

    def __init__(self, path: str | Path, detail: str):
        self.path = Path(path)
        super().__init__(f"corrupt dump {self.path}: {detail}")


def dump_path(directory: str | Path, rank: int, tag: str = "state") -> Path:
    """Canonical dump-file name for a rank (``<dir>/<tag>_rank<k>.npz``)."""
    return Path(directory) / f"{tag}_rank{rank:04d}.npz"


def save_dump(sub: SubregionState, path: str | Path) -> None:
    """Atomically save a subregion's complete state."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {_FIELD_PREFIX + k: v for k, v in sub.fields.items()}
    arrays["solid"] = sub.solid
    manifest = {
        "index": list(sub.block.index),
        "lo": list(sub.block.lo),
        "hi": list(sub.block.hi),
        "rank": sub.block.rank,
        "active": sub.block.active,
        "pad": sub.pad,
        "step": sub.step,
        "extra": {k: float(v) for k, v in sub.extra.items()},
        # Per-record integrity: CRC32 of each array's raw bytes, so a
        # restart can reject a silently corrupted checkpoint (§4.1).
        "crc32": {
            name: zlib.crc32(np.ascontiguousarray(v).tobytes())
            for name, v in arrays.items()
        },
    }
    tmp = path.with_suffix(".tmp.npz")
    with open(tmp, "wb") as fh:
        np.savez(fh, manifest=json.dumps(manifest), **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_dumps(
    directory: str | Path, n_ranks: int, tag: str = "state"
) -> list[SubregionState]:
    """Load one tag's dump for every rank, in dense-rank order.

    The unit the rebalance coordinator consumes: all ranks of one
    epoch, ready for :func:`repro.core.subregion.assemble_global`.
    """
    return [
        load_dump(dump_path(directory, rank, tag=tag))
        for rank in range(n_ranks)
    ]


def load_dump(path: str | Path) -> SubregionState:
    """Restore a subregion from a dump file.

    Method-private ``aux`` arrays (masks, scratch) are *not* stored;
    the worker rebuilds them via ``method.init_subregion`` after the
    restore, exactly like a freshly decomposed subregion.

    Raises :class:`DumpCorruption` when the file is structurally
    damaged (truncated archive, unreadable member) or an array fails
    its manifest CRC32.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["manifest"]))
            fields = {
                name[len(_FIELD_PREFIX):]: np.ascontiguousarray(data[name])
                for name in data.files
                if name.startswith(_FIELD_PREFIX)
            }
            solid = np.ascontiguousarray(data["solid"])
    except (zipfile.BadZipFile, KeyError, OSError, EOFError,
            ValueError) as exc:
        raise DumpCorruption(path, f"unreadable archive: {exc}") from exc
    checksums = manifest.get("crc32", {})
    arrays = {_FIELD_PREFIX + k: v for k, v in fields.items()}
    arrays["solid"] = solid
    for name, want in checksums.items():
        if name not in arrays:
            raise DumpCorruption(path, f"checksummed array {name!r} missing")
        got = zlib.crc32(arrays[name].tobytes())
        if got != want:
            raise DumpCorruption(
                path,
                f"array {name!r} CRC32 mismatch "
                f"(stored {want:#010x}, computed {got:#010x})",
            )
    block = Block(
        index=tuple(manifest["index"]),
        lo=tuple(manifest["lo"]),
        hi=tuple(manifest["hi"]),
        rank=int(manifest["rank"]),
        active=bool(manifest["active"]),
    )
    sub = SubregionState(
        block=block,
        pad=int(manifest["pad"]),
        fields=fields,
        solid=solid,
        step=int(manifest["step"]),
    )
    sub.extra.update(manifest.get("extra", {}))
    return sub


def verify_dump(path: str | Path) -> None:
    """Raise :class:`DumpCorruption` unless the dump loads and checks out.

    What the monitoring program runs against every rank's dump of a
    checkpoint before restarting from it.
    """
    load_dump(path)
