"""The rebalance planner: one go/no-go policy for simulator and runtime.

The §1.1 "dynamic allocation of processor workload" baseline needs a
decision rule: *when* is re-cutting the domain worth a global pause?
This module is that rule, and it is deliberately the **only**
implementation — the discrete-event cluster simulator
(:meth:`repro.cluster.ClusterSimulation.run` with
``policy="rebalance"``) and the live monitoring program
(:class:`repro.distrib.Monitor` with ``policy="rebalance"``) both call
:meth:`RebalancePlanner.propose`, so a policy tuned in simulation is
the policy the real runtime executes.

The decision has three gates:

1. **imbalance threshold** — the proportional shares implied by the
   current effective speeds must differ from the current shares by more
   than ``threshold`` (relative, per rank); tiny load wiggles never
   trigger a pause;
2. **hysteresis/cooldown** — at least ``cooldown`` seconds must have
   passed since the last committed rebalance;
3. **amortization** — the projected saving over the remaining steps,
   ``(max_i c_i/s_i - max_i n_i/s_i) * steps_remaining``, must repay
   ``min_gain`` times the :func:`repro.cluster.allocation
   .repartition_cost` of moving the node state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.allocation import proportional_shares, repartition_cost

__all__ = ["BalancePolicy", "RebalancePlan", "RebalancePlanner"]


@dataclass(frozen=True)
class BalancePolicy:
    """Tunable knobs of the rebalance decision.

    ``state_bytes_per_node`` and ``bandwidth`` parameterize the
    repartition cost model; ``min_share`` keeps every resized slab at
    least that many nodes thick (the live runtime passes the ghost pad
    so the exchange plan of the thinnest slab still closes).
    """

    threshold: float = 0.05      # relative share change that triggers
    cooldown: float = 0.0        # seconds between committed rebalances
    min_gain: float = 1.0        # projected saving must repay this
    #  multiple of the repartition cost
    min_share: int = 1           # thinnest slab allowed, in nodes
    state_bytes_per_node: float = 72.0
    bandwidth: float = 1.25e6    # network model for the cost term
    fixed_overhead: float = 1.0  # seconds of pause independent of data


@dataclass(frozen=True)
class RebalancePlan:
    """A proposed re-division of nodes, with its predicted economics."""

    shares: tuple[int, ...]       # new nodes per rank
    current: tuple[int, ...]      # nodes per rank today
    imbalance: float              # max relative share change
    step_seconds_now: float       # modeled slowest-rank step time
    step_seconds_new: float       # ... after adopting ``shares``
    cost: float                   # repartition pause, seconds
    steps_remaining: int

    @property
    def projected_saving(self) -> float:
        """Seconds the remaining steps are predicted to get back."""
        return (
            (self.step_seconds_now - self.step_seconds_new)
            * self.steps_remaining
        )


class RebalancePlanner:
    """Stateful decision maker shared by simulator and live monitor.

    Call :meth:`propose` with the current effective speeds; when it
    returns a plan *and the caller executes it*, report that with
    :meth:`commit` so the cooldown clock starts.
    """

    def __init__(self, policy: BalancePolicy | None = None) -> None:
        """Create a planner driven by ``policy`` (defaults throughout)."""
        self.policy = policy or BalancePolicy()
        self.last_commit: float | None = None
        self.history: list[RebalancePlan] = []

    def propose(
        self,
        speeds: list[float],
        current: list[int],
        steps_remaining: int,
        now: float | None = None,
        force: bool = False,
    ) -> RebalancePlan | None:
        """Propose a rebalance, or ``None`` when not worth it.

        ``speeds`` are per-rank effective processing rates (nodes per
        second — any consistent unit works for the threshold, but the
        amortization gate reads them as absolute); ``current`` the
        nodes each rank owns; ``now`` the caller's clock (simulated
        seconds or ``time.monotonic()``), used only for the cooldown.
        ``force=True`` skips threshold, cooldown and amortization (a
        test hook / operator override) but still returns ``None`` when
        the shares would not change.
        """
        if len(speeds) != len(current):
            raise ValueError("speeds and current shares must align")
        if steps_remaining <= 0:
            return None
        pol = self.policy
        if (
            not force
            and now is not None
            and self.last_commit is not None
            and now - self.last_commit < pol.cooldown
        ):
            return None
        shares = proportional_shares(
            sum(current), list(speeds), minimum=pol.min_share
        )
        if tuple(shares) == tuple(current):
            return None
        imbalance = max(
            abs(s - c) / max(c, 1) for s, c in zip(shares, current)
        )
        if not force and imbalance <= pol.threshold:
            return None
        step_now = max(c / s for c, s in zip(current, speeds))
        step_new = max(n / s for n, s in zip(shares, speeds))
        cost = repartition_cost(
            list(current),
            shares,
            pol.state_bytes_per_node,
            pol.bandwidth,
            fixed_overhead=pol.fixed_overhead,
        )
        plan = RebalancePlan(
            shares=tuple(shares),
            current=tuple(current),
            imbalance=imbalance,
            step_seconds_now=step_now,
            step_seconds_new=step_new,
            cost=cost,
            steps_remaining=int(steps_remaining),
        )
        if not force and plan.projected_saving < pol.min_gain * cost:
            return None
        return plan

    def commit(self, now: float, plan: RebalancePlan | None = None) -> None:
        """Record that a proposed plan was executed at time ``now``."""
        self.last_commit = now
        if plan is not None:
            self.history.append(plan)
