"""Adaptive load balancing: weighted decomposition, live repartitioning.

The paper handles a busy workstation by migrating the whole process off
it (§5.1) and argues dynamic workload allocation is unnecessary for
static-geometry flow problems (§1.1).  This package builds that
alternative for real, closing the gap between the simulated
``"rebalance"`` policy and the live runtime:

* :class:`LoadEstimator` turns signals the monitor already collects
  (heartbeat step counters and per-step compute times, `HostDB` load
  averages) into smoothed per-rank effective speeds;
* :class:`RebalancePlanner` + :class:`BalancePolicy` decide *when* a
  re-cut pays for itself — imbalance threshold, cooldown hysteresis,
  and amortizing :func:`repro.cluster.allocation.repartition_cost`
  against the projected saving — shared verbatim by
  :class:`repro.cluster.ClusterSimulation` and
  :class:`repro.distrib.Monitor`;
* :func:`recut_problem` executes the decision: reassemble the dumped
  global state, cut it into new weighted slabs, rewrite the spec.

The wire protocol around it (sync to a step boundary, dump, restart
under a bumped generation) reuses the migration-epoch machinery in
:mod:`repro.distrib.worker` / :mod:`repro.distrib.monitor`.
"""

from .estimator import LoadEstimator, calibrated_speeds
from .methods import (
    calibrate_methods,
    method_node_speeds,
    seed_method_speeds,
)
from .planner import BalancePolicy, RebalancePlan, RebalancePlanner
from .recut import RecutError, check_rebalanceable, recut_problem

__all__ = [
    "LoadEstimator",
    "calibrated_speeds",
    "method_node_speeds",
    "calibrate_methods",
    "seed_method_speeds",
    "BalancePolicy",
    "RebalancePlan",
    "RebalancePlanner",
    "RecutError",
    "check_rebalanceable",
    "recut_problem",
]
