"""Re-cutting a running problem's global state into weighted blocks.

The live half of the rebalance epoch: after every worker has dumped its
subregion at the agreed sync step and exited, the monitoring program
calls :func:`recut_problem` to

1. reassemble the global fields from the per-rank dumps (including the
   method-private LB populations, which the dumps carry in full),
2. build a new *weighted* chain decomposition whose slab sizes are the
   planner's shares,
3. cut fresh per-rank dumps from the assembled state (ghosts filled
   from true global values, bit-identical to what exchanges would
   produce), and
4. rewrite ``spec.json`` with the integer shares as axis-0 weights, so
   every restarted worker reconstructs the same decomposition.

Because the shares are integers summing to the axis extent,
:func:`repro.cluster.allocation.proportional_shares` reproduces them
exactly and the monitor-side and worker-side decompositions cannot
drift.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from ..core.decomposition import Decomposition
from ..core.subregion import assemble_global, make_subregions
from ..distrib.dumpfile import dump_path, load_dumps, save_dump
from ..distrib.spec import ProblemSpec

__all__ = ["RecutError", "check_rebalanceable", "recut_problem"]


class RecutError(RuntimeError):
    """The dumped state could not be re-cut into the requested blocks."""


def check_rebalanceable(decomp: Decomposition) -> None:
    """Raise :class:`RecutError` unless ``decomp`` supports re-cutting.

    Rebalancing resizes the slabs of a chain decomposition (blocks
    ``(P, 1[, 1])``) in which every block is active; re-cutting around
    inactive (all-solid) blocks would need the unsaved solid-region
    state to rebuild their neighbours' ghosts.
    """
    if any(b != 1 for b in decomp.blocks[1:]):
        raise RecutError(
            "rebalancing resizes slabs of a chain decomposition; "
            f"use blocks=(P, 1[, 1]), got {decomp.blocks}"
        )
    if decomp.n_active != decomp.n_blocks:
        raise RecutError(
            "rebalancing needs every block active; "
            f"{decomp.n_blocks - decomp.n_active} block(s) are solid"
        )


def recut_problem(
    workdir: str | Path,
    shares: list[int],
    *,
    in_tag: str,
    out_tag: str,
) -> Decomposition:
    """Re-cut the dumped global state into new axis-0 slab shares.

    Reads every rank's ``<in_tag>`` dump under ``workdir/dumps``,
    writes one ``<out_tag>`` dump per rank of the new decomposition,
    rewrites ``workdir/spec.json`` with the shares as weights, and
    returns the new decomposition.  The dumps must all sit at the same
    step (the sync protocol guarantees it); anything else raises
    :class:`RecutError`.
    """
    workdir = Path(workdir)
    spec = ProblemSpec.load(workdir / "spec.json")
    if spec.is_hybrid:
        raise RecutError(
            "re-cutting a hybrid (mixed-method) run is not supported: "
            "resizing slabs would move the method seams off their "
            "region boundaries"
        )
    old = spec.build_decomposition()
    check_rebalanceable(old)
    if len(shares) != old.n_active:
        raise RecutError(
            f"{len(shares)} shares for {old.n_active} ranks"
        )
    if sum(shares) != old.grid_shape[0]:
        raise RecutError(
            f"shares {shares} do not sum to axis extent "
            f"{old.grid_shape[0]}"
        )

    subs = load_dumps(workdir / "dumps", old.n_active, tag=in_tag)
    steps = {sub.step for sub in subs}
    if len(steps) != 1:
        raise RecutError(f"dumps '{in_tag}' at different steps: {steps}")
    step = steps.pop()

    method = spec.build_method()
    solid, _, _ = spec.build_geometry()
    fields = {
        name: assemble_global(old, subs, name)
        for name in subs[0].field_names()
    }
    extra = dict(subs[0].extra)

    weights = (tuple(int(s) for s in shares),) + (None,) * (old.ndim - 1)
    new_spec = replace(spec, weights=weights)
    new = new_spec.build_decomposition()
    if new.n_active != old.n_active:
        raise RecutError(
            f"re-cut changed the active-rank count "
            f"({old.n_active} -> {new.n_active})"
        )
    if new.n_active_nodes != old.n_active_nodes:  # pragma: no cover
        raise RecutError("re-cut changed the active node count")

    for sub in make_subregions(new, method.pad, fields, solid):
        sub.step = step
        sub.extra.update(extra)
        method.init_subregion(sub)
        save_dump(
            sub,
            dump_path(workdir / "dumps", sub.block.rank, tag=out_tag),
        )
    new_spec.save(workdir / "spec.json")
    return new
