"""Per-rank effective-speed estimation from signals the monitor already has.

Nothing new flows over the network for load balancing: the estimator
consumes the heartbeat files every worker writes anyway (now carrying a
smoothed per-step compute time next to the step counter and wall
stamp), plus the five-minute load averages in the virtual
:class:`~repro.distrib.hostdb.HostDB`.  Both signals are exponentially
smoothed; the result is a per-rank *effective* processing rate in
nodes/second, the unit :class:`~repro.balance.planner.RebalancePlanner`
divides shares by.

Two signals compose multiplicatively, mirroring the §5 machine model
(``speed = base / (1 + load)``):

* **measured compute seconds** give the per-node rate the worker
  actually achieves — this folds in heterogeneous hardware and any real
  contention the process experienced;
* **host load averages** scale that rate down by ``1 / (1 + load)`` —
  this anticipates contention the virtual host database *declares*
  (the emulated `uptime` numbers of the test cluster) before it shows
  up in measured step times.
"""

from __future__ import annotations

__all__ = ["LoadEstimator", "calibrated_speeds"]

#: per-node compute seconds assumed before any measurement arrives
_NOMINAL_NODE_SECONDS = 1e-5


class LoadEstimator:
    """Exponentially smoothed per-rank effective speeds.

    Parameters
    ----------
    nodes:
        Nodes currently owned per rank (updated with :meth:`set_nodes`
        after every re-cut) — needed to turn per-step compute seconds
        into a per-node rate.
    alpha:
        Smoothing factor of the monitor-side EMAs; the workers smooth
        their own compute times before publishing, so this is a second,
        slower pole damping heartbeat jitter.
    """

    def __init__(self, nodes: list[int], alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.nodes = [int(n) for n in nodes]
        self.alpha = float(alpha)
        self._node_seconds: dict[int, float] = {}   # EMA s/node/step
        self._load: dict[int, float] = {}           # host load average
        self._last_hb: dict[int, tuple[int, float]] = {}
        self._pace: dict[int, float] = {}           # EMA wall s/step

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def _ema(self, store: dict, key: int, sample: float) -> None:
        prev = store.get(key)
        store[key] = sample if prev is None else (
            self.alpha * sample + (1.0 - self.alpha) * prev
        )

    def observe_heartbeat(
        self,
        rank: int,
        step: int,
        wall: float,
        comp_seconds: float | None = None,
    ) -> None:
        """Feed one heartbeat record (step counter, wall stamp, and the
        worker's smoothed per-step compute seconds when present)."""
        if comp_seconds is not None and comp_seconds > 0.0:
            if 0 <= rank < len(self.nodes) and self.nodes[rank] > 0:
                self._ema(
                    self._node_seconds, rank,
                    comp_seconds / self.nodes[rank],
                )
        last = self._last_hb.get(rank)
        if last is not None:
            dstep = step - last[0]
            dwall = wall - last[1]
            if dstep > 0 and dwall > 0:
                self._ema(self._pace, rank, dwall / dstep)
        self._last_hb[rank] = (step, wall)

    def observe_load(self, rank: int, load: float) -> None:
        """Feed a host load average for the rank currently on it."""
        self._load[rank] = max(float(load), 0.0)

    def seed_speeds(self, speeds: list[float]) -> None:
        """Seed per-rank speeds (nodes/s) measured offline.

        :func:`repro.cluster.calibration.calibrate_backends` measures
        what each kernel backend achieves on a host; seeding those rates
        here (see :func:`calibrated_speeds`) lets the first rebalance
        decision start from calibrated ratios instead of the uniform
        prior.  The seeds enter the same per-node EMA that heartbeat
        measurements refine, so live observations take over smoothly.
        """
        for rank, speed in enumerate(speeds[: self.n_ranks]):
            if speed and speed > 0.0:
                self._node_seconds[rank] = 1.0 / float(speed)

    def set_nodes(self, nodes: list[int]) -> None:
        """Adopt the node counts of a freshly re-cut decomposition.

        The per-node EMAs survive (they are per node, not per block);
        only samples arriving later, measured against the new blocks,
        refine them.
        """
        self.nodes = [int(n) for n in nodes]

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of ranks the estimator tracks."""
        return len(self.nodes)

    def measured(self) -> bool:
        """True once every rank has published a compute-time sample."""
        return all(
            r in self._node_seconds for r in range(self.n_ranks)
        )

    def speeds(self) -> list[float]:
        """Effective processing rate per rank, nodes/second.

        Ranks without a measurement yet borrow the mean measured
        per-node time (same-hardware prior), or a nominal constant when
        nothing is measured — in that regime only the declared host
        loads differentiate the ranks.
        """
        known = list(self._node_seconds.values())
        default = (
            sum(known) / len(known) if known else _NOMINAL_NODE_SECONDS
        )
        out = []
        for rank in range(self.n_ranks):
            per_node = self._node_seconds.get(rank, default)
            rate = 1.0 / max(per_node, 1e-12)
            rate /= 1.0 + self._load.get(rank, 0.0)
            out.append(rate)
        return out

    def seconds_per_step(self) -> float | None:
        """Observed wall seconds per step (slowest rank's pace)."""
        if not self._pace:
            return None
        return max(self._pace.values())

    def min_step(self) -> int | None:
        """The slowest rank's last reported step (None before any)."""
        if len(self._last_hb) < self.n_ranks:
            return None
        return min(s for s, _ in self._last_hb.values())


def calibrated_speeds(
    per_rank_backends: list[str],
    calibration: dict[str, float],
) -> list[float]:
    """Per-rank nodes/s from backend names + a calibration table.

    ``calibration`` is the output of
    :func:`repro.cluster.calibration.calibrate_backends`; ranks whose
    backend has no calibration entry (e.g. ``numba`` on a host without
    numba, where the resolver will run numpy anyway) borrow the
    ``numpy`` rate, or the mean of the measured rates as a last resort.
    The result feeds :meth:`LoadEstimator.seed_speeds` or, normalized,
    ``Decomposition(weights=...)``.
    """
    if not calibration:
        raise ValueError("empty calibration table")
    fallback = calibration.get(
        "numpy", sum(calibration.values()) / len(calibration)
    )
    return [
        calibration.get(name or "numpy", fallback)
        for name in per_rank_backends
    ]
