"""Method-as-cost: per-rank speeds implied by a hybrid method map.

A hybrid run (v2 :class:`~repro.distrib.ProblemSpec`) makes load
imbalance *structural*: an FD subregion integrates nodes faster than an
LB subregion of the same size (§7's relative-speed table measures the
ratio at 1.24 for 2D), so equal blocks no longer mean equal work.  This
module turns the spec's per-rank method assignment into per-rank
processing rates the balancing machinery already consumes:

* seed them into :meth:`~repro.balance.LoadEstimator.seed_speeds` so
  the monitor's first migration/planning decisions start from the
  structural ratios instead of the uniform prior (live heartbeat
  measurements then refine them);
* or normalize them into axis-0 ``Decomposition(weights=...)`` shares
  at submit time, sizing each method's slabs so per-rank step times
  match from step 0 (keep the method-region boxes aligned with the
  weighted block faces — :meth:`ProblemSpec.methods_by_rank` checks).

Rates come from the paper's §7 calibration table by default, or from a
``{"fd": nodes/s, "lb": nodes/s}`` table measured on this host with
:func:`calibrate_methods` (the method-axis sibling of
:func:`repro.cluster.calibration.calibrate_backends`).
"""

from __future__ import annotations

__all__ = ["method_node_speeds", "calibrate_methods", "seed_method_speeds"]


def method_node_speeds(
    spec,
    model: str = "715/50",
    calibration: dict[str, float] | None = None,
) -> list[float]:
    """Nodes/second per dense active rank, from the rank's method.

    ``calibration`` maps method name to a measured rate (see
    :func:`calibrate_methods`); without it the paper's §7 machine-model
    table prices each method (``model`` selects the workstation).
    Uniform (v1) specs get a flat list — seeding it is a no-op for any
    decision that only compares ratios.
    """
    from ..cluster.calibration import node_speed

    if calibration is not None:
        missing = set(spec.method_names) - set(calibration)
        if missing:
            raise ValueError(
                f"calibration table lacks methods {sorted(missing)}"
            )
        return [calibration[m] for m in spec.methods_by_rank()]
    return [
        node_speed(m, spec.ndim, model) for m in spec.methods_by_rank()
    ]


def calibrate_methods(
    ndim: int = 2,
    side: int = 48,
    steps: int = 5,
    repeats: int = 2,
    backend: str = "numpy",
) -> dict[str, float]:
    """Measured nodes/s per *method* on this host, one backend.

    Runs the §7 timing protocol of
    :func:`repro.cluster.calibration.calibrate_backends` once per
    method, so a hybrid run can be balanced with the FD/LB speed ratio
    of the actual kernels instead of the 1994 table.
    """
    from ..cluster.calibration import calibrate_backends

    return {
        m: calibrate_backends(
            method=m, ndim=ndim, side=side, steps=steps,
            repeats=repeats, backends=(backend,),
        )[backend]
        for m in ("fd", "lb")
    }


def seed_method_speeds(
    estimator,
    spec,
    model: str = "715/50",
    calibration: dict[str, float] | None = None,
) -> list[float]:
    """Seed a :class:`LoadEstimator` with the spec's structural rates.

    Returns the seeded speeds for logging/inspection.  Heartbeat
    measurements entering the same EMAs take over smoothly.
    """
    speeds = method_node_speeds(spec, model=model, calibration=calibration)
    estimator.seed_speeds(speeds)
    return speeds
