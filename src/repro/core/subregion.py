"""Padded per-subregion state (paper §4.2, "padding" / "ghost cells").

Each subregion is padded with ``pad`` layers of extra nodes on the
outside.  Once neighbour data has been copied onto the padded area, the
boundary values are available locally and the computation can proceed
*as if there was no communication at all* — the separation between
computation and communication that lets the same numerical kernels drive
the serial program, the in-process parallel runner, the real
TCP/IP-distributed runtime and the cluster simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .decomposition import Block, Decomposition

__all__ = ["SubregionState", "make_subregions", "assemble_global"]


@dataclass
class SubregionState:
    """The local state held by one parallel subprocess.

    Attributes
    ----------
    block:
        The :class:`~repro.core.decomposition.Block` this state covers.
    pad:
        Ghost-layer width.  The methods in :mod:`repro.fluids` need
        ``pad = 3``: updates read distance-1 neighbours, the fourth-order
        filter reads distance-2 neighbours, and ghost-ring-1 values are
        re-filtered locally so that each exchange phase maps onto exactly
        the messages the paper counts (2/step for FD, 1/step for LB).
    fields:
        Name -> padded ``float64`` array whose *last* ``ndim`` axes have
        shape ``block.shape + 2*pad``.  Leading axes are allowed for
        per-node vectors (the lattice Boltzmann populations are stored as
        one ``(Q, ...)`` array).
    solid:
        Padded boolean mask of solid-wall nodes.
    step:
        Integration time step this subregion has completed.  Exposed
        because the migration synchronization algorithm (App. B) and the
        un-synchronization analysis (App. A) are statements about this
        counter.
    """

    block: Block
    pad: int
    fields: dict[str, np.ndarray]
    solid: np.ndarray
    step: int = 0
    extra: dict[str, float] = field(default_factory=dict)
    aux: dict[str, np.ndarray] = field(default_factory=dict)
    # ``extra`` holds scalar method/runtime state that must survive a dump
    # and restore (migration); ``aux`` holds derived per-node arrays
    # (masks, scratch) that are *not* exchanged and are rebuilt by
    # ``init_subregion`` after a restore.

    @property
    def ndim(self) -> int:
        return len(self.block.shape)

    @property
    def padded_shape(self) -> tuple[int, ...]:
        return tuple(n + 2 * self.pad for n in self.block.shape)

    @property
    def interior(self) -> tuple[slice, ...]:
        """Slices selecting the owned (non-ghost) nodes of a padded array."""
        return tuple(slice(self.pad, self.pad + n) for n in self.block.shape)

    def grown_interior(self, by: int) -> tuple[slice, ...]:
        """Interior grown by ``by`` ghost rings on every side.

        Used by kernels that redundantly compute ghost-ring values (the
        filter re-filters ring 1 locally instead of paying a third
        message per step).
        """
        if by > self.pad:
            raise ValueError(f"cannot grow interior by {by} > pad {self.pad}")
        return tuple(
            slice(self.pad - by, self.pad + n + by) for n in self.block.shape
        )

    def interior_view(self, name: str) -> np.ndarray:
        """View of the owned nodes of field ``name`` (no copy)."""
        return self.fields[name][(...,) + self.interior]

    def add_field(
        self, name: str, fill: float = 0.0, components: int = 0
    ) -> np.ndarray:
        """Allocate a new padded field initialized to ``fill``.

        ``components > 0`` allocates a ``(components, ...)`` per-node
        vector field (used for the lattice Boltzmann populations).
        """
        if name in self.fields:
            raise ValueError(f"field {name!r} already exists")
        shape = self.padded_shape
        if components:
            shape = (components,) + shape
        arr = np.full(shape, fill, dtype=np.float64)
        self.fields[name] = arr
        return arr

    def field_names(self) -> tuple[str, ...]:
        """Names of all padded fields, in insertion order."""
        return tuple(self.fields.keys())

    def scratch(
        self,
        name: str,
        shape: Sequence[int],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """A named, reusable work buffer registered in ``aux``.

        The first request under a name allocates; later requests with the
        same shape return the same array, which is what makes a warmed-up
        integration step allocation-free (the fused kernels write into
        these instead of fresh temporaries).  Contents are *not*
        preserved between calls — every user overwrites before reading.
        Like all of ``aux``, scratch is never exchanged or dumped; after
        a restore the pool simply refills on first use.
        """
        shape = tuple(shape)
        arr = self.aux.get(name)
        if arr is None or arr.shape != shape or arr.dtype != dtype:
            arr = np.empty(shape, dtype=dtype)
            self.aux[name] = arr
        return arr


def make_subregions(
    decomp: Decomposition,
    pad: int,
    global_fields: Mapping[str, np.ndarray],
    solid: np.ndarray | None = None,
) -> list[SubregionState]:
    """Cut global initial-state arrays into padded subregion states.

    This is the core of the paper's *decomposition program* (§4.1): the
    initialization program produces the state of the problem as if there
    was only one workstation, and this routine generates the local state
    for each active subregion.  Ghost areas are filled with the true
    global values where available (so a freshly decomposed run needs no
    warm-up exchange) and with edge-replicated values outside the domain.
    """
    ndim = len(decomp.grid_shape)
    if solid is None:
        solid = np.zeros(decomp.grid_shape, dtype=bool)
    for name, arr in global_fields.items():
        if arr.shape[-ndim:] != decomp.grid_shape:
            raise ValueError(
                f"field {name!r} shape {arr.shape} does not end in grid "
                f"shape {decomp.grid_shape}"
            )

    padded_globals = {
        name: _pad_global(arr, pad, decomp.periodic)
        for name, arr in global_fields.items()
    }
    padded_solid = _pad_global(
        solid.astype(np.float64), pad, decomp.periodic
    ) > 0.5

    subs = []
    for blk in decomp.active_blocks():
        # Slices into the padded global array covering block + ghosts.
        sl = tuple(slice(l, h + 2 * pad) for l, h in zip(blk.lo, blk.hi))
        # .copy() (not ascontiguousarray) — a contiguous slice would
        # otherwise stay a *view* into the padded global array, silently
        # aliasing neighbouring subregions' memory.
        fields = {
            name: arr[(...,) + sl].copy()
            for name, arr in padded_globals.items()
        }
        subs.append(
            SubregionState(
                block=blk,
                pad=pad,
                fields=fields,
                solid=padded_solid[sl].copy(),
            )
        )
    return subs


def _pad_global(
    arr: np.ndarray, pad: int, periodic: Sequence[bool]
) -> np.ndarray:
    """Pad the spatial (trailing) axes of a global array.

    Periodic axes wrap; non-periodic axes replicate the edge value, the
    same rule the exchangers use at physical domain boundaries, so that
    freshly decomposed ghosts match mid-run ghost fills bit for bit.
    """
    out = arr
    lead = arr.ndim - len(periodic)
    for d, per in enumerate(periodic):
        mode = "wrap" if per else "edge"
        width = [(0, 0)] * arr.ndim
        width[lead + d] = (pad, pad)
        out = np.pad(out, width, mode=mode)
    return out


def assemble_global(
    decomp: Decomposition,
    subs: Sequence[SubregionState],
    name: str,
    fill: float = 0.0,
) -> np.ndarray:
    """Reassemble a global field from subregion interiors.

    Inactive (all-solid) blocks are filled with ``fill``.  This is the
    inverse of :func:`make_subregions` and is what the monitoring
    program's periodic state saves amount to.
    """
    lead = subs[0].fields[name].shape[: -decomp.ndim]
    out = np.full(lead + decomp.grid_shape, fill, dtype=np.float64)
    for sub in subs:
        out[(...,) + sub.block.slices] = sub.interior_view(name)
    return out
