"""Theoretical model of parallel efficiency (paper §8, eqs. 5-21).

The model predicts the efficiency ``f = S / P = T_1 / (P T_p)`` of a
local interaction computation from the parallel grain size ``N`` (nodes
per subregion), the processor speed ``U_calc`` (nodes integrated per
second), and the network speed, under two assumptions the paper states
and validates: the computation is completely parallelizable, and
communication does not overlap computation.  Then efficiency equals
processor utilization (eq. 12)::

    f = g = 1 / (1 + T_com / T_calc)

with ``T_calc = N / U_calc`` (eq. 13) and ``T_com`` given either by the
point-to-point model (eq. 14) or by the shared-bus refinement in which
``T_com`` grows linearly with the number of processors sharing the
Ethernet (eq. 19).  The communicating surface is ``N_c = m N^{1/2}`` in
2D (eq. 15) and ``m N^{2/3}`` in 3D (eq. 16).

Figures 12 and 13 of the paper are direct plots of these formulas with
``U_calc / V_com = 2/3``; this module regenerates them and the cluster
simulator (:mod:`repro.cluster`) provides the matching "measurements".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "surface_nodes",
    "t_calc",
    "t_com_point_to_point",
    "t_com_shared_bus",
    "utilization",
    "efficiency_eq17",
    "efficiency_eq18",
    "efficiency_eq20",
    "efficiency_eq21",
    "EfficiencyModel",
    "OverheadEfficiencyModel",
]


def surface_nodes(n: float, m: float, ndim: int) -> float:
    """Communicating nodes ``N_c`` of a subregion of ``n`` nodes.

    Eq. 15 in 2D (``m sqrt(N)``), eq. 16 in 3D (``m N^(2/3)``).
    """
    if ndim == 2:
        return m * n ** 0.5
    if ndim == 3:
        return m * n ** (2.0 / 3.0)
    raise ValueError(f"ndim must be 2 or 3, got {ndim}")


def t_calc(n: float, u_calc: float) -> float:
    """Computation time per step, eq. 13: ``T_calc = N / U_calc``."""
    return n / u_calc


def t_com_point_to_point(
    n: float, m: float, ndim: int, u_com: float
) -> float:
    """Communication time per step, eq. 14: ``T_com = N_c / U_com``."""
    return surface_nodes(n, m, ndim) / u_com


def t_com_shared_bus(
    n: float, m: float, ndim: int, v_com: float, p: int
) -> float:
    """Shared-bus communication time, eq. 19: ``T_com ∝ (P - 1)``.

    ``v_com`` is the communication speed when only two processors share
    the network; with ``P`` processors all accessing the shared bus, the
    wait grows linearly with ``P - 1``.
    """
    return surface_nodes(n, m, ndim) * max(p - 1, 0) / v_com


def utilization(t_calc_: float, t_com_: float) -> float:
    """Processor utilization = efficiency, eqs. 8 and 12."""
    return 1.0 / (1.0 + t_com_ / t_calc_)


def efficiency_eq17(n, m: float, ratio: float):
    """2D point-to-point efficiency, eq. 17.

    ``f = (1 + N^{-1/2} m U_calc/U_com)^{-1}``; ``ratio`` is
    ``U_calc / U_com``.  Accepts scalar or array ``n``.
    """
    n = np.asarray(n, dtype=float)
    return 1.0 / (1.0 + n ** -0.5 * m * ratio)


def efficiency_eq18(n, m: float, ratio: float):
    """3D point-to-point efficiency, eq. 18 (``N^{-1/3}`` scaling)."""
    n = np.asarray(n, dtype=float)
    return 1.0 / (1.0 + n ** (-1.0 / 3.0) * m * ratio)


def efficiency_eq20(n, m: float, ratio: float, p):
    """2D shared-bus efficiency, eq. 20.

    ``f = (1 + N^{-1/2} (P-1) m U_calc/V_com)^{-1}`` with
    ``ratio = U_calc / V_com`` (the paper fits 2/3 for its cluster).
    """
    n = np.asarray(n, dtype=float)
    p = np.asarray(p, dtype=float)
    return 1.0 / (1.0 + n ** -0.5 * (p - 1.0) * m * ratio)


def efficiency_eq21(n, m: float, ratio: float, p):
    """3D shared-bus efficiency, eq. 21.

    Uses the 2D calibration of ``ratio``: the 3D computational speed is
    half the 2D speed and each 3D fluid node communicates 5/3 as much
    data (5 LB populations vs 3 values), so the prefactor is
    ``(5/3) / 2 = 5/6`` relative to the 2D constants.
    """
    n = np.asarray(n, dtype=float)
    p = np.asarray(p, dtype=float)
    return 1.0 / (
        1.0 + (5.0 / 6.0) * n ** (-1.0 / 3.0) * (p - 1.0) * m * ratio
    )


@dataclass(frozen=True)
class EfficiencyModel:
    """The paper's fitted efficiency model, bundled with its constants.

    Parameters
    ----------
    ratio:
        ``U_calc / V_com`` — 2/3 for the paper's HP cluster (§8).
    shared_bus:
        Use the eq. 19/20/21 shared-bus contention refinement (default);
        ``False`` selects the eq. 14/17/18 point-to-point model.
    """

    ratio: float = 2.0 / 3.0
    shared_bus: bool = True

    def efficiency(self, n, m: float, p, ndim: int = 2):
        """Predicted efficiency for grain ``n``, geometry ``m``, ``P`` procs."""
        if self.shared_bus:
            if ndim == 2:
                return efficiency_eq20(n, m, self.ratio, p)
            if ndim == 3:
                return efficiency_eq21(n, m, self.ratio, p)
        else:
            if ndim == 2:
                return efficiency_eq17(n, m, self.ratio)
            if ndim == 3:
                return efficiency_eq18(n, m, self.ratio)
        raise ValueError(f"ndim must be 2 or 3, got {ndim}")

    def speedup(self, n, m: float, p, ndim: int = 2):
        """Predicted speedup ``S = f P`` (eq. 5 rearranged)."""
        p_arr = np.asarray(p, dtype=float)
        return self.efficiency(n, m, p, ndim) * p_arr

    def grain_for_efficiency(
        self, target: float, m: float, p: int, ndim: int = 2
    ) -> float:
        """Smallest grain ``N`` achieving a target efficiency.

        Inverts eq. 20/21 (or 17/18); useful for answering the paper's
        practical question of how big a subregion must be (2D: high
        efficiency needs N > 100^2 on their cluster; 3D: the 40^3 memory
        ceiling is *below* the needed grain, which is why 3D efficiency
        is poor on shared Ethernet).
        """
        if not 0.0 < target < 1.0:
            raise ValueError("target efficiency must be in (0, 1)")
        k = m * self.ratio
        if self.shared_bus:
            k *= max(p - 1, 1)
            if ndim == 3:
                k *= 5.0 / 6.0
        # f = 1/(1 + N^{-1/d'} k)  =>  N = (k f / (1 - f))^{d'}
        x = k * target / (1.0 - target)
        power = 2.0 if ndim == 2 else 3.0
        return float(x**power)


@dataclass(frozen=True)
class OverheadEfficiencyModel:
    """Eq. 20/21 extended with the per-message overhead term.

    §8 observes that below ``N = 100^2`` the predicted efficiency "is
    too high compared to the experimental efficiency [because] messages
    in a local area network have a large overhead which becomes
    important when the messages are small.  We have not attempted to
    model the overhead of small messages here."  The paper closes by
    noting the model "can be improved further, if desired, by employing
    more sophisticated expressions for the communication time".

    This is that improvement: a per-step overhead of ``messages``
    fixed-latency messages, each queuing behind the other processors'
    like the payload does::

        T_com = (P - 1) * [ messages * t_msg  +  N_c / V_com ]

    so ``f = (1 + (P-1) (messages t_msg U_calc / N + m N^{-1/d'}
    ratio))^{-1}``.  With the payload term alone it reduces to
    eq. 20/21; the overhead term bends the small-grain end of the curve
    down onto the measurements (see the fig. 12 benchmark).

    Parameters
    ----------
    ratio:
        ``U_calc / V_com``, as in :class:`EfficiencyModel`.
    u_calc:
        Nodes integrated per second (to convert the message latency
        into node-equivalents); defaults to the §7 reference speed.
    t_msg:
        Per-message fixed latency in seconds.
    messages:
        Messages per step per neighbour pair (1 for LB, 2 for FD — §6).
    """

    ratio: float = 2.0 / 3.0
    u_calc: float = 39132.0
    t_msg: float = 1.0e-3
    messages: int = 1

    def efficiency(self, n, m: float, p, ndim: int = 2):
        """Predicted efficiency with the per-message overhead included."""
        n = np.asarray(n, dtype=float)
        p_arr = np.asarray(p, dtype=float)
        if ndim == 2:
            payload = n**-0.5 * m * self.ratio
        elif ndim == 3:
            payload = (5.0 / 6.0) * n ** (-1.0 / 3.0) * m * self.ratio
        else:
            raise ValueError(f"ndim must be 2 or 3, got {ndim}")
        overhead = self.messages * self.t_msg * self.u_calc / n
        return 1.0 / (1.0 + (p_arr - 1.0) * (payload + overhead))
