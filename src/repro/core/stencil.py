"""Stencils of local interaction and their consequences (paper §3, App. A).

The paper defines a *local interaction computation* as a set of parallel
nodes positioned in space so that nodes interact only with neighbours.
Two canonical nearest-neighbour interaction patterns are distinguished
(fig. 4): the *star* stencil (axis-aligned neighbours only) and the
*full* stencil (axis-aligned plus diagonal neighbours).

The stencil shape matters in two places:

* the ghost-exchange schedule — a full stencil requires corner/edge ghost
  data, which this package supplies via sequential per-axis exchanges
  (an x-exchange followed by a y-exchange that includes the freshly
  received x-ghost columns, and so on for z);
* the worst-case *un-synchronization* between subregion processes
  (App. A): because communication only loosely synchronizes neighbours,
  distant subregions may be several integration steps apart, and the
  attainable spread depends on the dependency graph induced by the
  stencil (eqs. 22-23).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "Stencil",
    "star_stencil",
    "full_stencil",
    "max_unsync_steps",
]


@dataclass(frozen=True)
class Stencil:
    """A local interaction pattern.

    Parameters
    ----------
    ndim:
        Spatial dimensionality (2 or 3).
    reach:
        Interaction distance in nodes (1 for nearest-neighbour methods;
        the fourth-order filter of the paper reaches 2).
    full:
        ``True`` for the full stencil (diagonal dependencies included),
        ``False`` for the star stencil (axis-aligned only).
    """

    ndim: int
    reach: int
    full: bool

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise ValueError(f"ndim must be 1, 2 or 3, got {self.ndim}")
        if self.reach < 1:
            raise ValueError(f"reach must be >= 1, got {self.reach}")

    def offsets(self) -> Iterator[tuple[int, ...]]:
        """Yield every nonzero neighbour offset covered by the stencil."""
        rng = range(-self.reach, self.reach + 1)
        for off in itertools.product(rng, repeat=self.ndim):
            if all(o == 0 for o in off):
                continue
            if self.full or sum(1 for o in off if o != 0) == 1:
                yield off

    def neighbor_block_offsets(self) -> Iterator[tuple[int, ...]]:
        """Yield the unit block offsets a subregion must exchange with.

        Regardless of ``reach``, a subregion whose side exceeds the reach
        only ever touches blocks at unit offsets; the reach controls the
        *width* of the exchanged strip, not which blocks are neighbours.
        """
        for off in itertools.product((-1, 0, 1), repeat=self.ndim):
            if all(o == 0 for o in off):
                continue
            if self.full or sum(1 for o in off if o != 0) == 1:
                yield off

    @property
    def n_neighbors(self) -> int:
        """Number of neighbouring blocks for an interior subregion."""
        return sum(1 for _ in self.neighbor_block_offsets())

    def graph_distance(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Distance between block indices in the stencil dependency graph.

        For the full stencil diagonal moves are allowed, so the distance
        is the Chebyshev distance; for the star stencil it is the
        Manhattan distance.
        """
        deltas = [abs(int(x) - int(y)) for x, y in zip(a, b)]
        if self.full:
            return max(deltas)
        return sum(deltas)


def star_stencil(ndim: int, reach: int = 1) -> Stencil:
    """The axis-aligned (star) stencil of fig. 4."""
    return Stencil(ndim=ndim, reach=reach, full=False)


def full_stencil(ndim: int, reach: int = 1) -> Stencil:
    """The full stencil of fig. 4, including diagonal neighbours."""
    return Stencil(ndim=ndim, reach=reach, full=True)


def max_unsync_steps(blocks: Sequence[int], stencil: Stencil) -> int:
    """Worst-case integration-step spread between two processes (App. A).

    If one process stops after communicating its data for step ``n``, its
    neighbours may advance one further step, their neighbours one more,
    and so on: the attainable spread between two subregions equals their
    distance in the stencil dependency graph.  For a ``(J x K)``
    decomposition the paper derives

    * full stencil (eq. 22):  ``max(J, K) - 1``
    * star stencil (eq. 23):  ``(J - 1) + (K - 1)``

    which are the graph diameters under Chebyshev and Manhattan metrics
    respectively.  This function computes the same quantity for any
    dimensionality.
    """
    if len(blocks) != stencil.ndim:
        raise ValueError(
            f"decomposition {blocks!r} has {len(blocks)} axes but the "
            f"stencil is {stencil.ndim}-dimensional"
        )
    if any(b < 1 for b in blocks):
        raise ValueError(f"block counts must be positive, got {blocks!r}")
    extents = [b - 1 for b in blocks]
    if stencil.full:
        return max(extents)
    return sum(extents)
