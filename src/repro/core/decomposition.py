"""Uniform rectangular domain decomposition (paper §§2-3).

The simulated area is decomposed into a ``(J x K)`` (2D) or ``(J x K x L)``
(3D) grid of rectangular subregions, each assigned to one parallel
subprocess.  The implementation follows the paper's stated preference for
*uniform decompositions and identical-shaped subregions* "for the sake of
simplicity", with one refinement the paper also uses (fig. 2): subregions
that are entirely solid walls are *inactive* and are not assigned to any
workstation, reducing the computational effort (15 of 24 subregions
active in the paper's second flue-pipe geometry).

The module also provides the geometric constant ``m`` of the efficiency
model (§8): the number of communicating faces that enters
``N_c = m N^{1/2}`` (2D) or ``N_c = m N^{2/3}`` (3D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Literal, Mapping, Sequence

import numpy as np

from .stencil import Stencil

__all__ = ["Block", "Decomposition", "paper_m_table"]


def _split_extent(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous, nearly equal ranges."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if n < parts:
        raise ValueError(f"cannot split extent {n} into {parts} blocks")
    base, extra = divmod(n, parts)
    ranges = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def _weighted_extent(
    n: int, weights: Sequence[float]
) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ranges proportional to weights.

    The sizes come from the same largest-remainder division the cluster
    allocator uses (:func:`repro.cluster.allocation.proportional_shares`),
    so a decomposition cut from measured host speeds and the one
    reconstructed from the resulting integer shares are identical.
    """
    # Imported lazily: repro.cluster imports this module at package
    # init, so a module-level import here would be circular.
    from ..cluster.allocation import proportional_shares

    sizes = proportional_shares(n, [float(w) for w in weights])
    ranges = []
    start = 0
    for size in sizes:
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class Block:
    """One subregion of the decomposition.

    Attributes
    ----------
    index:
        Block coordinates, e.g. ``(j, k)`` in a ``(J x K)`` decomposition.
    lo, hi:
        Half-open global node ranges per axis: this block owns the nodes
        ``lo[d] <= i < hi[d]`` on axis ``d``.
    rank:
        Dense rank among *active* blocks (``-1`` for inactive blocks);
        this is the identity used by workers, dump files and the cluster
        simulator.
    active:
        ``False`` when the block is entirely solid wall (fig. 2) and is
        therefore not assigned to any workstation.
    """

    index: tuple[int, ...]
    lo: tuple[int, ...]
    hi: tuple[int, ...]
    rank: int
    active: bool = True

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.shape))

    @property
    def slices(self) -> tuple[slice, ...]:
        """Global-array slices selecting the nodes this block owns."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))


class Decomposition:
    """A ``(J x K [x L])`` decomposition of a global grid.

    Parameters
    ----------
    grid_shape:
        Global grid shape in nodes, e.g. ``(800, 500)``.
    blocks:
        Number of subregions per axis, e.g. ``(5, 4)`` for the paper's
        fig. 1 run.
    periodic:
        Per-axis periodicity.  The paper's enclosed flue-pipe domains are
        non-periodic; the Hagen-Poiseuille validation flow is periodic
        along the channel.
    solid:
        Optional global boolean mask of solid-wall nodes; blocks whose
        nodes are all solid become inactive (fig. 2).
    weights:
        Optional per-axis block weights for *non-uniform* extents: one
        entry per axis, each either ``None`` (uniform split on that
        axis) or a sequence of ``blocks[d]`` positive weights.  Block
        sizes follow the weights by largest-remainder rounding, which
        is how the adaptive load balancer (:mod:`repro.balance`) gives
        fast hosts bigger slabs.  Integer weights summing to the axis
        extent are honoured exactly.
    """

    def __init__(
        self,
        grid_shape: Sequence[int],
        blocks: Sequence[int],
        *,
        periodic: Sequence[bool] | None = None,
        solid: np.ndarray | None = None,
        weights: Sequence[Sequence[float] | None] | None = None,
    ) -> None:
        self.grid_shape = tuple(int(n) for n in grid_shape)
        self.blocks = tuple(int(b) for b in blocks)
        if len(self.grid_shape) != len(self.blocks):
            raise ValueError(
                f"grid {self.grid_shape} and blocks {self.blocks} have "
                "different dimensionality"
            )
        self.ndim = len(self.grid_shape)
        if self.ndim not in (2, 3):
            raise ValueError(f"only 2D and 3D decompositions are supported")
        if periodic is None:
            periodic = (False,) * self.ndim
        self.periodic = tuple(bool(p) for p in periodic)
        if len(self.periodic) != self.ndim:
            raise ValueError("periodic must have one entry per axis")

        if weights is None:
            weights = (None,) * self.ndim
        if len(weights) != self.ndim:
            raise ValueError("weights must have one entry per axis")
        norm: list[tuple[float, ...] | None] = []
        for d, w in enumerate(weights):
            if w is None:
                norm.append(None)
                continue
            w = tuple(float(x) for x in w)
            if len(w) != self.blocks[d]:
                raise ValueError(
                    f"axis {d} has {self.blocks[d]} blocks but "
                    f"{len(w)} weights"
                )
            if any(x <= 0 for x in w):
                raise ValueError("block weights must be positive")
            norm.append(w)
        self.weights: tuple[tuple[float, ...] | None, ...] = tuple(norm)

        self._ranges = [
            _split_extent(n, b) if w is None else _weighted_extent(n, w)
            for n, b, w in zip(self.grid_shape, self.blocks, self.weights)
        ]

        if solid is not None and solid.shape != self.grid_shape:
            raise ValueError(
                f"solid mask shape {solid.shape} != grid {self.grid_shape}"
            )

        self._blocks: dict[tuple[int, ...], Block] = {}
        rank = 0
        for index in itertools.product(*(range(b) for b in self.blocks)):
            lo = tuple(self._ranges[d][index[d]][0] for d in range(self.ndim))
            hi = tuple(self._ranges[d][index[d]][1] for d in range(self.ndim))
            slices = tuple(slice(l, h) for l, h in zip(lo, hi))
            active = True
            if solid is not None and bool(np.all(solid[slices])):
                active = False
            blk = Block(
                index=index,
                lo=lo,
                hi=hi,
                rank=rank if active else -1,
                active=active,
            )
            self._blocks[index] = blk
            if active:
                rank += 1
        self._n_active = rank
        self._by_rank = {
            b.rank: b for b in self._blocks.values() if b.active
        }

    # ------------------------------------------------------------------
    # block access
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        """Total number of subregions, active or not (``J*K[*L]``)."""
        return int(np.prod(self.blocks))

    @property
    def n_active(self) -> int:
        """Number of subregions actually assigned to workstations."""
        return self._n_active

    @property
    def active_fraction(self) -> float:
        """Fraction of subregions (and hence hosts) actually used.

        For the paper's fig. 2 geometry this is 15/24.
        """
        return self._n_active / self.n_blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def __getitem__(self, index: tuple[int, ...]) -> Block:
        return self._blocks[tuple(index)]

    def by_rank(self, rank: int) -> Block:
        """The active block with the given dense rank."""
        return self._by_rank[rank]

    def active_blocks(self) -> list[Block]:
        """All active blocks in dense-rank order."""
        return [self._by_rank[r] for r in range(self._n_active)]

    @property
    def n_active_nodes(self) -> int:
        """Nodes actually simulated (inactive blocks excluded)."""
        return sum(b.n_nodes for b in self.active_blocks())

    # ------------------------------------------------------------------
    # neighbour graph
    # ------------------------------------------------------------------
    def neighbor_index(
        self, index: tuple[int, ...], offset: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """Block index at ``index + offset``, honouring periodicity.

        Returns ``None`` when the offset leaves the block grid on a
        non-periodic axis (a physical domain boundary).
        """
        out = []
        for d in range(self.ndim):
            v = index[d] + offset[d]
            if self.periodic[d]:
                v %= self.blocks[d]
            elif not 0 <= v < self.blocks[d]:
                return None
            out.append(v)
        return tuple(out)

    def neighbors(
        self, index: tuple[int, ...], stencil: Stencil
    ) -> dict[tuple[int, ...], Block]:
        """Active neighbouring blocks of ``index`` under ``stencil``.

        Inactive (all-solid) neighbours are omitted: no data needs to be
        exchanged with a wall, exactly as in the paper's fig. 2 run where
        9 of 24 subregions exist only as geometry.
        """
        result: dict[tuple[int, ...], Block] = {}
        for off in stencil.neighbor_block_offsets():
            nb = self.neighbor_index(index, off)
            if nb is None:
                continue
            blk = self._blocks[nb]
            if blk.active:
                result[off] = blk
        return result

    # ------------------------------------------------------------------
    # efficiency-model geometry (paper §8)
    # ------------------------------------------------------------------
    def m_factor(
        self, mode: Literal["paper", "max", "mean"] = "paper"
    ) -> float:
        """The geometric constant ``m`` of the efficiency model.

        ``N_c = m N^{1/2}`` in 2D (eq. 15) and ``m N^{2/3}`` in 3D
        (eq. 16), where ``N_c`` counts communicating surface nodes.  The
        paper tabulates ``m`` for the decompositions used in §7::

            P x 1   2 x 2   3 x 3   4 x 4   5 x 4
              2       2       3       4       4

        No single closed form reproduces every tabulated entry (the
        ``3 x 3`` value sits between the mean face count 2.67 and the
        interior-block count 4), so ``mode='paper'`` looks the
        decomposition up in :func:`paper_m_table` and falls back to the
        interior-block face count ``sum(min(b-1, 2))`` for decompositions
        the paper does not tabulate.  ``mode='max'`` is the face count of
        the busiest block and ``mode='mean'`` the average over all
        blocks; both are provided for sensitivity studies.
        """
        if mode == "paper":
            table = paper_m_table()
            key = tuple(sorted(self.blocks, reverse=True))
            for cand in (self.blocks, key):
                if cand in table:
                    return float(table[cand])
            return float(sum(min(b - 1, 2) for b in self.blocks))
        faces_per_block = []
        for blk in self:
            faces = 0
            for d in range(self.ndim):
                for s in (-1, +1):
                    off = tuple(s if i == d else 0 for i in range(self.ndim))
                    if self.neighbor_index(blk.index, off) is not None:
                        faces += 1
            faces_per_block.append(faces)
        if mode == "max":
            return float(max(faces_per_block))
        if mode == "mean":
            return float(np.mean(faces_per_block))
        raise ValueError(f"unknown m_factor mode {mode!r}")

    def boundary_nodes(self, index: tuple[int, ...]) -> int:
        """Number of nodes of block ``index`` lying on communicating faces.

        This is the exact per-block ``N_c`` whose surface/volume scaling
        the model approximates with ``m N^{1/(ndim)}``-type laws.
        Nodes on faces towards the physical domain boundary (or towards
        inactive blocks) do not communicate and are not counted.  Corner
        nodes shared by two communicating faces are counted once.
        """
        blk = self._blocks[tuple(index)]
        shape = blk.shape
        mask = np.zeros(shape, dtype=bool)
        for d in range(self.ndim):
            for s in (-1, +1):
                off = tuple(s if i == d else 0 for i in range(self.ndim))
                nb = self.neighbor_index(blk.index, off)
                if nb is None or not self._blocks[nb].active:
                    continue
                sl = [slice(None)] * self.ndim
                sl[d] = slice(0, 1) if s == -1 else slice(shape[d] - 1, None)
                mask[tuple(sl)] = True
        return int(mask.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Decomposition(grid={self.grid_shape}, blocks={self.blocks}, "
            f"active={self.n_active}/{self.n_blocks})"
        )


def paper_m_table() -> Mapping[tuple[int, ...], int]:
    """The paper's table of ``m`` values (§8) keyed by decomposition."""
    return {
        (1, 1): 0,  # serial: no communication
        (2, 1): 2,
        (4, 1): 2,
        (8, 1): 2,
        (16, 1): 2,
        (2, 2): 2,
        (3, 3): 3,
        (4, 4): 4,
        (5, 4): 4,
    }
