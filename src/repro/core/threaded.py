"""Threaded parallel runner: real concurrency inside one process.

`repro.core.Simulation` steps its subregions sequentially — correct and
convenient, but not concurrent.  This runner gives each subregion a
worker *thread* and synchronizes the compute/communicate cycle with
barriers; NumPy's vectorized kernels release the GIL for their inner
loops, and the numba kernel backend (``repro.fluids.backends``) releases
it outright, so the threads genuinely overlap on a multi-core machine.

The worker threads are **persistent**: the pool is spawned lazily on the
first multi-subregion ``step()`` and parked on a go-barrier between
calls, so a timing loop that calls ``step(1)`` repeatedly pays no
per-call thread creation (spawning threads per step used to make this
runner *slower* than the serial one).  ``close()`` (or the context
manager) retires the pool; the threads are daemons, so an unclosed
simulation never blocks interpreter exit.

The exchange itself remains the single-threaded
:class:`~repro.core.exchange.LocalExchanger` pass (run by one thread
between barriers): exchanges copy ghost strips between subregions, and
racing them against kernels would break the very read/write-hazard
analysis that guarantees bitwise equality.  Axes along which *no*
subregion has an active neighbour are exempt: their ghost fills are pure
edge replication on the subregion's own arrays, so each worker applies
them locally (``exchange_local``) without a barrier — a 1xN block grid
synchronizes only for the axis that actually communicates.  The
resulting schedule per phase is

```
[all threads] compute_phase(k); local ghost fills (neighbourless axes)
barrier -> [one thread] exchange(fields_k, communicating axes) -> barrier
```

which performs the identical arithmetic to :class:`Simulation` — the
tests assert bit-for-bit equality — while computing subregions in
parallel.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

import numpy as np

from ..net.collectives import Communicator
from ..trace import NULL_TRACER
from .decomposition import Decomposition
from .exchange import LocalExchanger, sweep_axes
from .runner import (
    ExplicitMethod,
    _bind_backend,
    _normalize_methods,
    _phase_field_maps,
    common_field_names,
)
from .subregion import assemble_global, make_subregions

__all__ = ["ThreadedSimulation"]


class ThreadedSimulation:
    """Step a decomposed problem with one thread per subregion.

    Same constructor signature and result semantics as
    :class:`repro.core.Simulation`; ``step(n)`` releases the persistent
    worker pool for ``n`` steps and waits for it to finish.
    """

    def __init__(
        self,
        method,
        decomp: Decomposition,
        global_fields: Mapping[str, np.ndarray],
        solid: np.ndarray | None = None,
        diag_every: int = 0,
        diag_algorithm: str = "tree",
        diag_vmax: float = 0.0,
        tracer=NULL_TRACER,
        backend: str | None = None,
        converters=None,
        step_delays=None,
        delay_fn=None,
    ) -> None:
        methods, single = _normalize_methods(method, decomp, converters)
        for m in dict.fromkeys(methods):
            _bind_backend(m, backend)
        self.methods = methods
        self.method = single
        self.decomp = decomp
        self.tracer = tracer
        self._converters = dict(converters or {})
        # Synthetic-load injection (mirrors the distributed runtime's
        # step_delays knob and the graph executor's delay_fn): each
        # rank sleeps ``step_delays[rank] + delay_fn(rank, step)``
        # seconds at the top of every step.  Under this runner's BSP
        # barriers one slow rank stalls the whole step — exactly the
        # imbalance the dependency-driven executor is benched against.
        self._step_delays = list(step_delays or [])
        self._delay_fn = delay_fn
        nphases = max(len(m.exchange_phases) for m in methods)
        self._nphases = nphases
        self._compute_names = tuple(f"compute:{i}" for i in range(nphases))
        self._exchange_names = tuple(f"exchange:{i}" for i in range(nphases))
        # non-exchanging threads spend the same interval at the barrier
        self._wait_names = tuple(f"wait:{i}" for i in range(nphases))
        self.subs = make_subregions(
            decomp, methods[0].pad, global_fields, solid
        )
        if not self.subs:
            raise ValueError("decomposition has no active subregions")
        for sub, m in zip(self.subs, self.methods):
            m.init_subregion(sub)
        self.exchanger = LocalExchanger(decomp, self.subs, self._converters)
        self._phase_fields = _phase_field_maps(self.subs, self.methods, nphases)
        if single is not None:
            self.exchanger.exchange(single.field_names)
        else:
            self.exchanger.exchange(
                (),
                fields_by_rank={
                    s.block.rank: m.field_names
                    for s, m in zip(self.subs, self.methods)
                },
            )
            self.exchanger.exchange_seam()
        # Split the axis sweep: the leading axes along which no
        # subregion receives from a neighbour (single-block axes, or
        # axes severed by inactive blocks) are pure local replication
        # and run thread-locally; only the rest needs the serialized
        # exchange between barriers.
        extended = decomp.n_active < decomp.n_blocks
        sweep = sweep_axes(decomp.ndim, extended)
        has_recv = {
            axis: any(
                op.kind == "recv"
                for plan in self.exchanger.plans.values()
                for op in plan.ops_for_axis(axis)
            )
            for axis in range(decomp.ndim)
        }
        n_local = 0
        while n_local < len(sweep) and not has_recv[sweep[n_local]]:
            n_local += 1
        self._local_axes: tuple[int, ...] = sweep[:n_local]
        self._central_axes: tuple[int, ...] = sweep[n_local:]
        # persistent pool state (spawned lazily by the first step)
        self._pool: list[threading.Thread] = []
        self._go: threading.Barrier | None = None
        self._done: threading.Barrier | None = None
        self._inner = threading.Barrier(len(self.subs))
        self._n_steps = 0
        self._closing = False
        self._lock = threading.Lock()
        self._errors: list[BaseException] = []
        #: global :class:`~repro.distrib.diagnostics.DiagRecord` samples
        #: collected every ``diag_every`` steps (empty when disabled)
        self.diagnostics: list = []
        self._diags = None
        if diag_every > 0:
            # Each thread gets a communicator over the in-process
            # fabric — the very collectives a distributed run would use,
            # blocking thread against thread.  ``diag_vmax = 0`` keeps
            # the CFL sentinel off (only NaNs abort an in-process run).
            from ..distrib.diagnostics import GlobalDiagnostics
            from ..net.local import LocalFabric

            fabric = LocalFabric(len(self.subs))
            self._diags = [
                GlobalDiagnostics(
                    Communicator(
                        fabric.channel_set(i), i, len(self.subs),
                        algorithm=diag_algorithm, tracer=tracer,
                    ),
                    every=diag_every,
                    vmax=diag_vmax,
                )
                for i in range(len(self.subs))
            ]

    @property
    def step_count(self) -> int:
        return self.subs[0].step

    # ------------------------------------------------------------------
    # persistent pool
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._pool:
            return
        n = len(self.subs)
        self._go = threading.Barrier(n + 1)
        self._done = threading.Barrier(n + 1)
        for i in range(n):
            t = threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"repro-sub{i}",
                daemon=True,
            )
            t.start()
            self._pool.append(t)

    def _worker_loop(self, idx: int) -> None:
        while True:
            try:
                self._go.wait()
            except threading.BrokenBarrierError:
                return  # pool closed while parked
            if self._closing:
                return
            try:
                self._run_steps(idx, self._n_steps)
            except BaseException as exc:
                with self._lock:
                    self._errors.append(exc)
                # wake any siblings blocked on the phase barrier
                self._inner.abort()
            try:
                self._done.wait()
            except threading.BrokenBarrierError:  # pragma: no cover
                return

    def close(self) -> None:
        """Retire the worker pool (idempotent; the pool respawns on the
        next ``step`` if the simulation is stepped again)."""
        if not self._pool:
            return
        self._closing = True
        assert self._go is not None
        self._go.abort()
        for t in self._pool:
            t.join(timeout=5.0)
        self._pool.clear()
        self._go = None
        self._done = None
        self._closing = False

    def __enter__(self) -> "ThreadedSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _sleep_delay(self, rank: int, step_no: int) -> None:
        """Burn the rank's synthetic per-step delay (wall time only)."""
        delay = (
            self._step_delays[rank]
            if rank < len(self._step_delays) else 0.0
        )
        if self._delay_fn is not None:
            delay += self._delay_fn(rank, step_no)
        if delay > 0:
            time.sleep(delay)

    def _run_steps(self, idx: int, n_steps: int) -> None:
        if self.method is None:
            self._run_steps_hybrid(idx, n_steps)
            return
        method = self.method
        sub = self.subs[idx]
        rank = sub.block.rank
        tracer = self.tracer
        compute_names = self._compute_names
        sync_names = self._exchange_names if idx == 0 else self._wait_names
        local_axes = self._local_axes
        central_axes = self._central_axes
        for _ in range(n_steps):
            step_no = sub.step
            self._sleep_delay(rank, step_no)
            for phase, fields in enumerate(method.exchange_phases):
                t0 = tracer.begin()
                method.compute_phase(sub, phase)
                if local_axes:
                    # neighbourless axes: fill my own ghosts, no sync
                    self.exchanger.exchange_local(rank, local_axes, fields)
                tracer.end(compute_names[phase], t0, step=step_no,
                           tid=idx)
                if central_axes:
                    t0 = tracer.begin()
                    self._inner.wait()
                    if idx == 0:
                        # one thread runs the exchange: strips are
                        # copies between subregions and must not race
                        # the kernels
                        self.exchanger.exchange(fields, axes=central_axes)
                    self._inner.wait()
                    tracer.end(sync_names[phase], t0, step=step_no,
                               tid=idx)
            t0 = tracer.begin()
            method.finalize_step(sub)
            tracer.end("finalize:0", t0, step=step_no, tid=idx)
            sub.step += 1
            if self._diags is not None:
                # The collective itself synchronizes the threads;
                # every thread reads only its own subregion.
                rec = self._diags[idx].maybe_check(sub)
                if idx == 0 and rec is not None:
                    self.diagnostics.append(rec)

    def _run_steps_hybrid(self, idx: int, n_steps: int) -> None:
        """Mixed-method worker loop (see ``Simulation._step_hybrid``).

        The seam translation and every exchange are serialized through
        thread 0 between barriers — converters read neighbouring
        subregions' arrays and must not race the kernels.  Phases run
        to the longest method's count; threads whose method has fewer
        phases still compute nothing but meet every barrier, keeping
        the schedule deadlock-free.
        """
        method = self.methods[idx]
        sub = self.subs[idx]
        rank = sub.block.rank
        tracer = self.tracer
        sync_names = self._exchange_names if idx == 0 else self._wait_names
        local_axes = self._local_axes
        central_axes = self._central_axes
        phases = method.exchange_phases
        for _ in range(n_steps):
            step_no = sub.step
            self._sleep_delay(rank, step_no)
            if self._converters:
                t0 = tracer.begin()
                self._inner.wait()
                if idx == 0:
                    self.exchanger.exchange_seam()
                self._inner.wait()
                tracer.end("seam:0", t0, step=step_no, tid=idx)
            for phase in range(self._nphases):
                fields = phases[phase] if phase < len(phases) else ()
                t0 = tracer.begin()
                if phase < len(phases):
                    method.compute_phase(sub, phase)
                    if local_axes and fields:
                        self.exchanger.exchange_local(
                            rank, local_axes, fields
                        )
                tracer.end(self._compute_names[phase], t0, step=step_no,
                           tid=idx)
                if central_axes:
                    t0 = tracer.begin()
                    self._inner.wait()
                    if idx == 0:
                        self.exchanger.exchange(
                            (),
                            axes=central_axes,
                            fields_by_rank=self._phase_fields[phase],
                        )
                    self._inner.wait()
                    tracer.end(sync_names[phase], t0, step=step_no,
                               tid=idx)
            t0 = tracer.begin()
            method.finalize_step(sub)
            tracer.end("finalize:0", t0, step=step_no, tid=idx)
            sub.step += 1
            if self._diags is not None:
                rec = self._diags[idx].maybe_check(sub)
                if idx == 0 and rec is not None:
                    self.diagnostics.append(rec)

    def step(self, n: int = 1) -> None:
        """Advance every subregion ``n`` steps, concurrently."""
        if len(self.subs) == 1:
            # degenerate case: no point waking a pool
            method = self.method
            sub = self.subs[0]
            tracer = self.tracer
            for _ in range(n):
                step_no = sub.step
                self._sleep_delay(sub.block.rank, step_no)
                for phase, fields in enumerate(method.exchange_phases):
                    t0 = tracer.begin()
                    method.compute_phase(sub, phase)
                    tracer.end(self._compute_names[phase], t0,
                               step=step_no)
                    t0 = tracer.begin()
                    self.exchanger.exchange(fields)
                    tracer.end(self._exchange_names[phase], t0,
                               step=step_no)
                t0 = tracer.begin()
                method.finalize_step(sub)
                tracer.end("finalize:0", t0, step=step_no)
                sub.step += 1
                if self._diags is not None:
                    rec = self._diags[0].maybe_check(sub)
                    if rec is not None:
                        self.diagnostics.append(rec)
            return
        self._ensure_pool()
        assert self._go is not None and self._done is not None
        self._errors.clear()
        self._n_steps = n
        self._go.wait()
        self._done.wait()
        if self._errors:
            # the abort that surfaced the error broke the phase barrier;
            # heal it so the pool can serve another step() after the
            # caller handles the exception
            self._inner.reset()
            # Prefer the root cause over the BrokenBarrierErrors that
            # the abort cascades to the other workers.
            for exc in self._errors:
                if not isinstance(exc, threading.BrokenBarrierError):
                    raise exc
            raise self._errors[0]

    # ------------------------------------------------------------------
    def global_field(self, name: str, fill: float = 0.0) -> np.ndarray:
        """Reassemble a global array from the subregion interiors."""
        return assemble_global(self.decomp, self.subs, name, fill)

    def global_state(self) -> dict[str, np.ndarray]:
        """All method fields reassembled into global arrays (hybrid
        runs reassemble the fields every method evolves)."""
        names = (
            self.method.field_names
            if self.method is not None
            else common_field_names(self.methods)
        )
        return {name: self.global_field(name) for name in names}
