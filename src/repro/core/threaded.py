"""Threaded parallel runner: real concurrency inside one process.

`repro.core.Simulation` steps its subregions sequentially — correct and
convenient, but not concurrent.  This runner gives each subregion a
worker *thread* and synchronizes the compute/communicate cycle with
barriers; NumPy's vectorized kernels release the GIL, so the threads
genuinely overlap on a multi-core machine.

The exchange itself remains the single-threaded
:class:`~repro.core.exchange.LocalExchanger` pass (run by one thread
between barriers): exchanges copy ghost strips between subregions, and
racing them against kernels would break the very read/write-hazard
analysis that guarantees bitwise equality.  The resulting schedule is

```
barrier -> [all threads] compute_phase(k) -> barrier
        -> [one thread]  exchange(fields_k)            (for each phase)
barrier -> [all threads] finalize_step   -> barrier
```

which performs the identical arithmetic to :class:`Simulation` — the
tests assert bit-for-bit equality — while computing subregions in
parallel.
"""

from __future__ import annotations

import threading
from typing import Mapping

import numpy as np

from ..net.collectives import Communicator
from ..trace import NULL_TRACER
from .decomposition import Decomposition
from .exchange import LocalExchanger
from .runner import ExplicitMethod
from .subregion import assemble_global, make_subregions

__all__ = ["ThreadedSimulation"]


class ThreadedSimulation:
    """Step a decomposed problem with one thread per subregion.

    Same constructor signature and result semantics as
    :class:`repro.core.Simulation`; ``step(n)`` dispatches the worker
    threads for ``n`` steps and joins them.
    """

    def __init__(
        self,
        method: ExplicitMethod,
        decomp: Decomposition,
        global_fields: Mapping[str, np.ndarray],
        solid: np.ndarray | None = None,
        diag_every: int = 0,
        diag_algorithm: str = "tree",
        diag_vmax: float = 0.0,
        tracer=NULL_TRACER,
    ) -> None:
        self.method = method
        self.decomp = decomp
        self.tracer = tracer
        nphases = len(method.exchange_phases)
        self._compute_names = tuple(f"compute:{i}" for i in range(nphases))
        self._exchange_names = tuple(f"exchange:{i}" for i in range(nphases))
        # non-exchanging threads spend the same interval at the barrier
        self._wait_names = tuple(f"wait:{i}" for i in range(nphases))
        self.subs = make_subregions(decomp, method.pad, global_fields, solid)
        if not self.subs:
            raise ValueError("decomposition has no active subregions")
        for sub in self.subs:
            method.init_subregion(sub)
        self.exchanger = LocalExchanger(decomp, self.subs)
        self.exchanger.exchange(method.field_names)
        self._barrier = threading.Barrier(len(self.subs))
        self._lock = threading.Lock()
        self._errors: list[BaseException] = []
        #: global :class:`~repro.distrib.diagnostics.DiagRecord` samples
        #: collected every ``diag_every`` steps (empty when disabled)
        self.diagnostics: list = []
        self._diags = None
        if diag_every > 0:
            # Each thread gets a communicator over the in-process
            # fabric — the very collectives a distributed run would use,
            # blocking thread against thread.  ``diag_vmax = 0`` keeps
            # the CFL sentinel off (only NaNs abort an in-process run).
            from ..distrib.diagnostics import GlobalDiagnostics
            from ..net.local import LocalFabric

            fabric = LocalFabric(len(self.subs))
            self._diags = [
                GlobalDiagnostics(
                    Communicator(
                        fabric.channel_set(i), i, len(self.subs),
                        algorithm=diag_algorithm, tracer=tracer,
                    ),
                    every=diag_every,
                    vmax=diag_vmax,
                )
                for i in range(len(self.subs))
            ]

    @property
    def step_count(self) -> int:
        return self.subs[0].step

    # ------------------------------------------------------------------
    def _worker(self, idx: int, n_steps: int) -> None:
        method = self.method
        sub = self.subs[idx]
        tracer = self.tracer
        compute_names = self._compute_names
        sync_names = self._exchange_names if idx == 0 else self._wait_names
        try:
            for _ in range(n_steps):
                step_no = sub.step
                for phase, fields in enumerate(method.exchange_phases):
                    t0 = tracer.begin()
                    method.compute_phase(sub, phase)
                    tracer.end(compute_names[phase], t0, step=step_no,
                               tid=idx)
                    t0 = tracer.begin()
                    self._barrier.wait()
                    if idx == 0:
                        # one thread runs the exchange: strips are
                        # copies between subregions and must not race
                        # the kernels
                        self.exchanger.exchange(fields)
                    self._barrier.wait()
                    tracer.end(sync_names[phase], t0, step=step_no,
                               tid=idx)
                t0 = tracer.begin()
                method.finalize_step(sub)
                tracer.end("finalize:0", t0, step=step_no, tid=idx)
                sub.step += 1
                if self._diags is not None:
                    # The collective itself synchronizes the threads;
                    # every thread reads only its own subregion.
                    rec = self._diags[idx].maybe_check(sub)
                    if idx == 0 and rec is not None:
                        self.diagnostics.append(rec)
                self._barrier.wait()
        except BaseException as exc:  # pragma: no cover - surfaced below
            with self._lock:
                self._errors.append(exc)
            self._barrier.abort()

    def step(self, n: int = 1) -> None:
        """Advance every subregion ``n`` steps, concurrently."""
        if len(self.subs) == 1:
            # degenerate case: no point spawning a thread
            method = self.method
            sub = self.subs[0]
            tracer = self.tracer
            for _ in range(n):
                step_no = sub.step
                for phase, fields in enumerate(method.exchange_phases):
                    t0 = tracer.begin()
                    method.compute_phase(sub, phase)
                    tracer.end(self._compute_names[phase], t0,
                               step=step_no)
                    t0 = tracer.begin()
                    self.exchanger.exchange(fields)
                    tracer.end(self._exchange_names[phase], t0,
                               step=step_no)
                t0 = tracer.begin()
                method.finalize_step(sub)
                tracer.end("finalize:0", t0, step=step_no)
                sub.step += 1
                if self._diags is not None:
                    rec = self._diags[0].maybe_check(sub)
                    if rec is not None:
                        self.diagnostics.append(rec)
            return
        self._barrier.reset()
        self._errors.clear()
        threads = [
            threading.Thread(target=self._worker, args=(i, n))
            for i in range(len(self.subs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self._errors:
            # Prefer the root cause over the BrokenBarrierErrors that
            # the abort cascades to the other workers.
            for exc in self._errors:
                if not isinstance(exc, threading.BrokenBarrierError):
                    raise exc
            raise self._errors[0]

    # ------------------------------------------------------------------
    def global_field(self, name: str, fill: float = 0.0) -> np.ndarray:
        """Reassemble a global array from the subregion interiors."""
        return assemble_global(self.decomp, self.subs, name, fill)

    def global_state(self) -> dict[str, np.ndarray]:
        """All method fields reassembled into global arrays."""
        return {
            name: self.global_field(name)
            for name in self.method.field_names
        }
