"""Ghost-cell exchange schedules (paper §4.2).

Neighbouring subregions exchange the outer surface of their interiors:
width-``pad`` strips copied onto the receiver's padded area.  Exchanges
proceed axis by axis (x, then y, then z), and every strip spans the full
padded extent of the *other* axes; this two-phase scheme propagates
corner and edge ghost data through consecutive axis exchanges, so the
full stencil of fig. 4 (diagonal dependencies, needed by the lattice
Boltzmann populations) is served without any explicit diagonal message —
each process only ever talks to its axis-aligned neighbours, exactly as
the paper's system does.

Three exchange transports implement the same plan:

* :class:`LocalExchanger` (here) — direct array copies between
  subregions living in one process; used by the serial reference runner
  and the in-process parallel runner.
* :class:`repro.net.transport.SocketExchanger` — real TCP/IP sockets
  between worker processes (the paper's actual mechanism).
* the cluster simulator, which never moves bytes but charges the plan's
  message sizes to the simulated Ethernet bus.

At a physical (non-periodic) domain boundary the ghost strips are filled
by replicating the edge values, in the same axis order, which keeps a
decomposed run bit-for-bit identical to the serial one.  Ghost strips
facing an *inactive* (all-solid, fig. 2) block are left untouched: their
values were set from the global initial state at decomposition time and
solid-node values are maintained locally by the boundary-condition
enforcement of the numerical methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from .decomposition import Decomposition
from .subregion import SubregionState

__all__ = [
    "EdgeOp",
    "ExchangePlan",
    "build_plan",
    "sweep_axes",
    "LocalExchanger",
]


def sweep_axes(ndim: int, extended: bool) -> tuple[int, ...]:
    """The per-axis exchange order.

    A single ascending sweep propagates corner data when every block is
    active: the corner travels owner -> axis-0 neighbour -> axis-1
    neighbour, and each hop's strip spans the previous hops' ghosts.
    When a decomposition has *inactive* blocks (fig. 2), the canonical
    through-block of a diagonal pair may not exist and the corner must
    route around it, which can require the axis hops in any order; the
    extended sweep is a shortest supersequence containing every
    permutation of the axes ([0,1,0] in 2D, [0,1,2,0,1,2,0] in 3D), so
    some monotone path of exchanges covers every reachable corner.
    """
    base = tuple(range(ndim))
    if not extended or ndim == 1:
        return base
    if ndim == 2:
        return (0, 1, 0)
    return (0, 1, 2, 0, 1, 2, 0)

FillKind = Literal["recv", "replicate", "hold"]


@dataclass(frozen=True)
class EdgeOp:
    """One side of one axis of a subregion's exchange plan.

    Attributes
    ----------
    axis, side:
        Which face of the block (``side`` is -1 for the low face,
        +1 for the high face).
    kind:
        ``"recv"`` — ghost strip is received from an active neighbour;
        ``"replicate"`` — physical domain boundary, ghost strip filled by
        edge replication; ``"hold"`` — face towards an inactive (solid)
        block, ghost strip left as decomposed.
    recv_slices:
        Slices of *my* padded arrays covering the ghost strip.
    send_slices:
        Slices of *my* padded arrays covering the interior strip that the
        neighbour on this face needs from me (only for ``kind="recv"``).
    neighbor_rank:
        Dense rank of the active neighbour (only for ``kind="recv"``).
    """

    axis: int
    side: int
    kind: FillKind
    recv_slices: tuple[slice, ...]
    send_slices: tuple[slice, ...] | None = None
    neighbor_rank: int = -1

    def strip_nodes(self, padded_shape: Sequence[int]) -> int:
        """Number of nodes in the exchanged strip (for traffic accounting)."""
        n = 1
        for d, sl in enumerate(self.recv_slices):
            start, stop, _ = sl.indices(padded_shape[d])
            n *= stop - start
        return n


@dataclass(frozen=True)
class ExchangePlan:
    """All edge operations for one subregion, in execution order."""

    rank: int
    ops: tuple[EdgeOp, ...]

    def ops_for_axis(self, axis: int) -> list[EdgeOp]:
        """Edge operations of one axis, in plan order."""
        return [op for op in self.ops if op.axis == axis]

    def recv_ops(self) -> list[EdgeOp]:
        """Only the operations that exchange with a neighbour."""
        return [op for op in self.ops if op.kind == "recv"]

    @property
    def n_neighbors(self) -> int:
        return len({op.neighbor_rank for op in self.recv_ops()})


def build_plan(
    decomp: Decomposition, rank: int, pad: int
) -> ExchangePlan:
    """Build the exchange plan for the active block with the given rank."""
    blk = decomp.by_rank(rank)
    shape = blk.shape
    ndim = decomp.ndim
    if any(n < pad for n in shape):
        raise ValueError(
            f"block {blk.index} shape {shape} smaller than pad {pad}; "
            "coarsen the decomposition"
        )
    full = tuple(slice(None) for _ in range(ndim))
    ops: list[EdgeOp] = []
    for axis in range(ndim):
        n = shape[axis]
        for side in (-1, +1):
            recv = list(full)
            recv[axis] = slice(0, pad) if side == -1 else slice(pad + n, 2 * pad + n)
            off = tuple(side if d == axis else 0 for d in range(ndim))
            nb_index = decomp.neighbor_index(blk.index, off)
            if nb_index is None:
                ops.append(
                    EdgeOp(axis, side, "replicate", tuple(recv))
                )
                continue
            nb = decomp[nb_index]
            if not nb.active:
                ops.append(EdgeOp(axis, side, "hold", tuple(recv)))
                continue
            # Interior strip the neighbour needs from me lives on the
            # same face: my low-face neighbour receives my first `pad`
            # interior rows, my high-face neighbour my last `pad`.
            send = list(full)
            send[axis] = (
                slice(pad, 2 * pad) if side == -1 else slice(n, pad + n)
            )
            ops.append(
                EdgeOp(
                    axis,
                    side,
                    "recv",
                    tuple(recv),
                    tuple(send),
                    nb.rank,
                )
            )
    return ExchangePlan(rank=rank, ops=tuple(ops))


def _replicate_edge(
    arr: np.ndarray, op: EdgeOp, pad: int, interior_extent: int
) -> None:
    """Fill a domain-boundary ghost strip by edge replication.

    Matches ``np.pad(..., mode='edge')`` applied axis by axis in
    ascending-axis order (the convention of
    :func:`repro.core.subregion.make_subregions`).
    """
    edge = list(op.recv_slices)
    idx = pad if op.side == -1 else pad + interior_extent - 1
    edge[op.axis] = slice(idx, idx + 1)
    arr[(...,) + op.recv_slices] = arr[(...,) + tuple(edge)]


class LocalExchanger:
    """Exchange ghost strips between subregions living in one process.

    Drives both the serial reference configuration (a 1x1 decomposition,
    where every face is a domain boundary or a periodic self-wrap) and
    in-process parallel runs used by the bitwise serial==parallel tests.
    """

    def __init__(
        self,
        decomp: Decomposition,
        subs: Sequence[SubregionState],
        converters=None,
    ):
        self.decomp = decomp
        self.subs = list(subs)
        if not self.subs:
            raise ValueError("no active subregions to exchange between")
        pad = self.subs[0].pad
        if any(s.pad != pad for s in self.subs):
            raise ValueError("all subregions must share the same pad width")
        self.pad = pad
        self._by_rank = {s.block.rank: s for s in self.subs}
        self.plans = {
            s.block.rank: build_plan(decomp, s.block.rank, pad)
            for s in self.subs
        }
        #: per-edge seam converters keyed ``(dst_rank, src_rank)`` (see
        #: :func:`repro.fluids.coupling.build_converters`); edges listed
        #: here are *skipped* by :meth:`exchange` — their ghost strips
        #: are translated once per step by :meth:`exchange_seam` instead.
        self.converters = dict(converters or {})

    def exchange(
        self,
        field_names: Sequence[str],
        axes: Sequence[int] | None = None,
        fields_by_rank=None,
    ) -> None:
        """Run one full ghost exchange of the named fields.

        All subregions advance together, axis by axis: every axis-``d``
        copy reads interior strips (plus ghost columns refreshed by
        earlier passes), so there is no read/write hazard within an
        axis.  The extended sweep (see :func:`sweep_axes`) is used
        whenever the decomposition has inactive blocks; ``axes``
        overrides the sweep (in sweep order) for callers that have
        already applied a local prefix via :meth:`exchange_local`.

        ``fields_by_rank`` (hybrid runs) overrides ``field_names`` per
        subregion — each method exchanges its own representation with
        its same-method neighbours; mixed-method edges have a converter
        installed and are skipped here (seam strips are refreshed by
        :meth:`exchange_seam` before the step's first compute phase).
        """
        if axes is None:
            extended = self.decomp.n_active < self.decomp.n_blocks
            axes = sweep_axes(self.decomp.ndim, extended)
        converters = self.converters
        for axis in axes:
            for sub in self.subs:
                rank = sub.block.rank
                fields = (
                    field_names if fields_by_rank is None
                    else fields_by_rank[rank]
                )
                if not fields:
                    continue
                plan = self.plans[rank]
                for op in plan.ops_for_axis(axis):
                    if (
                        op.kind == "recv"
                        and (rank, op.neighbor_rank) in converters
                    ):
                        continue
                    self._apply(sub, op, fields)

    def exchange_seam(self, axes: Sequence[int] | None = None) -> None:
        """Translate every mixed-method ghost strip (once per step).

        Runs the same axis sweep as :meth:`exchange`; for each seam
        edge the neighbour's send strip of *its* representation (the
        converter's ``wire_fields``) is handed to the converter, which
        writes this subregion's ghost strip — populations rebuilt from
        ``rho, V`` on an LB side, moments taken on an FD side.  Writes
        touch only ghost strips while reads come from interior send
        strips (plus this subregion's own strip for the gradient
        stencils), so within an axis there is no read/write hazard, and
        later axes see earlier axes' translated corners exactly like
        the regular sweep.
        """
        if not self.converters:
            return
        if axes is None:
            extended = self.decomp.n_active < self.decomp.n_blocks
            axes = sweep_axes(self.decomp.ndim, extended)
        for axis in axes:
            for sub in self.subs:
                rank = sub.block.rank
                plan = self.plans[rank]
                for op in plan.ops_for_axis(axis):
                    if op.kind != "recv":
                        continue
                    if (rank, op.neighbor_rank) not in self.converters:
                        continue
                    self.apply_seam(rank, op)

    def apply_seam(self, rank: int, op: EdgeOp) -> None:
        """Translate one seam edge's ghost strip (graph executor entry).

        ``op`` must be a ``recv`` operation of ``rank`` whose edge has
        a converter installed; the neighbour's send strip of *its*
        representation is handed to the converter exactly as one
        iteration of :meth:`exchange_seam` would.
        """
        sub = self._by_rank[rank]
        conv = self.converters[(rank, op.neighbor_rank)]
        src = self._by_rank[op.neighbor_rank]
        src_op = self._matching_send(op, rank)
        assert src_op.send_slices is not None
        payload = {
            name: src.fields[name][(...,) + src_op.send_slices]
            for name in conv.wire_fields
        }
        conv.convert(sub, op.recv_slices, payload)

    def apply_op(
        self, rank: int, op: EdgeOp, field_names: Sequence[str]
    ) -> None:
        """Apply one edge operation of one subregion's plan.

        The per-node entry point of the dependency-driven executor
        (:mod:`repro.graph.executor`): the planner's dependency edges
        guarantee the same read/write ordering the full axis sweep of
        :meth:`exchange` enforces with its loop structure.
        """
        self._apply(self._by_rank[rank], op, field_names)

    def _matching_send(self, op: EdgeOp, my_rank: int) -> EdgeOp:
        """The neighbour's send op that feeds my recv op."""
        src_plan = self.plans[op.neighbor_rank]
        return next(
            o
            for o in src_plan.ops_for_axis(op.axis)
            if o.side == -op.side and o.kind == "recv"
            and o.neighbor_rank == my_rank
        )

    def exchange_local(
        self, rank: int, axes: Sequence[int], field_names: Sequence[str]
    ) -> None:
        """Apply one subregion's ghost fills for neighbourless axes.

        Only ``replicate``/``hold`` operations are legal here — they
        read and write this subregion's own arrays exclusively, so a
        per-subregion worker thread can run them without synchronizing
        (the threaded runner uses this to skip the exchange barrier for
        single-block axes).
        """
        sub = self._by_rank[rank]
        plan = self.plans[rank]
        for axis in axes:
            for op in plan.ops_for_axis(axis):
                if op.kind == "recv":
                    raise ValueError(
                        f"axis {axis} has a neighbour exchange; it cannot "
                        "be applied thread-locally"
                    )
                self._apply(sub, op, field_names)

    def _apply(
        self, sub: SubregionState, op: EdgeOp, field_names: Sequence[str]
    ) -> None:
        if op.kind == "hold":
            return
        if op.kind == "replicate":
            extent = sub.block.shape[op.axis]
            for name in field_names:
                _replicate_edge(sub.fields[name], op, self.pad, extent)
            return
        src = self._by_rank[op.neighbor_rank]
        # The strip I receive is the neighbour's matching send strip.
        src_op = self._matching_send(op, sub.block.rank)
        assert src_op.send_slices is not None
        for name in field_names:
            sub.fields[name][(...,) + op.recv_slices] = src.fields[name][
                (...,) + src_op.send_slices
            ]

    def message_bytes(
        self, rank: int, values_per_node: int, itemsize: int = 8
    ) -> dict[int, int]:
        """Bytes this rank sends to each neighbour per exchange.

        Used for traffic accounting against the shared-bus Ethernet
        model; ``values_per_node`` is the per-node payload of §6
        (3 values in 2D for both methods, 4 for FD / 5 for LB in 3D).
        """
        sub = self._by_rank[rank]
        out: dict[int, int] = {}
        for op in self.plans[rank].recv_ops():
            assert op.send_slices is not None
            n = 1
            for d, sl in enumerate(op.send_slices):
                start, stop, _ = sl.indices(sub.padded_shape[d])
                n *= stop - start
            out[op.neighbor_rank] = (
                out.get(op.neighbor_rank, 0) + n * values_per_node * itemsize
            )
        return out
