"""The compute/communicate cycle (paper §3) and the simulation facade.

A local interaction problem is solved in parallel by repeating

* *calculate* the new state of the interior of the subregion, then
* *communicate* boundary information with the neighbouring subregions,

and a numerical method plugs into this loop as a sequence of compute
phases separated by ghost exchanges.  The per-step structure of the two
methods of the paper (§6) maps onto the protocol as::

    finite differences                 lattice Boltzmann
    ------------------------------     -----------------------------
    compute_phase 0: update Vx,Vy      compute_phase 0: relax F
    exchange       : Vx, Vy            exchange       : F
    compute_phase 1: update rho        finalize_step  : shift F,
    exchange       : rho                                macro, filter
    finalize_step  : filter

so FD exchanges two messages per step per neighbour and LB one, exactly
the counts whose performance consequences §7 measures.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from ..trace import NULL_TRACER
from .decomposition import Decomposition
from .exchange import LocalExchanger
from .subregion import SubregionState, assemble_global, make_subregions

__all__ = ["ExplicitMethod", "Simulation"]


@runtime_checkable
class ExplicitMethod(Protocol):
    """An explicit (local interaction) time-marching method.

    Attributes
    ----------
    pad:
        Ghost width the method requires (3 for both paper methods: reach
        1 for updates/streaming, reach 2 for the fourth-order filter, and
        one extra ring so that ring-1 ghosts can be re-filtered locally
        instead of costing a third message).
    field_names:
        All padded fields the method evolves.
    exchange_phases:
        ``exchange_phases[i]`` are the field names exchanged after
        ``compute_phase(sub, i)``; its length is the number of messages
        per step per neighbour (2 for FD, 1 for LB — §6).
    """

    pad: int
    field_names: tuple[str, ...]
    exchange_phases: tuple[tuple[str, ...], ...]

    def init_subregion(self, sub: SubregionState) -> None:
        """Allocate method-private fields on a fresh subregion."""

    def compute_phase(self, sub: SubregionState, phase: int) -> None:
        """Run compute phase ``phase`` on the subregion interior."""

    def finalize_step(self, sub: SubregionState) -> None:
        """Finish the step after the last exchange (filtering etc.)."""


def _bind_backend(method, backend: str | None) -> None:
    """Bind a kernel backend onto a method that supports one.

    Runners accept a ``backend`` name so the selection threads from
    settings/CLI down to the kernels; methods without pluggable kernels
    (the protocol does not require them) reject a non-default request
    instead of silently ignoring it.
    """
    if not backend:
        return
    set_backend = getattr(method, "set_backend", None)
    if set_backend is None:
        raise ValueError(
            f"method {type(method).__name__} does not support kernel "
            f"backends (requested {backend!r})"
        )
    set_backend(backend)


class Simulation:
    """Decompose a global initial state and march it in time.

    This is the in-process counterpart of the full distributed system:
    the *initialization program* output is ``global_fields``, the
    *decomposition program* is :func:`make_subregions`, and stepping all
    subregions with a :class:`LocalExchanger` performs the same
    calculation — bit for bit — as the socket-distributed runtime, which
    reuses the same method kernels and exchange plans.

    Parameters
    ----------
    method:
        An :class:`ExplicitMethod` (``repro.fluids.FDMethod2D`` etc.).
    decomp:
        The domain decomposition; use ``blocks=(1, 1)`` for a serial run.
    global_fields:
        Initial global arrays keyed by the method's field names (fields
        the method allocates itself, e.g. LB populations initialized
        from the macroscopic state, may be omitted).
    solid:
        Optional global solid-wall mask.
    tracer:
        A :class:`repro.trace.Tracer` recording one span per compute
        phase, ghost exchange and finalize; defaults to the no-op
        :data:`~repro.trace.NULL_TRACER` (span names are precomputed so
        the disabled path stays allocation-free).
    backend:
        Optional kernel-backend name bound onto the method via
        ``method.set_backend`` (see :mod:`repro.fluids.backends`).
    """

    def __init__(
        self,
        method: ExplicitMethod,
        decomp: Decomposition,
        global_fields: Mapping[str, np.ndarray],
        solid: np.ndarray | None = None,
        tracer=NULL_TRACER,
        backend: str | None = None,
    ) -> None:
        _bind_backend(method, backend)
        self.method = method
        self.decomp = decomp
        self.tracer = tracer
        self._compute_names = tuple(
            f"compute:{i}" for i in range(len(method.exchange_phases))
        )
        self._exchange_names = tuple(
            f"exchange:{i}" for i in range(len(method.exchange_phases))
        )
        self.subs = make_subregions(decomp, method.pad, global_fields, solid)
        if not self.subs:
            raise ValueError("decomposition has no active subregions")
        for sub in self.subs:
            method.init_subregion(sub)
        self.exchanger = LocalExchanger(decomp, self.subs)
        # A freshly decomposed state has exact ghosts, but method-private
        # fields were initialized per-subregion; exchange everything once
        # so the first step starts from a consistent padded state.
        self.exchanger.exchange(method.field_names)

    @property
    def step_count(self) -> int:
        return self.subs[0].step

    def step(self, n: int = 1) -> None:
        """Advance every subregion ``n`` integration steps."""
        method = self.method
        tracer = self.tracer
        compute_names = self._compute_names
        exchange_names = self._exchange_names
        for _ in range(n):
            step_no = self.subs[0].step
            for phase, fields in enumerate(method.exchange_phases):
                t0 = tracer.begin()
                for sub in self.subs:
                    method.compute_phase(sub, phase)
                tracer.end(compute_names[phase], t0, step=step_no)
                t0 = tracer.begin()
                self.exchanger.exchange(fields)
                tracer.end(exchange_names[phase], t0, step=step_no)
            t0 = tracer.begin()
            for sub in self.subs:
                method.finalize_step(sub)
                sub.step += 1
            tracer.end("finalize:0", t0, step=step_no)

    def global_field(self, name: str, fill: float = 0.0) -> np.ndarray:
        """Reassemble a global array from the subregion interiors."""
        return assemble_global(self.decomp, self.subs, name, fill)

    def global_state(self) -> dict[str, np.ndarray]:
        """All method fields reassembled into global arrays."""
        return {
            name: self.global_field(name) for name in self.method.field_names
        }

    def global_diagnostics(self, algorithm: str = "tree"):
        """Globally reduced mass / kinetic energy / max |V| right now.

        Runs the same collective schedules as a distributed run's
        in-flight diagnostics, interleaved co-operatively in this
        thread over the in-process backend, so the returned
        :class:`~repro.distrib.diagnostics.DiagRecord` is bit-for-bit
        what the workers of an equivalent distributed run would log.
        """
        from ..distrib.diagnostics import serial_diagnostics

        return serial_diagnostics(self.subs, algorithm=algorithm)

    # ------------------------------------------------------------------
    # checkpointing (the in-process face of the §4.1 dump files)
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Write every subregion as a dump file (one per rank).

        The same format the distributed runtime checkpoints and
        migrates with; :meth:`resume` restores the run bit-exactly.
        """
        from ..distrib.dumpfile import dump_path, save_dump

        for sub in self.subs:
            save_dump(sub, dump_path(directory, sub.block.rank))

    def resume(self, directory) -> None:
        """Restore the simulation state saved by :meth:`save`.

        The decomposition and method must match the saved run; ghost
        values are part of the dump, so stepping continues bit-exactly
        from the saved step (asserted by the test suite).
        """
        from ..distrib.dumpfile import dump_path, load_dump

        restored = []
        for sub in self.subs:
            back = load_dump(dump_path(directory, sub.block.rank))
            if back.block != sub.block:
                raise ValueError(
                    f"dump for rank {sub.block.rank} covers block "
                    f"{back.block.index}, expected {sub.block.index}"
                )
            self.method.init_subregion(back)
            restored.append(back)
        self.subs = restored
        self.exchanger = LocalExchanger(self.decomp, self.subs)
