"""The compute/communicate cycle (paper §3) and the simulation facade.

A local interaction problem is solved in parallel by repeating

* *calculate* the new state of the interior of the subregion, then
* *communicate* boundary information with the neighbouring subregions,

and a numerical method plugs into this loop as a sequence of compute
phases separated by ghost exchanges.  The per-step structure of the two
methods of the paper (§6) maps onto the protocol as::

    finite differences                 lattice Boltzmann
    ------------------------------     -----------------------------
    compute_phase 0: update Vx,Vy      compute_phase 0: relax F
    exchange       : Vx, Vy            exchange       : F
    compute_phase 1: update rho        finalize_step  : shift F,
    exchange       : rho                                macro, filter
    finalize_step  : filter

so FD exchanges two messages per step per neighbour and LB one, exactly
the counts whose performance consequences §7 measures.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from ..trace import NULL_TRACER
from .decomposition import Decomposition
from .exchange import LocalExchanger
from .subregion import SubregionState, assemble_global, make_subregions

__all__ = ["ExplicitMethod", "Simulation", "common_field_names"]


@runtime_checkable
class ExplicitMethod(Protocol):
    """An explicit (local interaction) time-marching method.

    Attributes
    ----------
    pad:
        Ghost width the method requires (3 for both paper methods: reach
        1 for updates/streaming, reach 2 for the fourth-order filter, and
        one extra ring so that ring-1 ghosts can be re-filtered locally
        instead of costing a third message).
    field_names:
        All padded fields the method evolves.
    exchange_phases:
        ``exchange_phases[i]`` are the field names exchanged after
        ``compute_phase(sub, i)``; its length is the number of messages
        per step per neighbour (2 for FD, 1 for LB — §6).
    """

    pad: int
    field_names: tuple[str, ...]
    exchange_phases: tuple[tuple[str, ...], ...]

    def init_subregion(self, sub: SubregionState) -> None:
        """Allocate method-private fields on a fresh subregion."""

    def compute_phase(self, sub: SubregionState, phase: int) -> None:
        """Run compute phase ``phase`` on the subregion interior."""

    def finalize_step(self, sub: SubregionState) -> None:
        """Finish the step after the last exchange (filtering etc.)."""


def _normalize_methods(method, decomp, converters):
    """``(methods_per_rank, single_or_None)`` from a method or sequence.

    A scalar method (or a sequence repeating one instance) runs the
    historical uniform path; a genuinely mixed sequence is a *hybrid*
    run and must come with the seam converters that translate its
    mixed-method edges (see :mod:`repro.fluids.coupling`).
    """
    if isinstance(method, (list, tuple)):
        methods = list(method)
        if len(methods) != decomp.n_active:
            raise ValueError(
                f"{len(methods)} methods for {decomp.n_active} active ranks"
            )
    else:
        methods = [method] * decomp.n_active
    if len({m.pad for m in methods}) != 1:
        raise ValueError(
            "per-rank methods must share one ghost width; construct them "
            "with a common pad override (ProblemSpec.build_methods does)"
        )
    single = methods[0] if len(set(map(id, methods))) == 1 else None
    names = {m.method_name for m in methods if hasattr(m, "method_name")}
    if single is None and len(names) > 1 and not converters:
        raise ValueError(
            "mixed-method runs need seam converters; build them with "
            "repro.fluids.coupling.build_converters"
        )
    return methods, single


def _phase_field_maps(subs, methods, nphases):
    """Per-phase ``{rank: fields}`` maps; idling methods get ``()``."""
    return [
        {
            s.block.rank: (
                m.exchange_phases[p] if p < len(m.exchange_phases) else ()
            )
            for s, m in zip(subs, methods)
        }
        for p in range(nphases)
    ]


def common_field_names(methods) -> tuple[str, ...]:
    """Fields every method evolves, in the first method's order."""
    names = list(methods[0].field_names)
    for m in methods[1:]:
        names = [n for n in names if n in m.field_names]
    return tuple(names)


def _bind_backend(method, backend: str | None) -> None:
    """Bind a kernel backend onto a method that supports one.

    Runners accept a ``backend`` name so the selection threads from
    settings/CLI down to the kernels; methods without pluggable kernels
    (the protocol does not require them) reject a non-default request
    instead of silently ignoring it.
    """
    if not backend:
        return
    set_backend = getattr(method, "set_backend", None)
    if set_backend is None:
        raise ValueError(
            f"method {type(method).__name__} does not support kernel "
            f"backends (requested {backend!r})"
        )
    set_backend(backend)


class Simulation:
    """Decompose a global initial state and march it in time.

    This is the in-process counterpart of the full distributed system:
    the *initialization program* output is ``global_fields``, the
    *decomposition program* is :func:`make_subregions`, and stepping all
    subregions with a :class:`LocalExchanger` performs the same
    calculation — bit for bit — as the socket-distributed runtime, which
    reuses the same method kernels and exchange plans.

    Parameters
    ----------
    method:
        An :class:`ExplicitMethod` (``repro.fluids.FDMethod2D`` etc.).
    decomp:
        The domain decomposition; use ``blocks=(1, 1)`` for a serial run.
    global_fields:
        Initial global arrays keyed by the method's field names (fields
        the method allocates itself, e.g. LB populations initialized
        from the macroscopic state, may be omitted).
    solid:
        Optional global solid-wall mask.
    tracer:
        A :class:`repro.trace.Tracer` recording one span per compute
        phase, ghost exchange and finalize; defaults to the no-op
        :data:`~repro.trace.NULL_TRACER` (span names are precomputed so
        the disabled path stays allocation-free).
    backend:
        Optional kernel-backend name bound onto the method via
        ``method.set_backend`` (see :mod:`repro.fluids.backends`).
    """

    def __init__(
        self,
        method,
        decomp: Decomposition,
        global_fields: Mapping[str, np.ndarray],
        solid: np.ndarray | None = None,
        tracer=NULL_TRACER,
        backend: str | None = None,
        converters=None,
    ) -> None:
        methods, single = _normalize_methods(method, decomp, converters)
        for m in dict.fromkeys(methods):
            _bind_backend(m, backend)
        self.methods = methods
        self.method = single
        self.decomp = decomp
        self.tracer = tracer
        self._converters = dict(converters or {})
        nphases = max(len(m.exchange_phases) for m in methods)
        self._nphases = nphases
        self._compute_names = tuple(f"compute:{i}" for i in range(nphases))
        self._exchange_names = tuple(f"exchange:{i}" for i in range(nphases))
        pad = methods[0].pad
        self.subs = make_subregions(decomp, pad, global_fields, solid)
        if not self.subs:
            raise ValueError("decomposition has no active subregions")
        for sub, m in zip(self.subs, self.methods):
            m.init_subregion(sub)
        self.exchanger = LocalExchanger(decomp, self.subs, self._converters)
        self._phase_fields = _phase_field_maps(self.subs, self.methods, nphases)
        # A freshly decomposed state has exact ghosts, but method-private
        # fields were initialized per-subregion; exchange everything once
        # so the first step starts from a consistent padded state.
        if single is not None:
            self.exchanger.exchange(single.field_names)
        else:
            self.exchanger.exchange(
                (),
                fields_by_rank={
                    s.block.rank: m.field_names
                    for s, m in zip(self.subs, self.methods)
                },
            )
            self.exchanger.exchange_seam()

    @property
    def step_count(self) -> int:
        return self.subs[0].step

    def step(self, n: int = 1) -> None:
        """Advance every subregion ``n`` integration steps."""
        if self.method is None:
            self._step_hybrid(n)
            return
        method = self.method
        tracer = self.tracer
        compute_names = self._compute_names
        exchange_names = self._exchange_names
        for _ in range(n):
            step_no = self.subs[0].step
            for phase, fields in enumerate(method.exchange_phases):
                t0 = tracer.begin()
                for sub in self.subs:
                    method.compute_phase(sub, phase)
                tracer.end(compute_names[phase], t0, step=step_no)
                t0 = tracer.begin()
                self.exchanger.exchange(fields)
                tracer.end(exchange_names[phase], t0, step=step_no)
            t0 = tracer.begin()
            for sub in self.subs:
                method.finalize_step(sub)
                sub.step += 1
            tracer.end("finalize:0", t0, step=step_no)

    def _step_hybrid(self, n: int) -> None:
        """Mixed-method cycle: seam translation, then the padded schedule.

        Seam ghost strips are translated once per step *before* the
        first compute phase — both sides convert time-``t`` state (the
        LB side needs the FD velocity before the in-place momentum
        update overwrites it).  The phase loop runs to the longest
        method's phase count; a method with fewer phases idles, and
        each method exchanges only its own representation with its
        same-method neighbours (seam edges are skipped — the converter
        already refreshed them).
        """
        tracer = self.tracer
        methods = self.methods
        subs = self.subs
        for _ in range(n):
            step_no = subs[0].step
            t0 = tracer.begin()
            self.exchanger.exchange_seam()
            tracer.end("seam:0", t0, step=step_no)
            for phase in range(self._nphases):
                t0 = tracer.begin()
                for sub, m in zip(subs, methods):
                    if phase < len(m.exchange_phases):
                        m.compute_phase(sub, phase)
                tracer.end(self._compute_names[phase], t0, step=step_no)
                t0 = tracer.begin()
                self.exchanger.exchange(
                    (), fields_by_rank=self._phase_fields[phase]
                )
                tracer.end(self._exchange_names[phase], t0, step=step_no)
            t0 = tracer.begin()
            for sub, m in zip(subs, methods):
                m.finalize_step(sub)
                sub.step += 1
            tracer.end("finalize:0", t0, step=step_no)

    def global_field(self, name: str, fill: float = 0.0) -> np.ndarray:
        """Reassemble a global array from the subregion interiors."""
        return assemble_global(self.decomp, self.subs, name, fill)

    def global_state(self) -> dict[str, np.ndarray]:
        """All method fields reassembled into global arrays.

        A hybrid run reassembles the fields every method evolves (the
        macroscopic ``rho, V``); method-private fields like the LB
        populations exist only on their own subregions.
        """
        names = (
            self.method.field_names
            if self.method is not None
            else common_field_names(self.methods)
        )
        return {name: self.global_field(name) for name in names}

    def global_diagnostics(self, algorithm: str = "tree"):
        """Globally reduced mass / kinetic energy / max |V| right now.

        Runs the same collective schedules as a distributed run's
        in-flight diagnostics, interleaved co-operatively in this
        thread over the in-process backend, so the returned
        :class:`~repro.distrib.diagnostics.DiagRecord` is bit-for-bit
        what the workers of an equivalent distributed run would log.
        """
        from ..distrib.diagnostics import serial_diagnostics

        return serial_diagnostics(self.subs, algorithm=algorithm)

    # ------------------------------------------------------------------
    # checkpointing (the in-process face of the §4.1 dump files)
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Write every subregion as a dump file (one per rank).

        The same format the distributed runtime checkpoints and
        migrates with; :meth:`resume` restores the run bit-exactly.
        """
        from ..distrib.dumpfile import dump_path, save_dump

        for sub in self.subs:
            save_dump(sub, dump_path(directory, sub.block.rank))

    def resume(self, directory) -> None:
        """Restore the simulation state saved by :meth:`save`.

        The decomposition and method must match the saved run; ghost
        values are part of the dump, so stepping continues bit-exactly
        from the saved step (asserted by the test suite).
        """
        from ..distrib.dumpfile import dump_path, load_dump

        restored = []
        for sub, m in zip(self.subs, self.methods):
            back = load_dump(dump_path(directory, sub.block.rank))
            if back.block != sub.block:
                raise ValueError(
                    f"dump for rank {sub.block.rank} covers block "
                    f"{back.block.index}, expected {sub.block.index}"
                )
            m.init_subregion(back)
            restored.append(back)
        self.subs = restored
        self.exchanger = LocalExchanger(
            self.decomp, self.subs, self._converters
        )
