"""The paper's contribution: a local-interaction parallel runtime.

Decomposition geometry (§§2-3), padded subregions and ghost exchange
(§4.2), the compute/communicate cycle (§3) and the theoretical model of
parallel efficiency (§8).
"""

from .decomposition import Block, Decomposition, paper_m_table
from .efficiency import (
    EfficiencyModel,
    OverheadEfficiencyModel,
    efficiency_eq17,
    efficiency_eq18,
    efficiency_eq20,
    efficiency_eq21,
    surface_nodes,
    t_calc,
    t_com_point_to_point,
    t_com_shared_bus,
    utilization,
)
from .exchange import EdgeOp, ExchangePlan, LocalExchanger, build_plan
from .runner import ExplicitMethod, Simulation
from .stencil import Stencil, full_stencil, max_unsync_steps, star_stencil
from .threaded import ThreadedSimulation
from .subregion import SubregionState, assemble_global, make_subregions

__all__ = [
    "Block",
    "Decomposition",
    "paper_m_table",
    "EfficiencyModel",
    "OverheadEfficiencyModel",
    "efficiency_eq17",
    "efficiency_eq18",
    "efficiency_eq20",
    "efficiency_eq21",
    "surface_nodes",
    "t_calc",
    "t_com_point_to_point",
    "t_com_shared_bus",
    "utilization",
    "EdgeOp",
    "ExchangePlan",
    "LocalExchanger",
    "build_plan",
    "ExplicitMethod",
    "Simulation",
    "ThreadedSimulation",
    "Stencil",
    "full_stencil",
    "star_stencil",
    "max_unsync_steps",
    "SubregionState",
    "assemble_global",
    "make_subregions",
]
