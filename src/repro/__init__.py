"""repro — reproduction of Skordos (HPDC 1995).

Parallel simulation of subsonic fluid dynamics on a cluster of
workstations: domain-decomposed explicit finite differences and lattice
Boltzmann solvers, a TCP/IP-distributed runtime with automatic process
migration, a discrete-event cluster simulator reproducing the paper's
efficiency measurements, and the theoretical efficiency model.
"""

from . import cluster, core, distrib, fluids, harness, net, viz

__version__ = "1.0.0"

__all__ = [
    "core",
    "fluids",
    "net",
    "distrib",
    "cluster",
    "harness",
    "viz",
    "__version__",
]
