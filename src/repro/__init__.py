"""repro — reproduction of Skordos (HPDC 1995).

Parallel simulation of subsonic fluid dynamics on a cluster of
workstations: domain-decomposed explicit finite differences and lattice
Boltzmann solvers, a TCP/IP-distributed runtime with automatic process
migration and adaptive load rebalancing (:mod:`repro.balance`), a
discrete-event cluster simulator reproducing the paper's efficiency
measurements, and the theoretical efficiency model.

The one-call entry point is :func:`repro.run`, which marches a
:class:`~repro.distrib.ProblemSpec` on any of the backends and
returns a :class:`repro.RunResult`; :mod:`repro.trace` is the
phase-level tracing layer shared by all of them,
:mod:`repro.graph` plans each run as an explicit task DAG and drives
it dependency-first (no step barrier), and :mod:`repro.serve` turns
the same machinery into a multi-tenant simulation service (job queue,
result cache, live cluster view).
"""

from . import balance, chaos, cluster, core, distrib, fluids, graph, \
    harness, net, serve, trace, viz
from .facade import BACKENDS, RunResult, run

__version__ = "1.5.0"

__all__ = [
    "core",
    "fluids",
    "net",
    "distrib",
    "cluster",
    "balance",
    "chaos",
    "graph",
    "harness",
    "serve",
    "trace",
    "viz",
    "run",
    "RunResult",
    "BACKENDS",
    "__version__",
]
