"""Simulated workstations: machine models and external load (§5, §7).

The cluster is *non-dedicated*: besides the niced parallel subprocess, a
workstation may run its regular user's interactive programs or another
full-time job.  A piecewise-constant load trace emulates the `uptime`
numbers; the parallel subprocess's effective speed scales as
``1 / (1 + load)`` (a fair-share scheduler splitting cycles between the
parallel job and ``load`` competing full-time processes).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from .calibration import node_speed

__all__ = ["LoadTrace", "SimHost", "paper_sim_cluster"]


@dataclass(frozen=True)
class LoadTrace:
    """Piecewise-constant external CPU load over simulated time.

    ``points`` are ``(time, load)`` change events sorted by time; the
    load before the first point is 0 (idle workstation).
    """

    points: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise ValueError("load trace times must be sorted")
        if any(l < 0 for _, l in self.points):
            raise ValueError("loads must be non-negative")

    def load_at(self, t: float) -> float:
        """External CPU load at simulated time ``t``."""
        idx = bisect.bisect_right([p[0] for p in self.points], t) - 1
        return self.points[idx][1] if idx >= 0 else 0.0

    @classmethod
    def busy_from(cls, t: float, load: float = 2.0) -> "LoadTrace":
        """A user starts a full-time job at time ``t`` (load > 1.5
        triggers migration)."""
        return cls(points=((t, load),))


@dataclass
class SimHost:
    """One simulated workstation."""

    name: str
    model: str = "715/50"
    trace: LoadTrace = field(default_factory=LoadTrace)
    rank: int | None = None  # parallel subprocess currently hosted

    def speed(self, method: str, ndim: int, t: float) -> float:
        """Effective nodes/second for the niced parallel subprocess."""
        base = node_speed(method, ndim, self.model)
        return base / (1.0 + self.trace.load_at(t))

    def load_at(self, t: float) -> float:
        """This host's external load at simulated time ``t``."""
        return self.trace.load_at(t)


def paper_sim_cluster(
    traces: dict[str, LoadTrace] | None = None,
) -> list[SimHost]:
    """The 25-host cluster of §7 (16 x 715/50, 6 x 720, 3 x 710).

    Hosts are ordered by the submit program's preference (fastest model
    first), so assigning ranks 0..P-1 to the first P hosts reproduces
    the paper's "choose 715 models first" strategy.
    """
    traces = traces or {}
    hosts = []
    for i in range(16):
        name = f"hp715-{i:02d}"
        hosts.append(
            SimHost(name, "715/50", traces.get(name, LoadTrace()))
        )
    for i in range(6):
        name = f"hp720-{i:02d}"
        hosts.append(SimHost(name, "720", traces.get(name, LoadTrace())))
    for i in range(3):
        name = f"hp710-{i:02d}"
        hosts.append(SimHost(name, "710", traces.get(name, LoadTrace())))
    return hosts
