"""A minimal discrete-event engine (heap scheduler).

The cluster simulator advances simulated time through a priority queue
of ``(time, sequence, callback)`` events.  The monotonically increasing
sequence number makes simultaneous events fire in scheduling order, so
every simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(
        self, time: float, callback: Callable[[float], None]
    ) -> None:
        """Run ``callback(time)`` at the given simulated time."""
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_after(
        self, delay: float, callback: Callable[[float], None]
    ) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule(self.now + delay, callback)

    def run(
        self,
        until: float = float("inf"),
        max_events: int = 50_000_000,
    ) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        while self._heap:
            time, _, callback = self._heap[0]
            if time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            if self.events_processed > max_events:
                raise RuntimeError(
                    f"event budget exceeded ({max_events}); runaway "
                    "simulation?"
                )
            callback(time)

    @property
    def empty(self) -> bool:
        return not self._heap
