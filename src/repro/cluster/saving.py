"""Sharing the network and the file server during state saves (§5.2).

"When all the parallel processes save their state on disk at
approximately the same time (a couple of megabytes per process), it is
very easy to saturate both the network and the file server.  In order
to avoid this situation, we impose the constraint that the parallel
processes must save their state one after the other in an orderly
fashion, allowing sufficient time gaps between, so that other programs
can use the network and the file system.  Thus, a saving operation that
would take 30 seconds and monopolize the shared resources, now takes
60-90 seconds but leaves free time slots for other programs."

This model quantifies that trade-off on the shared-bus abstraction:
a save is a bulk transfer of each process's dump to the file server.

* *Simultaneous*: every process offers its dump at once; the bus
  serializes them back to back.  Total time is minimal, but the medium
  is continuously busy for the whole interval — the "frozen network"
  other users experience.
* *Staggered*: processes save in rank order with a free gap after each
  transfer.  The save takes longer end to end, but the longest
  continuous busy stretch is a single dump, and a guaranteed fraction
  of the interval is free for other users.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SavePlan", "simultaneous_save", "staggered_save"]


@dataclass(frozen=True)
class SavePlan:
    """Outcome of one cluster-wide state save.

    Attributes
    ----------
    total_time:
        Seconds from the first byte offered to the last byte stored.
    max_busy_stretch:
        Longest continuous interval the shared medium is occupied —
        the duration for which the network appears "frozen" to its
        other users.
    free_fraction:
        Fraction of ``total_time`` during which the medium is idle and
        available to other programs.
    per_process:
        ``(start, finish)`` of each process's transfer.
    """

    total_time: float
    max_busy_stretch: float
    free_fraction: float
    per_process: tuple[tuple[float, float], ...]


def _transfer_time(nbytes: float, bandwidth: float) -> float:
    if nbytes <= 0 or bandwidth <= 0:
        raise ValueError("bytes and bandwidth must be positive")
    return nbytes / bandwidth


def simultaneous_save(
    n_procs: int, dump_bytes: float, bandwidth: float
) -> SavePlan:
    """All processes dump at once; the bus serializes them back to back."""
    if n_procs < 1:
        raise ValueError("need at least one process")
    t = _transfer_time(dump_bytes, bandwidth)
    spans = []
    clock = 0.0
    for _ in range(n_procs):
        spans.append((clock, clock + t))
        clock += t
    total = clock
    return SavePlan(
        total_time=total,
        max_busy_stretch=total,  # continuous occupation
        free_fraction=0.0,
        per_process=tuple(spans),
    )


def staggered_save(
    n_procs: int,
    dump_bytes: float,
    bandwidth: float,
    gap_fraction: float = 1.0,
) -> SavePlan:
    """Rank-ordered saves with a free gap after each transfer.

    ``gap_fraction`` is the idle time inserted after each dump, as a
    fraction of the dump's transfer time; 1.0 (equal work and gap)
    doubles the elapsed time — the paper's 30 s -> 60-90 s — while
    halving the bus occupancy seen by other users.
    """
    if n_procs < 1:
        raise ValueError("need at least one process")
    if gap_fraction < 0:
        raise ValueError("gap_fraction must be >= 0")
    t = _transfer_time(dump_bytes, bandwidth)
    gap = gap_fraction * t
    spans = []
    clock = 0.0
    for i in range(n_procs):
        spans.append((clock, clock + t))
        clock += t
        if i != n_procs - 1:
            clock += gap
    total = clock
    busy = n_procs * t
    return SavePlan(
        total_time=total,
        max_busy_stretch=t,
        free_fraction=max(0.0, 1.0 - busy / total) if total > 0 else 0.0,
        per_process=tuple(spans),
    )
