"""Discrete-event simulation of a distributed run on the 1994 cluster.

Replays the compute/communicate timeline of a decomposed computation
against the paper's hardware constants: per-model node speeds (§7
table), the shared-bus Ethernet (§7-§9), per-message overhead, external
user load, and the migration machinery of §5.  This is the substitution
for the 25 non-dedicated HP workstations (see DESIGN.md): it produces
the parallel efficiency and speedup measurements of figs. 5-11, with the
measurement protocol of §7 (average the time per integration step over
the last 20 steps).

Each simulated process cycles through the method's phases: compute a
fraction of its per-step work, transmit one message per neighbour on the
bus (blocking — communication does not overlap computation, the §8
assumption that held on the paper's CPU-driven TCP stacks), and proceed
once the matching strips of its own step/phase have arrived.  In the
default ``"bsp"`` sync mode processes begin each computational cycle
together, so every step opens with a synchronized burst on the bus and
contention grows with the number of processors — eq. 19's ``(P-1)`` law
emerges from message serialization rather than being assumed.  The
``"loose"`` mode lets neighbours drift apart up to the App. A bound
instead, an ablation quantifying what communication/computation overlap
or a switched network would buy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..chaos.plan import HOST_KINDS, MESSAGE_KINDS, PROCESS_KINDS, FaultPlan
from ..core.decomposition import Decomposition
from ..core.stencil import star_stencil
from ..trace import NULL_TRACER, Tracer
from .calibration import (
    bytes_per_boundary_node,
    MESSAGES_PER_STEP,
    node_speed,
)
from .ethernet import BusStats, SharedBus
from .events import EventQueue
from .machines import LoadTrace, SimHost, paper_sim_cluster

__all__ = [
    "NetworkParams",
    "SimResult",
    "MigrationEvent",
    "SimFaultEvent",
    "ClusterSimulation",
    "phase_fractions",
]

#: Fractions of the per-step compute done before each exchange (the rest
#: after the last exchange: filtering etc.).  FD: velocity update,
#: density update, then filter; LB: relax, then shift+macro+filter.
_PHASE_FRACTIONS = {
    "fd": (0.55, 0.25),
    "lb": (0.45,),
}


def phase_fractions(method_name: str) -> tuple[float, ...]:
    """Per-phase shares of one step's compute time for a method.

    ``phase_fractions(m)[p]`` is the fraction done before exchange
    ``p``; the remainder (``1 - sum``) is the post-exchange finalize
    (filtering etc.).  This is the cost split both the discrete-event
    simulator and the :mod:`repro.graph` planner charge per node.
    """
    return _PHASE_FRACTIONS[method_name]


@dataclass(frozen=True)
class NetworkParams:
    """Network parameters (defaults = the calibrated 1994 Ethernet).

    ``preset`` selects one of §9's technologies from
    :data:`repro.cluster.networks.NETWORK_PRESETS` (``"ethernet10"``,
    ``"switched10"``, ``"fddi100"``, ``"atm155"``), overriding the
    explicit fields; ``topology`` chooses ``"bus"`` (one shared medium)
    or ``"switch"`` (full-duplex per-host links) directly.
    """

    bandwidth: float = 1.25e6
    overhead: float = 1.0e-3
    collision_factor: float = 0.02
    error_wait_threshold: float = 2.0
    topology: str = "bus"
    preset: str | None = None


@dataclass
class MigrationEvent:
    """Record of one §5.1 migration in a simulated run."""

    time: float
    rank: int
    from_host: str
    to_host: str
    sync_step: int
    pause_duration: float


@dataclass
class SimFaultEvent:
    """Record of one injected fault in a simulated run.

    ``cost`` is the modeled group pause the fault charged at the BSP
    barrier (zero for load spikes, whose cost manifests through the
    slowed host and any migration it triggers).
    """

    time: float
    kind: str
    rank: int
    cost: float


@dataclass
class SimResult:
    """Outcome of one simulated distributed run."""

    processors: int
    nodes_per_proc: int
    steps: int
    elapsed: float
    time_per_step: float          # §7 window average
    serial_time_per_step: float   # T_1 on a dedicated 715/50
    bus: BusStats
    compute_time_total: float
    migrations: list[MigrationEvent] = field(default_factory=list)
    rebalances: list[tuple[float, list[int]]] = field(default_factory=list)
    faults: list[SimFaultEvent] = field(default_factory=list)
    collective_messages: int = 0   # diagnostics-collective frames
    collective_bytes: int = 0      # ... and their payload bytes
    collective_time: float = 0.0   # bus time the collectives occupied

    @property
    def speedup(self) -> float:
        """Eq. 5: ``S = T_1 / T_p``."""
        return self.serial_time_per_step / self.time_per_step

    @property
    def efficiency(self) -> float:
        """Eq. 5: ``f = S / P``."""
        return self.speedup / self.processors

    @property
    def utilization(self) -> float:
        """Fraction of processor-time spent computing (eq. 8)."""
        return self.compute_time_total / (self.processors * self.elapsed)


class _SimProc:
    """State machine of one simulated parallel subprocess."""

    __slots__ = (
        "rank", "host", "method", "fractions", "n_nodes", "neighbors",
        "msg_bytes", "sends", "expect",
        "step", "phase", "arrived", "waiting", "compute_time",
        "step_done_times", "paused_at", "wait_since",
    )

    def __init__(self, rank: int, host: SimHost, method: str,
                 n_nodes: int, neighbors: list[int],
                 msg_bytes: dict[int, int]):
        self.rank = rank
        self.host = host
        self.method = method
        self.fractions = _PHASE_FRACTIONS[method]
        self.n_nodes = n_nodes
        self.neighbors = neighbors
        self.msg_bytes = msg_bytes          # per-neighbour payload bytes
        self.sends: list[list[int]] = []    # per phase: ranks messaged
        self.expect: list[int] = []         # per phase: frames awaited
        self.step = 0
        self.phase = -1                     # -1 = between steps
        self.arrived: dict[tuple[int, int], int] = {}
        self.waiting: tuple[int, int] | None = None
        self.compute_time = 0.0
        self.step_done_times: list[float] = []
        self.paused_at: float | None = None
        self.wait_since = 0.0


class ClusterSimulation:
    """One simulated distributed computation.

    Parameters
    ----------
    method, ndim:
        ``"fd"`` or ``"lb"``, in 2 or 3 dimensions — selects node speed,
        payload size and message count from the §6/§7 calibration.  A
        *sequence* of names (one per dense active rank, e.g. from
        :meth:`repro.distrib.ProblemSpec.methods_by_rank`) models a
        hybrid run: each process computes at its own method's speed
        with its own phase count, mixed-method edges carry one seam
        message per direction per step at the opening exchange (the
        live runtime's pre-phase seam translation), and later phases
        message same-method neighbours only — exactly the wire pattern
        of the hybrid workers.
    blocks:
        Decomposition block counts, e.g. ``(5, 4)``.
    side:
        Subregion side length in nodes (the grain; ``N = side**ndim``).
    hosts:
        Workstations to draw from, ordered by assignment preference;
        defaults to the paper's 25-host cluster.  Ranks are placed on
        the first ``P`` hosts.
    network:
        Shared-bus parameters.
    sync_mode:
        ``"bsp"`` (default): processes begin each computational cycle
        together — §4.2 observes that the communication "encourages the
        processes to begin each computational cycle together with their
        neighbors", and with homogeneous per-step compute times the
        local near-synchronization becomes global, so every step opens
        with a synchronized burst of messages on the shared bus.  This
        is the regime the paper measured and modelled (``T_com``
        growing with the number of processors, eq. 19).
        ``"loose"``: processes run as far ahead as their neighbour
        dependencies allow (the App. A bound); bursts pipeline apart
        and bus contention largely disappears below saturation — an
        ablation showing what a switched network (or communication/
        computation overlap) would buy, cf. the paper's conclusion
        about Ethernet switches.
    trace_dir:
        When set, every simulated rank streams its spans (on the
        *simulated* clock) to ``trace-<rank>.jsonl`` under this
        directory and :meth:`run` merges them into ``trace.json`` —
        the same format the live runtimes produce, so simulated and
        measured timelines compare in the same viewer.
    fault_plan:
        A :class:`repro.chaos.FaultPlan` — the *same* JSON-serializable
        plan format the live runtime injects — modeled on simulated
        time under the **charged-cost convention**: step counters are
        never rewound (the window math of :meth:`run` indexes
        ``step_done_times`` positionally), so a worker kill charges the
        group a restart pause at the BSP barrier, a stall charges the
        detection timeout on top, a message fault charges the
        retransmission to the bus, and a load spike rewrites the
        victim host's load trace (its cost manifests through the
        slowed host and any §5.1 migration it triggers).  Process and
        message faults require ``sync_mode="bsp"``.
    """

    def __init__(
        self,
        method: str | Sequence[str],
        ndim: int,
        blocks: Sequence[int],
        side: int,
        hosts: list[SimHost] | None = None,
        network: NetworkParams = NetworkParams(),
        sync_mode: str = "bsp",
        diag_every: int = 0,
        collective_algorithm: str = "tree",
        trace_dir=None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if isinstance(method, str):
            per_rank = None
        else:
            per_rank = tuple(method)
            if len(set(per_rank)) == 1 and per_rank:
                method, per_rank = per_rank[0], None
            else:
                method = None
        for m in per_rank if per_rank is not None else (method,):
            if m not in _PHASE_FRACTIONS:
                raise ValueError(f"unknown method {m!r}")
        if sync_mode not in ("bsp", "loose"):
            raise ValueError(f"unknown sync_mode {sync_mode!r}")
        if collective_algorithm not in ("tree", "ring"):
            raise ValueError(
                f"unknown collective algorithm {collective_algorithm!r}"
            )
        if diag_every > 0 and sync_mode == "loose":
            raise ValueError(
                "in-flight diagnostics are a synchronizing collective; "
                "they cannot be charged under sync_mode='loose'"
            )
        self.sync_mode = sync_mode
        self.method = method
        self.ndim = ndim
        self.blocks = tuple(blocks)
        if len(self.blocks) != ndim:
            raise ValueError(
                f"blocks {blocks} do not match ndim {ndim}"
            )
        self.side = int(side)
        self.network = network
        grid = tuple(b * self.side for b in self.blocks)
        self.decomp = Decomposition(grid, self.blocks)
        self.n_procs = self.decomp.n_active
        hosts = hosts if hosts is not None else paper_sim_cluster()
        if len(hosts) < self.n_procs:
            raise ValueError(
                f"{self.n_procs} processes need at least that many hosts, "
                f"got {len(hosts)}"
            )
        self.hosts = hosts
        if per_rank is None:
            self.methods: tuple[str, ...] = (method,) * self.n_procs
        else:
            if len(per_rank) != self.n_procs:
                raise ValueError(
                    f"{len(per_rank)} per-rank methods for "
                    f"{self.n_procs} simulated processes"
                )
            self.methods = per_rank
        self.msgs_per_step = max(
            MESSAGES_PER_STEP[m] for m in self.methods
        )

        self.queue = EventQueue()
        from .networks import make_network

        self.bus = make_network(
            self.queue,
            preset=network.preset,
            topology=network.topology,
            bandwidth=network.bandwidth,
            overhead=network.overhead,
            collision_factor=network.collision_factor,
            error_wait_threshold=network.error_wait_threshold,
        )
        self.procs: list[_SimProc] = []
        stencil = star_stencil(ndim)
        for rank in range(self.n_procs):
            blk = self.decomp.by_rank(rank)
            nbrs = self.decomp.neighbors(blk.index, stencil)
            # A strip's byte count follows the *sender's* representation
            # (an LB rank ships populations across a seam too).
            per_node = bytes_per_boundary_node(self.methods[rank], ndim)
            neighbor_ranks = []
            msg_bytes = {}
            for off, nb in nbrs.items():
                axis = next(d for d, o in enumerate(off) if o != 0)
                face = 1
                for d in range(ndim):
                    if d != axis:
                        face *= blk.shape[d]
                neighbor_ranks.append(nb.rank)
                msg_bytes[nb.rank] = face * per_node
            host = self.hosts[rank]
            host.rank = rank
            self.procs.append(
                _SimProc(rank, host, self.methods[rank], blk.n_nodes,
                         neighbor_ranks, msg_bytes)
            )
        # Per-phase exchange pattern.  Phase 0 messages every neighbour
        # (on a mixed-method edge that is the once-per-step seam
        # translation); later phases message same-method neighbours
        # only — the live phase exchanges skip seam edges, and the
        # mixed neighbour has no matching phase.  The pattern is
        # symmetric, so each phase expects exactly as many frames as it
        # sends.
        for proc in self.procs:
            for phase in range(len(proc.fractions)):
                targets = [
                    nb for nb in proc.neighbors
                    if phase == 0 or self.methods[nb] == proc.method
                ]
                proc.sends.append(targets)
                proc.expect.append(len(targets))

        # span tracing on the *simulated* clock: the same stream format
        # the live runtimes emit, with ``sim=True`` zero origins, so a
        # simulated and a measured run of one problem merge and compare
        # in the same viewer and the same report.
        self.trace_dir = None
        nphases = max(len(p.fractions) for p in self.procs)
        self._compute_names = tuple(f"compute:{i}" for i in range(nphases))
        self._exchange_names = tuple(
            f"exchange:{i}" for i in range(nphases)
        )
        self._wait_names = tuple(f"wait:{i}" for i in range(nphases))
        if trace_dir is not None:
            from pathlib import Path

            self.trace_dir = Path(trace_dir)
            self.tracers: list = [
                Tracer(
                    self.trace_dir / f"trace-{r:04d}.jsonl",
                    rank=r, sim=True,
                )
                for r in range(self.n_procs)
            ]
        else:
            self.tracers = [NULL_TRACER] * self.n_procs

        # fault injection (repro.chaos, charged-cost model)
        self.fault_plan = fault_plan
        self.fault_events: list[SimFaultEvent] = []
        self._fault_at_step: dict[int, list] = {}
        self._host_faults: list = []
        if fault_plan is not None:
            barrier_kinds = PROCESS_KINDS | MESSAGE_KINDS
            for f in fault_plan.faults:
                if f.kind in barrier_kinds:
                    if sync_mode != "bsp":
                        raise ValueError(
                            "process/message faults are charged at the "
                            "BSP barrier; they cannot be modeled under "
                            "sync_mode='loose'"
                        )
                    if not 0 <= f.rank < self.n_procs:
                        raise ValueError(
                            f"fault {f.fault_id} targets rank {f.rank} "
                            f"of a {self.n_procs}-process run"
                        )
                    self._fault_at_step.setdefault(
                        max(f.step, 1), []
                    ).append(f)
                elif f.kind in HOST_KINDS:
                    self._host_faults.append(f)
                # dump faults have no simulated analogue (there are no
                # dump files); the live runtime owns that failure mode

        # migration machinery
        self.migrations: list[MigrationEvent] = []
        self._steps_target = 0
        self._sync: dict | None = None
        self._monitor_poll = 0.0
        self._migration_cost = 30.0
        self._load_limit = 1.5
        self._policy = "migrate"
        self._state_bytes_per_node = 72.0
        self.planner = None   # RebalancePlanner under policy="rebalance"
        self.rebalances: list[tuple[float, list[int]]] = []
        # BSP barrier bookkeeping
        self._barrier_step = 0
        self._barrier_count = 0

        # in-flight diagnostics collectives (charged at the BSP barrier)
        self.diag_every = int(diag_every)
        self.collective_algorithm = collective_algorithm
        self.collective_messages = 0
        self.collective_bytes = 0
        self.collective_time = 0.0
        self._diag_pattern: list[tuple[int, int, int]] = []
        if self.diag_every > 0:
            from ..net.collectives import collective_pattern

            # Two small allreduces per check — sum over [mass, KE] and
            # max over [max|V|, n_nonfinite], 2 float64 each — exactly
            # what GlobalDiagnostics.check performs, with the message
            # list replayed from the very schedules the live
            # Communicator executes.
            self._diag_pattern = 2 * collective_pattern(
                "allreduce", collective_algorithm, self.n_procs, 16
            )

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def _t_calc(self, proc: _SimProc, t: float) -> float:
        """Full per-step compute time of a process at time ``t``."""
        return proc.n_nodes / proc.host.speed(proc.method, self.ndim, t)

    def serial_time_per_step(self) -> float:
        """T_1: the whole problem on one dedicated 715/50 (§7's
        normalization; no communication, no external load)."""
        if self.method is not None:
            total = self.decomp.n_active_nodes
            return total / node_speed(self.method, self.ndim, "715/50")
        # hybrid: each subregion costs its own method's serial rate
        return sum(
            p.n_nodes / node_speed(p.method, self.ndim, "715/50")
            for p in self.procs
        )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(
        self,
        steps: int,
        measure_last: int = 20,
        monitor_poll: float = 0.0,
        migration_cost: float = 30.0,
        load_limit: float = 1.5,
        policy: str = "migrate",
        rebalance_threshold: float = 0.05,
        state_bytes_per_node: float = 72.0,
        planner=None,
        restart_cost: float = 45.0,
        stall_detect: float = 60.0,
    ) -> SimResult:
        """Simulate ``steps`` integration steps and measure performance.

        ``measure_last`` is the §7 protocol: the reported time per step
        averages the last that many steps (the earlier steps serve as
        warm-up).  ``monitor_poll > 0`` activates the monitoring program:
        every ``monitor_poll`` simulated seconds it inspects host loads
        and applies the chosen ``policy``:

        * ``"migrate"`` (the paper's §5.1): move ranks off hosts whose
          load exceeds ``load_limit`` to free hosts, each migration
          pausing the synchronized computation for ``migration_cost``
          seconds;
        * ``"rebalance"`` (the §1.1 dynamic-allocation baseline):
          re-divide the nodes of the chain decomposition in proportion
          to current host speeds whenever shares shift by more than
          ``rebalance_threshold``, charging the network for the moved
          node state (``state_bytes_per_node`` bytes each).

        The rebalance decision is delegated to a
        :class:`~repro.balance.RebalancePlanner` — the exact class the
        live :class:`~repro.distrib.Monitor` runs, so a policy tuned in
        simulation is the policy the runtime executes.  Pass
        ``planner`` to supply a configured one (cooldown, amortization
        gate, ...); by default one is built from
        ``rebalance_threshold`` / ``state_bytes_per_node`` with no
        cooldown and a saving-must-be-nonnegative gate, matching the
        historical simulator behaviour.  The planner used is exposed as
        ``self.planner``.

        With a ``fault_plan``, ``restart_cost`` is the modeled group
        pause of one checkpoint restart (kill the group, respawn,
        replay to the checkpointed step — §4.1's "started from the last
        state"), and ``stall_detect`` is the monitoring program's
        stall-detection latency charged on top for a SIGSTOP fault.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        if policy not in ("migrate", "rebalance"):
            raise ValueError(f"unknown policy {policy!r}")
        if policy == "rebalance" and any(
            b != 1 for b in self.blocks[1:]
        ):
            raise ValueError(
                "rebalancing resizes slabs of a chain decomposition; "
                f"use blocks=(P, 1[, 1]), got {self.blocks}"
            )
        measure_last = min(measure_last, steps)
        self._steps_target = steps
        self._monitor_poll = monitor_poll
        self._migration_cost = migration_cost
        self._load_limit = load_limit
        self._policy = policy
        self._state_bytes_per_node = state_bytes_per_node
        self.planner = None
        if policy == "rebalance":
            # Imported lazily: repro.balance imports this package at
            # module load, so a top-level import here would be circular.
            from ..balance.planner import BalancePolicy, RebalancePlanner

            self.planner = planner or RebalancePlanner(BalancePolicy(
                threshold=rebalance_threshold,
                cooldown=0.0,
                min_gain=0.0,
                state_bytes_per_node=state_bytes_per_node,
                bandwidth=self.bus.bandwidth,
            ))
        self.rebalances: list[tuple[float, list[int]]] = []

        self._restart_cost = restart_cost
        self._stall_detect = stall_detect
        self.fault_events = []
        self._pending_faults = {
            step: list(faults)
            for step, faults in self._fault_at_step.items()
        }
        for fault in self._host_faults:
            self.queue.schedule(
                max(fault.at, 0.0),
                lambda now, f=fault: self._apply_load_spike(f, now),
            )

        for proc in self.procs:
            self._start_step(proc, 0.0)
        if monitor_poll > 0:
            self.queue.schedule(monitor_poll, self._monitor_tick)
        self.queue.run()

        if self.trace_dir is not None:
            for tr in self.tracers:
                tr.close()
            from ..trace import write_chrome_trace

            write_chrome_trace(self.trace_dir,
                               self.trace_dir / "trace.json")

        done = [p.step_done_times[-1] for p in self.procs]
        elapsed = max(done)
        start_idx = steps - measure_last
        window_start = max(
            p.step_done_times[start_idx - 1] if start_idx > 0 else 0.0
            for p in self.procs
        )
        time_per_step = (elapsed - window_start) / measure_last
        return SimResult(
            processors=self.n_procs,
            nodes_per_proc=self.side**self.ndim,
            steps=steps,
            elapsed=elapsed,
            time_per_step=time_per_step,
            serial_time_per_step=self.serial_time_per_step(),
            bus=self.bus.stats,
            compute_time_total=sum(p.compute_time for p in self.procs),
            migrations=list(self.migrations),
            rebalances=list(self.rebalances),
            faults=list(self.fault_events),
            collective_messages=self.collective_messages,
            collective_bytes=self.collective_bytes,
            collective_time=self.collective_time,
        )

    # ------------------------------------------------------------------
    # process state machine
    # ------------------------------------------------------------------
    def _start_step(self, proc: _SimProc, t: float) -> None:
        proc.phase = 0
        self._schedule_compute(proc, t, proc.fractions[0])

    def _schedule_compute(
        self, proc: _SimProc, t: float, fraction: float
    ) -> None:
        duration = fraction * self._t_calc(proc, t)
        proc.compute_time += duration
        self.tracers[proc.rank].add_span(
            self._compute_names[proc.phase], t, duration, step=proc.step
        )
        self.queue.schedule(
            t + duration, lambda now, p=proc: self._compute_done(p, now)
        )

    def _compute_done(self, proc: _SimProc, t: float) -> None:
        self._send_next(proc, 0, t)

    def _send_next(self, proc: _SimProc, idx: int, t: float) -> None:
        """Issue the phase's sends one at a time, *blocking* on each.

        The efficiency model's second assumption (§8) is that
        communication does not overlap computation, and on the paper's
        workstations it genuinely did not: the TCP/IP stack ran on the
        same CPU as the solver, so a send occupied the processor until
        the frame cleared the shared medium.  The sender therefore
        resumes only when its message has left the bus, which is also
        what couples every processor to the *total* bus traffic and
        yields the ``T_com ∝ (P-1)`` law of eq. 19.
        """
        targets = proc.sends[proc.phase]
        if idx >= len(targets):
            self._wait_or_advance(proc, t)
            return
        nb = targets[idx]
        step, phase = proc.step, proc.phase
        finish = self.bus.send(
            proc.msg_bytes[nb],
            lambda now, dst=nb, s=step, ph=phase: self._msg_arrive(
                dst, s, ph, now
            ),
            src=proc.host.name,
            dst=self.procs[nb].host.name,
        )
        # blocking send: the sender is occupied until the bus clears
        tracer = self.tracers[proc.rank]
        tracer.add_span(self._exchange_names[phase], t, finish - t,
                        step=step)
        tracer.count(nb, proc.msg_bytes[nb])
        self.queue.schedule(
            finish,
            lambda now, p=proc, i=idx + 1: self._send_next(p, i, now),
        )

    def _msg_arrive(self, dst: int, step: int, phase: int, t: float) -> None:
        proc = self.procs[dst]
        key = (step, phase)
        proc.arrived[key] = proc.arrived.get(key, 0) + 1
        if proc.waiting == key and proc.arrived[key] >= proc.expect[phase]:
            proc.waiting = None
            self.tracers[dst].add_span(
                self._wait_names[phase], proc.wait_since,
                t - proc.wait_since, step=step,
            )
            self._advance_phase(proc, t)

    def _wait_or_advance(self, proc: _SimProc, t: float) -> None:
        key = (proc.step, proc.phase)
        if proc.arrived.get(key, 0) >= proc.expect[proc.phase]:
            self._advance_phase(proc, t)
        else:
            proc.waiting = key
            proc.wait_since = t

    def _advance_phase(self, proc: _SimProc, t: float) -> None:
        proc.arrived.pop((proc.step, proc.phase), None)
        if proc.phase + 1 < len(proc.fractions):
            proc.phase += 1
            self._schedule_compute(proc, t, proc.fractions[proc.phase])
        else:
            # final compute chunk (post-exchange filter etc.)
            final = 1.0 - sum(proc.fractions)
            duration = final * self._t_calc(proc, t)
            proc.compute_time += duration
            self.tracers[proc.rank].add_span(
                "finalize:0", t, duration, step=proc.step
            )
            self.queue.schedule(
                t + duration, lambda now, p=proc: self._step_done(p, now)
            )

    def _step_done(self, proc: _SimProc, t: float) -> None:
        proc.step += 1
        proc.phase = -1
        proc.step_done_times.append(t)
        if self.sync_mode == "bsp":
            self._barrier_count += 1
            if self._barrier_count < self.n_procs:
                return
            # Everyone finished step `_barrier_step + 1`; open the next
            # cycle together (or service a pending migration).
            self._barrier_count = 0
            self._barrier_step += 1
            if self.trace_dir is not None:
                # processes that finished early idle at the BSP barrier
                for p in self.procs:
                    t0 = p.step_done_times[-1]
                    if t > t0:
                        self.tracers[p.rank].add_span(
                            "barrier:step", t0, t - t0, step=p.step - 1
                        )
            resume = t
            if self.diag_every > 0 and \
                    self._barrier_step % self.diag_every == 0:
                # The workers allreduce their diagnostics partials at
                # this step boundary; the next cycle opens only once
                # the collective has cleared the bus.
                resume = self._charge_collectives(t)
            due = self._pending_faults.pop(self._barrier_step, None)
            if due:
                resume = self._charge_faults(due, resume)
            sync = self._sync
            if sync is not None and self._barrier_step >= sync["step"]:
                for p in self.procs:
                    p.paused_at = resume
                sync["paused"] = self.n_procs
                self._complete_migration(resume)
                return
            if self._barrier_step < self._steps_target:
                for p in self.procs:
                    self._start_step(p, resume)
            return
        sync = self._sync
        if sync is not None and proc.step >= sync["step"]:
            proc.paused_at = t
            sync["paused"] += 1
            if sync["paused"] == self.n_procs:
                self._complete_migration(t)
            return
        if proc.step < self._steps_target:
            self._start_step(proc, t)

    def _charge_collectives(self, t: float) -> float:
        """Charge one diagnostics allreduce pair to the bus at time ``t``.

        The recorded message list is replayed in causal order; on the
        paper's shared Ethernet each frame serializes on the medium, so
        the finish time of the last frame is when the collective clears
        and the next compute cycle may open.
        """
        finish = t
        for src, dst, nbytes in self._diag_pattern:
            f = self.bus.send(
                nbytes,
                lambda now: None,
                src=self.procs[src].host.name,
                dst=self.procs[dst].host.name,
            )
            finish = max(finish, f)
            self.collective_messages += 1
            self.collective_bytes += nbytes
        self.collective_time += finish - t
        if finish > t and self.trace_dir is not None:
            # the next cycle opens only once the collective clears: the
            # whole group is occupied for its duration
            for p in self.procs:
                self.tracers[p.rank].add_span(
                    "collective:diag", t, finish - t,
                    step=self._barrier_step,
                )
        return finish

    # ------------------------------------------------------------------
    # fault injection (repro.chaos, charged-cost model)
    # ------------------------------------------------------------------
    def _charge_faults(self, due: list, t: float) -> float:
        """Charge the group pause of the faults firing at this barrier.

        Step counters are never rewound (the measurement window indexes
        ``step_done_times`` positionally), so the lost recomputation is
        *charged as time* instead: a kill pauses the whole group for
        ``restart_cost`` (kill, respawn, replay to the checkpoint), a
        stall adds the monitor's ``stall_detect`` latency on top, and a
        message fault puts the retransmitted strip back on the bus —
        exactly the recovery the live runtime performs, priced on the
        simulated clock.
        """
        resume = t
        for fault in due:
            if fault.kind in PROCESS_KINDS:
                cost = self._restart_cost
                if fault.kind == "stop":
                    cost += self._stall_detect
                resume += cost
            else:  # message fault: the strip crosses the wire again
                proc = self.procs[fault.rank]
                cost = 0.0
                if proc.neighbors:
                    nb = proc.neighbors[0]
                    finish = self.bus.send(
                        proc.msg_bytes[nb],
                        lambda now: None,
                        src=proc.host.name,
                        dst=self.procs[nb].host.name,
                    )
                    cost = max(finish - t, 0.0)
                    resume = max(resume, finish)
            self.fault_events.append(
                SimFaultEvent(time=t, kind=fault.kind,
                              rank=fault.rank, cost=cost)
            )
            self.tracers[fault.rank].add_span(
                f"chaos:{fault.kind}", t, cost, step=self._barrier_step
            )
        if resume > t and self.trace_dir is not None:
            for p in self.procs:
                self.tracers[p.rank].add_span(
                    "recover:pause", t, resume - t, step=self._barrier_step
                )
        return resume

    def _apply_load_spike(self, fault, t: float) -> None:
        """Rewrite the victim host's load trace with the spike."""
        proc = self.procs[fault.rank]
        old = proc.host.trace
        points = [p for p in old.points if p[0] < t]
        points.append((t, fault.load))
        if fault.seconds > 0:
            end = t + fault.seconds
            points.append((end, old.load_at(end)))
            points.extend(p for p in old.points if p[0] > end)
        proc.host.trace = LoadTrace(points=tuple(points))
        self.fault_events.append(
            SimFaultEvent(time=t, kind=fault.kind, rank=fault.rank,
                          cost=0.0)
        )
        self.tracers[fault.rank].add_span(
            "chaos:load_spike", t, max(fault.seconds, 0.0),
            step=self.procs[fault.rank].step,
        )

    # ------------------------------------------------------------------
    # monitoring program (§5.1)
    # ------------------------------------------------------------------
    def _monitor_tick(self, t: float) -> None:
        if self._sync is None and self._policy == "rebalance":
            self._consider_rebalance(t)
        elif self._sync is None:
            overloaded = [
                p for p in self.procs
                if p.step < self._steps_target
                and p.host.load_at(t) > self._load_limit
            ]
            if overloaded:
                # App. B: synchronize at (max current step) + 1.
                sync_step = max(p.step for p in self.procs) + 1
                sync_step = min(sync_step, self._steps_target)
                self._sync = {
                    "step": sync_step,
                    "action": "migrate",
                    "ranks": [p.rank for p in overloaded],
                    "paused": 0,
                    "requested_at": t,
                }
                if self.sync_mode == "loose":
                    # Processes already at/past the sync step pause now;
                    # under BSP the barrier path handles this.
                    for proc in self.procs:
                        if proc.phase == -1 and proc.step >= sync_step:
                            proc.paused_at = t
                            self._sync["paused"] += 1
                    if self._sync["paused"] == self.n_procs:
                        self._complete_migration(t)
        if not self.queue.empty or self._sync is not None:
            self.queue.schedule(t + self._monitor_poll, self._monitor_tick)

    def _consider_rebalance(self, t: float) -> None:
        """§1.1 baseline: resize slabs in proportion to host speeds.

        The go/no-go question is put to the shared
        :class:`~repro.balance.RebalancePlanner` — the same object the
        live monitoring program consults.
        """
        if all(p.step >= self._steps_target for p in self.procs):
            return
        speeds = [
            p.host.speed(p.method, self.ndim, t) for p in self.procs
        ]
        steps_remaining = self._steps_target - max(
            p.step for p in self.procs
        )
        plan = self.planner.propose(
            speeds,
            [p.n_nodes for p in self.procs],
            steps_remaining=steps_remaining,
            now=t,
        )
        if plan is None:
            return
        sync_step = max(p.step for p in self.procs) + 1
        sync_step = min(sync_step, self._steps_target)
        self._sync = {
            "step": sync_step,
            "action": "rebalance",
            "plan": plan,
            "shares": list(plan.shares),
            "paused": 0,
            "requested_at": t,
        }
        if self.sync_mode == "loose":
            for proc in self.procs:
                if proc.phase == -1 and proc.step >= sync_step:
                    proc.paused_at = t
                    self._sync["paused"] += 1
            if self._sync["paused"] == self.n_procs:
                self._complete_migration(t)

    def _free_hosts(self, t: float) -> list[SimHost]:
        return [
            h
            for h in self.hosts
            if h.rank is None and h.load_at(t) < 0.6
        ]

    def _complete_migration(self, t: float) -> None:
        sync = self._sync
        assert sync is not None
        if sync.get("action") == "rebalance":
            plan = sync["plan"]
            shares = sync["shares"]
            for proc, n in zip(self.procs, shares):
                proc.n_nodes = n
            self.rebalances.append((t, list(shares)))
            self.planner.commit(t, plan)
            self._sync = None
            resume = t + plan.cost
            for proc in self.procs:
                if proc.paused_at is not None:
                    self.tracers[proc.rank].add_span(
                        "balance:pause", proc.paused_at,
                        resume - proc.paused_at, step=proc.step,
                    )
                proc.paused_at = None
                if proc.step < self._steps_target:
                    self.queue.schedule(
                        resume, lambda now, p=proc: self._start_step(p, now)
                    )
            return
        resume = t + self._migration_cost
        free = self._free_hosts(t)
        for rank in sync["ranks"]:
            proc = self.procs[rank]
            if not free:
                break  # no free host: stay put (degraded, but running)
            new_host = free.pop(0)
            old = proc.host
            old.rank = None
            new_host.rank = rank
            proc.host = new_host
            self.migrations.append(
                MigrationEvent(
                    time=t,
                    rank=rank,
                    from_host=old.name,
                    to_host=new_host.name,
                    sync_step=sync["step"],
                    pause_duration=self._migration_cost,
                )
            )
        self._sync = None
        for proc in self.procs:
            if proc.paused_at is not None:
                self.tracers[proc.rank].add_span(
                    "migration:pause", proc.paused_at,
                    resume - proc.paused_at, step=proc.step,
                )
            proc.paused_at = None
            if proc.step < self._steps_target:
                self.queue.schedule(
                    resume, lambda now, p=proc: self._start_step(p, now)
                )
