"""Simulated cluster of non-dedicated workstations (substitution layer).

A discrete-event model of the paper's experimental platform — 25
HP9000/700 workstations on shared-bus 10 Mbps Ethernet — calibrated with
the paper's own measured constants, used to regenerate the parallel
efficiency and speedup figures (5-11).
"""

from .calibration import (
    COLLISION_FACTOR,
    ETHERNET_BANDWIDTH,
    MESSAGE_OVERHEAD,
    MESSAGES_PER_STEP,
    RELATIVE_SPEED,
    U_REF_NODES_PER_S,
    VALUES_PER_NODE,
    bytes_per_boundary_node,
    node_speed,
    paper_ucalc_vcom_ratio,
)
from .ethernet import BusStats, SharedBus
from .events import EventQueue
from .loadgen import expected_busy_events, poisson_user_traces
from .machines import LoadTrace, SimHost, paper_sim_cluster
from .networks import NETWORK_PRESETS, SwitchedNetwork, make_network
from .saving import SavePlan, simultaneous_save, staggered_save
from .simulator import (
    ClusterSimulation,
    MigrationEvent,
    NetworkParams,
    SimFaultEvent,
    SimResult,
    phase_fractions,
)

__all__ = [
    "ClusterSimulation",
    "NetworkParams",
    "SimResult",
    "MigrationEvent",
    "SimFaultEvent",
    "SharedBus",
    "BusStats",
    "SwitchedNetwork",
    "make_network",
    "NETWORK_PRESETS",
    "SavePlan",
    "simultaneous_save",
    "staggered_save",
    "poisson_user_traces",
    "expected_busy_events",
    "EventQueue",
    "SimHost",
    "LoadTrace",
    "paper_sim_cluster",
    "U_REF_NODES_PER_S",
    "RELATIVE_SPEED",
    "VALUES_PER_NODE",
    "MESSAGES_PER_STEP",
    "ETHERNET_BANDWIDTH",
    "MESSAGE_OVERHEAD",
    "COLLISION_FACTOR",
    "node_speed",
    "bytes_per_boundary_node",
    "paper_ucalc_vcom_ratio",
    "phase_fractions",
]
