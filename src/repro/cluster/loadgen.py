"""Stochastic user activity for the non-dedicated cluster (§5.1).

The paper's cluster is shared with real users: "In our system there is
typically one migration every 45 minutes for a distributed computation
that uses 20 workstations from a pool of 25."  This module generates
reproducible random load traces — users starting full-time jobs as a
Poisson process, each lasting an exponential while — so week-long
sharing scenarios can be soaked through the simulator in milliseconds
and the migration statistics compared against the paper's.
"""

from __future__ import annotations

import numpy as np

from .machines import LoadTrace

__all__ = ["poisson_user_traces", "expected_busy_events"]


def poisson_user_traces(
    host_names: list[str],
    duration: float,
    busy_rate_per_hour: float,
    mean_busy_minutes: float = 20.0,
    load: float = 2.0,
    seed: int = 0,
) -> dict[str, LoadTrace]:
    """Generate a full-time-job arrival process per host.

    Each host independently receives busy periods as a Poisson process
    with ``busy_rate_per_hour`` arrivals per hour; each busy period
    lasts an exponential time with mean ``mean_busy_minutes`` and puts
    ``load`` competing processes on the host (load > 1.5 triggers the
    monitoring program).  Overlapping periods merge.

    Deterministic for a given seed; each host draws from its own
    substream so adding hosts never reshuffles existing traces.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if busy_rate_per_hour < 0:
        raise ValueError("busy rate must be >= 0")
    traces: dict[str, LoadTrace] = {}
    rate_per_s = busy_rate_per_hour / 3600.0
    mean_s = mean_busy_minutes * 60.0
    for idx, name in enumerate(sorted(host_names)):
        rng = np.random.default_rng((seed, idx))
        events: list[tuple[float, float]] = []
        t = 0.0
        while True:
            if rate_per_s == 0.0:
                break
            t += rng.exponential(1.0 / rate_per_s)
            if t >= duration:
                break
            end = t + rng.exponential(mean_s)
            events.append((t, min(end, duration)))
            t = end  # next arrival after this job ends (one user)
        # merge into a piecewise-constant trace
        points: list[tuple[float, float]] = []
        for start, end in events:
            points.append((start, load))
            if end < duration:
                points.append((end, 0.0))
        traces[name] = LoadTrace(points=tuple(points))
    return traces


def expected_busy_events(
    traces: dict[str, LoadTrace],
    hosts_in_use: list[str],
    threshold: float = 1.5,
) -> int:
    """Count busy-period onsets on the hosts running subprocesses.

    Each onset above the migration threshold is one event the
    monitoring program should answer with (at most) one migration —
    the ground truth for the soak test's migration count.
    """
    n = 0
    for name in hosts_in_use:
        trace = traces.get(name)
        if trace is None:
            continue
        prev = 0.0
        for _, load in trace.points:
            if load > threshold and prev <= threshold:
                n += 1
            prev = load
    return n
