"""Calibration constants taken from the paper itself (§6-§7).

Absolute 1994 wall-clock numbers are reproduced from the paper's own
measurements, so the simulator's efficiency curves are directly
comparable to figs. 5-11:

* the 715/50 workstation integrates **39132 fluid nodes per second**
  running lattice Boltzmann in 2D (relative speed 1.0 in the §7 table);
* the relative-speed table for the three machine models and the four
  (method x dimensionality) combinations;
* the per-node communication payloads of §6 — both methods move 3
  doubles per boundary node in 2D, FD moves 4 and LB 5 in 3D;
* FD sends two messages per step per neighbour, LB one;
* the shared-bus Ethernet is 10 Mbps peak; the per-message overhead is
  fitted so the efficiency rolloff of small subregions lands where
  fig. 5 measures it (the paper notes its eq. 20 model *omits* this
  overhead and therefore over-predicts below N = 100^2).
"""

from __future__ import annotations

__all__ = [
    "U_REF_NODES_PER_S",
    "RELATIVE_SPEED",
    "VALUES_PER_NODE",
    "MESSAGES_PER_STEP",
    "ETHERNET_BANDWIDTH",
    "MESSAGE_OVERHEAD",
    "BYTES_PER_VALUE",
    "node_speed",
    "bytes_per_boundary_node",
    "paper_ucalc_vcom_ratio",
    "calibrate_backends",
]

#: §7: "The relative speed of 1.0 corresponds to 39132 fluid nodes
#: integrated per second" (LB, 2D, HP 715/50).
U_REF_NODES_PER_S = 39132.0

#: §7 table of workstation speeds, normalized to the 715/50 LB-2D entry.
RELATIVE_SPEED: dict[tuple[str, int], dict[str, float]] = {
    ("lb", 2): {"715/50": 1.00, "710": 0.84, "720": 0.86},
    ("lb", 3): {"715/50": 0.51, "710": 0.40, "720": 0.42},
    ("fd", 2): {"715/50": 1.24, "710": 1.08, "720": 1.17},
    ("fd", 3): {"715/50": 1.00, "710": 0.85, "720": 0.94},
}

#: §6: double-precision values communicated per boundary fluid node.
VALUES_PER_NODE: dict[tuple[str, int], int] = {
    ("fd", 2): 3,  # rho, Vx, Vy
    ("lb", 2): 3,  # the 3 D2Q9 populations crossing a face
    ("fd", 3): 4,  # rho, Vx, Vy, Vz
    ("lb", 3): 5,  # the 5 D3Q15 populations crossing a face
}

#: §6: FD communicates velocity and density separately; LB sends all
#: boundary data in one message.
MESSAGES_PER_STEP: dict[str, int] = {"fd": 2, "lb": 1}

BYTES_PER_VALUE = 8  # double precision

#: 10 Mbps shared-bus Ethernet (§9) expressed in payload bytes/second.
ETHERNET_BANDWIDTH = 1.25e6

#: Fitted per-message latency (TCP/IP + interrupt + protocol overhead on
#: a 1994 LAN).  "each message in a local area network incurs an
#: overhead" (§7) — this is what makes FD's two messages per step hurt
#: at small subregions and what eq. 20 leaves out.
MESSAGE_OVERHEAD = 1.0e-3

#: CSMA/CD degradation: each queued message ahead of a transmission
#: inflates its effective wire time by this fraction (collisions and
#: exponential backoff under bursty offered load).  Fitted so the
#: 3D efficiency collapse of fig. 9 lands on the measured curve.
COLLISION_FACTOR = 0.02


def node_speed(method: str, ndim: int, model: str = "715/50") -> float:
    """Fluid nodes integrated per second on a machine model."""
    return U_REF_NODES_PER_S * RELATIVE_SPEED[(method, ndim)][model]


def bytes_per_boundary_node(method: str, ndim: int) -> int:
    """Wire bytes per communicating fluid node (§6 payload counts)."""
    return VALUES_PER_NODE[(method, ndim)] * BYTES_PER_VALUE


def calibrate_backends(
    method: str = "lb",
    ndim: int = 2,
    side: int = 48,
    steps: int = 5,
    repeats: int = 2,
    backends=None,
) -> dict[str, float]:
    """Measured nodes/s per kernel backend on *this* host.

    The paper calibrates its model with measured per-workstation speeds
    (§7's relative-speed table); this is the same measurement for the
    kernel *backends* of :mod:`repro.fluids.backends` — a periodic,
    solid-free ``side**ndim`` problem is integrated per the §7 timing
    protocol and the unpadded nodes/s recorded per backend.  Feed the
    result into :meth:`repro.balance.LoadEstimator.seed_speeds` (via
    :func:`repro.balance.calibrated_speeds`) or into
    ``Decomposition(weights=...)`` so mixed numpy/numba ranks start
    from measured ratios instead of the uniform prior.

    ``backends`` defaults to every backend available on this host
    (missing numba simply yields no ``numba`` entry, never an error).
    """
    from ..core.decomposition import Decomposition
    from ..core.runner import Simulation
    from ..fluids.backends import available_backends
    from ..fluids.fd import FDMethod
    from ..fluids.lbm import LBMethod
    from ..fluids.params import FluidParams
    from ..harness.timing import measure_node_speed

    import numpy as np

    if method not in ("fd", "lb"):
        raise ValueError(f"unknown method {method!r}")
    if backends is None:
        backends = available_backends(ndim)
    shape = (side,) * ndim
    fields = {"rho": np.ones(shape)}
    for name in ("u", "v", "w")[:ndim]:
        fields[name] = np.zeros(shape)
    cls = LBMethod if method == "lb" else FDMethod
    out: dict[str, float] = {}
    for backend in backends:
        params = FluidParams.lattice(
            ndim, nu=0.05, gravity=(1e-5,) + (0.0,) * (ndim - 1)
        )
        m = cls(params, ndim, backend=backend)
        decomp = Decomposition(shape, (1,) * ndim, periodic=(True,) * ndim)
        sim = Simulation(m, decomp, dict(fields))
        out[backend] = measure_node_speed(
            sim, n_nodes=side**ndim, steps=steps, repeats=repeats
        )
    return out


def paper_ucalc_vcom_ratio() -> float:
    """The paper's fitted ``U_calc / V_com = 2/3`` (§8).

    Consistency check with the physical constants: LB-2D moves 24 bytes
    per boundary node, so ``V_com = 1.25 MB/s / 24 B = 52083`` node
    transfers/s and ``U_calc / V_com = 39132 / 52083 = 0.75`` — the same
    2/3-ish ratio the paper fits, with the difference absorbed by
    per-message overhead and TCP efficiency.
    """
    return 2.0 / 3.0
