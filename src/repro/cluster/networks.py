"""Future network technologies (paper §9).

"It is expected that new technologies in the near future such as
Ethernet switches, FDDI and ATM networks will make practical three-
dimensional simulations of fluid dynamics on a cluster of workstations."

This module quantifies that prediction.  A :class:`SwitchedNetwork`
replaces the single shared medium with per-host full-duplex links
through a non-blocking switch: a message occupies only its sender's
transmit link and its receiver's receive link, so disjoint host pairs
communicate concurrently and the ``(P-1)`` bus-contention law of eq. 19
disappears.  Named presets cover the technologies the paper lists:

====================  =========================  ====================
preset                topology                   payload bandwidth
====================  =========================  ====================
``ethernet10``        shared bus (the baseline)  1.25 MB/s
``switched10``        switch, 10 Mbps links      1.25 MB/s per link
``fddi100``           shared ring, 100 Mbps      12.5 MB/s
``atm155``            switch, 155 Mbps links     19.4 MB/s per link
====================  =========================  ====================

FDDI is a token ring — still a shared medium, just 10x faster — while
switched Ethernet and ATM scale with the number of hosts.
"""

from __future__ import annotations

from .calibration import MESSAGE_OVERHEAD
from .ethernet import BusStats, SharedBus
from .events import EventQueue

__all__ = ["SwitchedNetwork", "make_network", "NETWORK_PRESETS"]


class SwitchedNetwork:
    """Non-blocking switch with full-duplex per-host links.

    Call-compatible with :class:`~repro.cluster.ethernet.SharedBus`
    except that ``send`` requires the ``src``/``dst`` host names to know
    which links the message occupies.
    """

    def __init__(
        self,
        queue: EventQueue,
        bandwidth: float = 1.25e6,
        overhead: float = MESSAGE_OVERHEAD,
        error_wait_threshold: float = 2.0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if overhead < 0:
            raise ValueError(f"overhead must be >= 0, got {overhead}")
        self.queue = queue
        self.bandwidth = bandwidth
        self.overhead = overhead
        self.error_wait_threshold = error_wait_threshold
        self._tx_busy: dict[str, float] = {}
        self._rx_busy: dict[str, float] = {}
        self.stats = BusStats()

    def transmit_time(self, nbytes: int, backlog: int = 0) -> float:
        """Wire occupancy of one message (no collision term: the switch
        serializes per link, it does not collide)."""
        return self.overhead + nbytes / self.bandwidth

    def send(
        self,
        nbytes: int,
        deliver,
        src: str = "?",
        dst: str = "?",
    ) -> float:
        """Transmit ``src -> dst``; returns the delivery time."""
        now = self.queue.now
        start = max(
            now,
            self._tx_busy.get(src, 0.0),
            self._rx_busy.get(dst, 0.0),
        )
        delay = start - now
        finish = start + self.transmit_time(nbytes)
        self._tx_busy[src] = finish
        self._rx_busy[dst] = finish

        s = self.stats
        s.messages += 1
        s.bytes += nbytes
        s.busy_time += finish - start  # per-link busy time, summed
        s.total_queue_delay += delay
        s.max_queue_delay = max(s.max_queue_delay, delay)
        if delay > self.error_wait_threshold:
            s.network_errors += 1

        self.queue.schedule(finish, deliver)
        return finish


#: Named presets for §9's technology comparison: (topology, payload
#: bandwidth in bytes/s, per-message overhead in seconds).  The newer
#: technologies also cut per-message latency.
NETWORK_PRESETS: dict[str, tuple[str, float, float]] = {
    "ethernet10": ("bus", 1.25e6, MESSAGE_OVERHEAD),
    "switched10": ("switch", 1.25e6, MESSAGE_OVERHEAD),
    "fddi100": ("bus", 12.5e6, 0.5e-3),
    "atm155": ("switch", 19.4e6, 0.25e-3),
}


def make_network(
    queue: EventQueue,
    preset: str | None = None,
    topology: str = "bus",
    bandwidth: float = 1.25e6,
    overhead: float = MESSAGE_OVERHEAD,
    collision_factor: float = 0.0,
    error_wait_threshold: float = 2.0,
):
    """Build a network model from a preset name or explicit parameters."""
    if preset is not None:
        if preset not in NETWORK_PRESETS:
            raise ValueError(
                f"unknown preset {preset!r}; choose from "
                f"{sorted(NETWORK_PRESETS)}"
            )
        topology, bandwidth, overhead = NETWORK_PRESETS[preset]
        if preset != "ethernet10":
            # only CSMA/CD Ethernet collides; FDDI passes a token and
            # switches serialize per link
            collision_factor = 0.0
    if topology == "bus":
        return SharedBus(
            queue,
            bandwidth=bandwidth,
            overhead=overhead,
            collision_factor=collision_factor,
            error_wait_threshold=error_wait_threshold,
        )
    if topology == "switch":
        return SwitchedNetwork(
            queue,
            bandwidth=bandwidth,
            overhead=overhead,
            error_wait_threshold=error_wait_threshold,
        )
    raise ValueError(f"unknown topology {topology!r}")
