"""Dynamic workload allocation — the §1.1 alternative to migration.

"An alternative approach that has been used elsewhere is the dynamic
allocation of processor workload [: ] to enlarge and to shrink the
subregions which are assigned to each workstation depending on the CPU
load of the workstation (Cap & Strumpen).  Although this approach is
important in various applications, it seems unnecessary for simulating
fluid flow problems with static geometry.  For such problems, it may be
simpler and more effective to use fixed size subregions per processor,
and to use automatic migration of processes from busy hosts to free
hosts."

This module implements that baseline so the claim can be tested: nodes
are (re)divided in proportion to each host's current effective speed,
and a repartition charges the network for the node state that moves.
The benchmark compares the two policies with and without spare hosts —
migration wins when a free workstation exists (the paper's situation,
20 of 25 used); rebalancing is what is left when every host is busy.
"""

from __future__ import annotations

__all__ = ["proportional_shares", "repartition_cost"]


def proportional_shares(
    total: int, speeds: list[float], minimum: int = 1
) -> list[int]:
    """Split ``total`` nodes in proportion to processor speeds.

    Largest-remainder rounding: deterministic, sums exactly to
    ``total``, and every processor keeps at least ``minimum`` nodes
    (one by default; the live rebalancer passes the ghost pad so every
    resized slab still fits an exchange plan).  Integer weights that
    already sum to ``total`` round-trip unchanged, which is what lets a
    re-cut decomposition be reconstructed exactly from its recorded
    shares.
    """
    if minimum < 1:
        raise ValueError(f"minimum share must be >= 1, got {minimum}")
    if total < len(speeds) * minimum:
        raise ValueError(
            f"cannot give {len(speeds)} processors at least {minimum} "
            f"node(s) out of {total}"
        )
    if any(s <= 0 for s in speeds):
        raise ValueError("speeds must be positive")
    weight = sum(speeds)
    raw = [total * s / weight for s in speeds]
    shares = [max(int(r), minimum) for r in raw]
    remainders = [r - int(r) for r in raw]
    # hand out the remaining nodes to the largest remainders
    leftover = total - sum(shares)
    order = sorted(
        range(len(speeds)), key=lambda i: remainders[i], reverse=True
    )
    i = 0
    while leftover > 0:
        shares[order[i % len(order)]] += 1
        leftover -= 1
        i += 1
    while leftover < 0:
        # rounding pushed us over; take back from the largest shares
        j = max(range(len(shares)), key=lambda k: shares[k])
        if shares[j] > minimum:
            shares[j] -= 1
            leftover += 1
    return shares


def repartition_cost(
    old: list[int],
    new: list[int],
    state_bytes_per_node: float,
    bandwidth: float,
    fixed_overhead: float = 1.0,
) -> float:
    """Seconds of global pause to redistribute subregion state.

    Moving a slab boundary transfers the full state of every reassigned
    node across the network; the computation is synchronized while the
    repartition is in flight (the same global-sync structure migration
    uses, but with data volume proportional to the imbalance rather
    than one subregion dump).
    """
    if len(old) != len(new) or sum(old) != sum(new):
        raise ValueError("old and new shares must match in length and sum")
    moved = sum(abs(a - b) for a, b in zip(old, new)) // 2
    return fixed_overhead + moved * state_bytes_per_node / bandwidth
