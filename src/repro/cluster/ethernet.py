"""Shared-bus Ethernet model (paper §7-§9).

All workstations hang off one 10 Mbps shared bus: only one frame is on
the wire at a time, so concurrent messages serialize and "the total
traffic through the shared-bus network increases in proportion to the
number of processors" — the mechanism behind eq. 19's ``T_com ∝ (P-1)``
and behind the collapse of 3D efficiency in figs. 9-11.

Each message occupies the bus for ``overhead + bytes / bandwidth``
seconds; the overhead term is what penalizes FD's two small messages per
step against LB's single message (§7).  Ethernet is CSMA/CD: stations
sensing a busy medium back off and collide, so effective throughput
*degrades* as the backlog grows — modelled by inflating a message's wire
time by ``(1 + collision_factor * backlog)`` where the backlog counts
messages already queued ahead.  When the backlog a message experiences
exceeds ``error_wait_threshold`` seconds the model counts a network
error: the paper observes that under 3D traffic "the TCP/IP protocol
fails to deliver messages after excessive retransmissions".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .calibration import (
    COLLISION_FACTOR,
    ETHERNET_BANDWIDTH,
    MESSAGE_OVERHEAD,
)
from .events import EventQueue

__all__ = ["SharedBus", "BusStats"]


@dataclass
class BusStats:
    """Aggregate traffic statistics of one simulated run."""

    messages: int = 0
    bytes: int = 0
    busy_time: float = 0.0
    total_queue_delay: float = 0.0
    max_queue_delay: float = 0.0
    network_errors: int = 0

    def utilization(self, elapsed: float) -> float:
        """Fraction of wall time the wire was busy."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class SharedBus:
    """One shared medium serializing every transmission."""

    def __init__(
        self,
        queue: EventQueue,
        bandwidth: float = ETHERNET_BANDWIDTH,
        overhead: float = MESSAGE_OVERHEAD,
        collision_factor: float = COLLISION_FACTOR,
        error_wait_threshold: float = 2.0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if overhead < 0:
            raise ValueError(f"overhead must be >= 0, got {overhead}")
        if collision_factor < 0:
            raise ValueError(
                f"collision_factor must be >= 0, got {collision_factor}"
            )
        self.queue = queue
        self.bandwidth = bandwidth
        self.overhead = overhead
        self.collision_factor = collision_factor
        self.error_wait_threshold = error_wait_threshold
        self.busy_until = 0.0
        self.stats = BusStats()
        self._finish_times: deque[float] = deque()

    def transmit_time(self, nbytes: int, backlog: int = 0) -> float:
        """Wire occupancy of one message given the current backlog."""
        wire = nbytes / self.bandwidth
        return self.overhead + wire * (
            1.0 + self.collision_factor * backlog
        )

    def backlog(self) -> int:
        """Messages queued or on the wire right now."""
        now = self.queue.now
        while self._finish_times and self._finish_times[0] <= now:
            self._finish_times.popleft()
        return len(self._finish_times)

    def send(
        self, nbytes: int, deliver, src: str = "?", dst: str = "?"
    ) -> float:
        """Enqueue a message now; ``deliver(t)`` fires on arrival.

        Returns the delivery time.  FIFO by submission order: TCP on a
        shared segment gives no priorities.  ``src``/``dst`` are
        accepted for interface compatibility with the switched model —
        a shared bus doesn't care who is talking.
        """
        now = self.queue.now
        backlog = self.backlog()
        start = max(now, self.busy_until)
        delay = start - now
        finish = start + self.transmit_time(nbytes, backlog)
        self.busy_until = finish
        self._finish_times.append(finish)

        s = self.stats
        s.messages += 1
        s.bytes += nbytes
        s.busy_time += finish - start
        s.total_queue_delay += delay
        s.max_queue_delay = max(s.max_queue_delay, delay)
        if delay > self.error_wait_threshold:
            s.network_errors += 1

        self.queue.schedule(finish, deliver)
        return finish
