"""Simulation-as-a-service: the multi-tenant job layer over `repro.run`.

The facade runs one spec at a time; this package turns the same
machinery into a service that runs *hundreds* — the production leap the
ROADMAP's north star asks for:

* :mod:`~repro.serve.gateway` — a stdlib asyncio HTTP/JSON gateway
  accepting specs, streaming diagnostics live over chunked HTTP;
* :mod:`~repro.serve.hashing` — canonical content hashing of
  ``(spec, settings, seed)``, the result-cache key;
* :mod:`~repro.serve.cache` — the content-addressed result cache
  (identical submission → cached fields, zero recompute, survives
  restarts);
* :mod:`~repro.serve.jobs` — job records, the queued → running →
  done/failed/cancelled state machine, and the append-only JSONL
  history store every restart replays;
* :mod:`~repro.serve.scheduler` / :mod:`~repro.serve.pool` /
  :mod:`~repro.serve.pool_worker` — the priority queue draining into a
  persistent pool of worker processes (small jobs batched
  many-per-worker, large jobs through the distributed path,
  retry-on-worker-death);
* :mod:`~repro.serve.client` / :mod:`~repro.serve.top` — the blocking
  client the CLI and ``backend="service"`` use, and the live cluster
  view.
"""

from .cache import ResultCache
from .client import ServeClient, discover
from .gateway import Gateway
from .hashing import canonical_request, fingerprint
from .jobs import STATES, TERMINAL, TRANSITIONS, JobHistory, JobRecord
from .pool import WorkerPool
from .scheduler import Scheduler
from .top import render, watch

__all__ = [
    "Gateway",
    "JobHistory",
    "JobRecord",
    "ResultCache",
    "Scheduler",
    "ServeClient",
    "STATES",
    "TERMINAL",
    "TRANSITIONS",
    "WorkerPool",
    "canonical_request",
    "discover",
    "fingerprint",
    "render",
    "watch",
]
