"""Blocking HTTP client for the serve gateway (stdlib ``http.client``).

The client is what ``repro submit``/``repro jobs``/``repro result``/
``repro top`` and the facade's ``backend="service"`` path speak; it is
deliberately synchronous — one request per connection — because every
caller is either a CLI invocation or a worker-side facade call that
wants a result, not a socket to babysit.
"""

from __future__ import annotations

import http.client
import io
import json
import time
from pathlib import Path
from typing import Iterator

import numpy as np

from .jobs import TERMINAL

__all__ = ["ServeClient", "discover"]


def discover(serve_dir: str | Path) -> str:
    """The ``host:port`` a serve directory's gateway bound (or raise)."""
    path = Path(serve_dir) / "gateway.json"
    try:
        info = json.loads(path.read_text())
        return f"{info['host']}:{info['port']}"
    except (OSError, ValueError, KeyError) as exc:
        raise RuntimeError(
            f"no running gateway found at {path} — start one with "
            f"'repro serve --dir {serve_dir}'"
        ) from exc


class ServeClient:
    """Talk to one gateway at ``host:port``."""

    def __init__(self, address: str, timeout: float = 60.0) -> None:
        if isinstance(address, (Path,)) or (
            isinstance(address, str) and ":" not in address
        ):
            address = discover(address)
        host, _, port = str(address).rpartition(":")
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        status, body = self._request(method, path, payload)
        try:
            data = json.loads(body.decode() or "{}")
        except ValueError as exc:
            raise RuntimeError(
                f"{method} {path}: non-JSON response ({status})"
            ) from exc
        if status != 200:
            raise RuntimeError(
                f"{method} {path}: {status} — "
                f"{data.get('error', body[:200])}"
            )
        return data

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def healthz(self) -> bool:
        """Whether the gateway answers its liveness probe."""
        try:
            return bool(self._json("GET", "/healthz").get("ok"))
        except (OSError, RuntimeError):
            return False

    def submit(
        self,
        spec,
        settings=None,
        seed: int = 0,
        priority: int = 0,
        backend: str | None = None,
    ) -> dict:
        """Submit one request; returns the job record dict."""
        from ..distrib.spec import ProblemSpec

        if isinstance(spec, ProblemSpec):
            spec = json.loads(spec.to_json())
        if settings is not None and not isinstance(settings, dict):
            from dataclasses import asdict

            settings = asdict(settings)
            settings.pop("hosts", None)  # HostInfo objects: not JSON
        payload = {
            "spec": spec, "seed": seed, "priority": priority,
        }
        if settings is not None:
            payload["settings"] = settings
        if backend is not None:
            payload["backend"] = backend
        return self._json("POST", "/jobs", payload)

    def submit_batch(self, requests: list[dict]) -> list[dict]:
        """Submit many requests in one round trip (the sweep fan-out).

        Each entry is ``{"spec": ProblemSpec | dict, "settings": ...,
        "seed": ..., "priority": ..., "backend": ...}`` with everything
        but ``spec`` optional.  The gateway validates the whole batch
        before accepting any job.  Returns one job record per entry, in
        order.
        """
        from dataclasses import asdict

        from ..distrib.spec import ProblemSpec

        payload = []
        for req in requests:
            req = dict(req)
            spec = req["spec"]
            if isinstance(spec, ProblemSpec):
                req["spec"] = json.loads(spec.to_json())
            settings = req.get("settings")
            if settings is not None and not isinstance(settings, dict):
                settings = asdict(settings)
                settings.pop("hosts", None)  # HostInfo objects: not JSON
                req["settings"] = settings
            payload.append(req)
        return self._json("POST", "/jobs/batch", {"jobs": payload})["jobs"]

    def jobs(self) -> list[dict]:
        """Every job record the gateway knows, newest first."""
        return self._json("GET", "/jobs")["jobs"]

    def gc(self) -> dict:
        """Compact the gateway's job history; returns the stats."""
        return self._json("POST", "/admin/gc")

    def job(self, job_id: str) -> dict:
        """One job record."""
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued or running job."""
        return self._json("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """Record + run summary + artifact paths."""
        return self._json("GET", f"/jobs/{job_id}/result")

    def fields(self, job_id: str) -> dict[str, np.ndarray]:
        """The final global fields, downloaded and decoded."""
        status, body = self._request("GET", f"/jobs/{job_id}/fields")
        if status != 200:
            raise RuntimeError(
                f"GET /jobs/{job_id}/fields: {status} — {body[:200]}"
            )
        with np.load(io.BytesIO(body)) as npz:
            return {name: npz[name] for name in npz.files}

    def cluster(self) -> dict:
        """The live cluster snapshot ``repro top`` renders."""
        return self._json("GET", "/cluster")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> dict:
        """Block until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            rec = self.job(job_id)
            if rec["state"] in TERMINAL:
                return rec
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {rec['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)

    def stream(self, job_id: str) -> Iterator[dict]:
        """Follow the job's live NDJSON stream (chunked transfer).

        Yields ``{"event": "diagnostics", "record": {...}}`` lines as
        the run produces them, ending with the ``{"event": "end"}``
        line.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            resp = conn.getresponse()
            if resp.status != 200:
                raise RuntimeError(
                    f"GET /jobs/{job_id}/stream: {resp.status}"
                )
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()
