"""Job records and the append-only JSONL job-history store.

A submitted simulation becomes a :class:`JobRecord` marching the state
machine::

    queued ──> running ──> done
       │          │  └───> failed
       │          └──────> cancelled
       │          └──────> queued      (requeued after a worker death)
       └─────────> cancelled / failed

Every transition is appended as one event line to ``jobs.jsonl`` (the
history store) — the file is never rewritten, so a crashed gateway
loses at most a torn final line, and :meth:`JobHistory.replay` rebuilds
the full job table (last event wins) on restart.  The same file is what
``repro top`` and the ``/cluster`` endpoint read their per-job
timelines from.
"""

from __future__ import annotations

import fcntl
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from ..distrib.sync import _locked_append

__all__ = [
    "STATES",
    "TERMINAL",
    "TRANSITIONS",
    "JobRecord",
    "JobHistory",
]

#: Every state a job can be in.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL = frozenset({"done", "failed", "cancelled"})

#: Legal state-machine moves.  ``running -> queued`` is the
#: retry-on-worker-death path: the job goes back on the priority queue
#: with its retry counter bumped.
TRANSITIONS = {
    "queued": frozenset({"running", "cancelled", "failed"}),
    "running": frozenset({"done", "failed", "cancelled", "queued"}),
    "done": frozenset(),
    "failed": frozenset(),
    "cancelled": frozenset(),
}


@dataclass
class JobRecord:
    """One job's full lifecycle state (one line per event in history)."""

    job_id: str
    fingerprint: str
    state: str = "queued"
    priority: int = 0           # higher drains first
    seq: int = 0                # submission order (FIFO within priority)
    seed: int = 0
    backend: str = "serial"     # runtime the job executes on
    submitted: float = 0.0      # wall stamps (time.time epoch seconds)
    started: float = 0.0
    finished: float = 0.0
    worker: int = -1            # pool worker index (-1 = unassigned)
    retries: int = 0            # worker-death requeues so far
    cached: bool = False        # served from the result cache
    steps: int = 0
    elapsed: float = 0.0        # compute seconds (0 for cache hits)
    error: str = ""

    def advance(self, state: str) -> None:
        """Move to ``state``, enforcing the state machine."""
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        if state not in TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal transition {self.state!r} -> {state!r} "
                f"for job {self.job_id}"
            )
        self.state = state

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in TERMINAL

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**d)


class JobHistory:
    """Append-only JSONL event log of every job the gateway saw.

    One line per event: ``{"event": E, "wall": W, "job": {...record}}``.
    Appends are flock'd like every other shared file of a run; the
    reader tolerates a torn final line.
    """

    FILENAME = "jobs.jsonl"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @classmethod
    def for_dir(cls, serve_dir: str | Path) -> "JobHistory":
        """The canonical history location inside a serve directory."""
        return cls(Path(serve_dir) / cls.FILENAME)

    def append(self, event: str, record: JobRecord) -> None:
        """Append one event line for ``record``'s current state."""
        line = json.dumps({
            "event": event,
            "wall": time.time(),  # wall stamp of the event
            "job": record.to_dict(),
        }) + "\n"
        _locked_append(self.path, line)

    def read(self) -> list[dict]:
        """Every complete event line, oldest first."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            try:
                out.append(json.loads(line))
            except ValueError:
                continue  # torn final line from a crashed gateway
        return out

    def replay(self) -> dict[str, JobRecord]:
        """Rebuild the job table: job_id -> latest record state."""
        table: dict[str, JobRecord] = {}
        for event in self.read():
            job = event.get("job")
            if not isinstance(job, dict) or "job_id" not in job:
                continue
            try:
                table[job["job_id"]] = JobRecord.from_dict(job)
            except TypeError:
                continue  # event written by an incompatible version
        return table

    def next_seq(self) -> int:
        """First unused submission sequence number after a replay."""
        table = self.replay()
        if not table:
            return 0
        return max(rec.seq for rec in table.values()) + 1

    def compact(self) -> dict:
        """Rewrite the log keeping only the last event per job.

        The log is append-only by design, so a long-lived gateway's
        ``jobs.jsonl`` grows by one line per state transition forever;
        compaction garbage-collects the superseded transitions.  The
        surviving line per job is exactly what :meth:`replay` would
        have produced, so the rebuilt job table is unchanged.

        The rewrite happens under the same exclusive flock the
        appenders take, into a temp file atomically ``os.replace``'d
        over the log — a reader never sees a half-written file and a
        crash mid-compaction leaves the original intact.  Callers must
        still serialize with *future* appenders opening the old inode
        (the gateway runs this on its event loop, where all appends
        originate, or before the scheduler starts).

        Returns compaction stats (event and byte counts before/after).
        """
        if not self.path.exists():
            return {"events_before": 0, "events_after": 0,
                    "bytes_before": 0, "bytes_after": 0}
        with open(self.path, "a+") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.seek(0)
                text = fh.read()
                events_before = 0
                last: dict[str, str] = {}
                for line in text.splitlines():
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue  # torn final line: dropped
                    events_before += 1
                    job = event.get("job")
                    if not isinstance(job, dict) or "job_id" not in job:
                        continue
                    # dict insertion order keeps survivors chronological
                    # (by last event) for the timeline readers
                    last.pop(job["job_id"], None)
                    last[job["job_id"]] = line
                tmp = self.path.with_name(self.path.name + ".tmp")
                with open(tmp, "w") as out:
                    for line in last.values():
                        out.write(line + "\n")
                    out.flush()
                    os.fsync(out.fileno())
                os.replace(tmp, self.path)
                bytes_after = sum(len(l) + 1 for l in last.values())
                return {
                    "events_before": events_before,
                    "events_after": len(last),
                    "bytes_before": len(text),
                    "bytes_after": bytes_after,
                }
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
