"""The job scheduler: priority queue -> worker inboxes -> result cache.

One instance lives inside the gateway's event loop and owns the job
table.  All of its methods run on that single thread; everything shared
with the pool workers crosses through the filesystem (tickets in,
``result.json``/``error.json`` out), so there is no lock to take and a
crash on either side never leaves shared memory half-mutated.

Scheduling policy:

* jobs drain in ``(-priority, seq)`` order (strict priority, FIFO
  within a priority level);
* **small** jobs — grid below ``batch_nodes`` — are batched up to
  ``batch_size`` per worker assignment, amortizing ticket latency and
  keeping one warm interpreter marching many 2D problems back to back;
* **large** jobs get a worker to themselves and fan out through the
  normal distributed path inside that worker;
* a worker death requeues its in-flight jobs (``running -> queued``,
  bounded by ``max_retries``) — the serve-layer mirror of the
  monitor's checkpoint-restart contract;
* the first job to finish a fingerprint fills the result cache; every
  later identical submission is answered from the cache at submit time
  with zero compute.
"""

from __future__ import annotations

import heapq
import json
import logging
import time
from pathlib import Path

from .cache import ResultCache
from .hashing import canonical_request, fingerprint
from .jobs import JobHistory, JobRecord
from .pool import WorkerPool

__all__ = ["Scheduler"]

log = logging.getLogger("repro.serve")

#: Grids with at most this many nodes count as "small" and are batched.
DEFAULT_BATCH_NODES = 96 * 96


class Scheduler:
    """Single-threaded job scheduler over a :class:`WorkerPool`."""

    def __init__(
        self,
        serve_dir: str | Path,
        pool: WorkerPool,
        cache: ResultCache,
        history: JobHistory,
        batch_size: int = 4,
        batch_nodes: int = DEFAULT_BATCH_NODES,
        max_retries: int = 2,
    ) -> None:
        self.serve_dir = Path(serve_dir).resolve()
        self.pool = pool
        self.cache = cache
        self.history = history
        self.batch_size = max(1, batch_size)
        self.batch_nodes = batch_nodes
        self.max_retries = max_retries
        self.jobs_dir = self.serve_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        #: job_id -> latest record (authoritative in-memory table)
        self.records: dict[str, JobRecord] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._assigned: dict[int, set[str]] = {
            i: set() for i in range(pool.n_workers)
        }
        #: workers we killed ourselves to cancel a running job — their
        #: next "death" is expected, and batch-mates keep their retries
        self._cancel_kills: set[int] = set()
        self._logged: set[str] = set()
        self._seq = 0
        self.recovered = 0
        self._replay()

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        """Reload the job table from history; requeue interrupted jobs."""
        self.records = self.history.replay()
        if self.records:
            self._seq = max(r.seq for r in self.records.values()) + 1
        for rec in self.records.values():
            if rec.terminal:
                continue
            # A job left queued/running by a dead gateway: requeue it if
            # its job dir survived, fail it loudly otherwise.
            if (self.jobs_dir / rec.job_id / "job.json").exists():
                if rec.state == "running":
                    rec.advance("queued")
                rec.worker = -1
                heapq.heappush(
                    self._heap, (-rec.priority, rec.seq, rec.job_id)
                )
                self.history.append("recovered", rec)
                self.recovered += 1
            else:
                rec.error = "job directory lost across gateway restart"
                rec.advance("failed")
                rec.finished = time.time()  # wall stamp
                self.history.append("failed", rec)

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def validate(self, spec, settings=None, seed: int = 0) -> str:
        """Check one request without enqueuing anything.

        Runs exactly the canonicalization :meth:`submit` would, so a
        batch can be vetted all-or-nothing before its first job is
        accepted.  Returns the request fingerprint.
        """
        canon = canonical_request(spec, settings, seed)
        if int(canon["settings"]["steps"]) <= 0:
            raise ValueError("settings.steps must be a positive integer")
        return fingerprint(spec, settings, seed)

    def submit(
        self,
        spec,
        settings=None,
        seed: int = 0,
        priority: int = 0,
        backend: str | None = None,
    ) -> JobRecord:
        """Accept one request; answer from cache or enqueue a job."""
        canon = canonical_request(spec, settings, seed)
        fp = fingerprint(spec, settings, seed)
        steps = int(canon["settings"]["steps"])
        if steps <= 0:
            raise ValueError("settings.steps must be a positive integer")
        if backend is None:
            nodes = 1
            for side in canon["spec"]["grid_shape"]:
                nodes *= side
            backend = (
                "serial" if nodes <= self.batch_nodes else "distributed"
            )
        seq = self._seq
        self._seq += 1
        job_id = f"j{seq:06d}-{fp[:8]}"
        rec = JobRecord(
            job_id=job_id,
            fingerprint=fp,
            priority=priority,
            seq=seq,
            seed=seed,
            backend=backend,
            submitted=time.time(),  # wall stamp
            steps=steps,
        )
        entry = self.cache.get(fp)
        if entry is not None:
            rec.cached = True
            rec.worker = -1
            rec.elapsed = 0.0
            rec.advance("running")
            rec.advance("done")
            rec.finished = rec.submitted
            self.records[job_id] = rec
            self.history.append("cached", rec)
            return rec
        job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        if settings is None:
            settings_dict: dict = {"steps": steps}
        elif isinstance(settings, dict):
            settings_dict = dict(settings)
        else:
            from dataclasses import asdict

            settings_dict = asdict(settings)
            settings_dict.pop("hosts", None)  # HostInfo objects: not JSON
        (job_dir / "job.json").write_text(json.dumps({
            "job_id": job_id,
            "fingerprint": fp,
            "seq": seq,
            "seed": seed,
            "priority": priority,
            "backend": backend,
            "spec": canon["spec"],
            "settings": settings_dict,
            "submitted": rec.submitted,
        }, indent=2, sort_keys=True))
        self.records[job_id] = rec
        heapq.heappush(self._heap, (-priority, seq, job_id))
        self.history.append("submitted", rec)
        return rec

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job."""
        rec = self.records[job_id]
        if rec.terminal:
            return rec
        if rec.state == "running" and rec.worker >= 0:
            hb = self.pool.heartbeat(rec.worker)
            self._remove_ticket(rec.worker, job_id)
            self._assigned[rec.worker].discard(job_id)
            if hb is not None and hb.get("job") == job_id:
                # mid-execution: kill the process; ensure_alive respawns
                # it and the death handler skips this (cancelled) job.
                # Mark the kill as ours so the batch-mates it takes down
                # are requeued without being charged a retry.
                self._cancel_kills.add(rec.worker)
                self.pool.kill(rec.worker)
        rec.advance("cancelled")
        rec.finished = time.time()  # wall stamp
        self.history.append("cancelled", rec)
        return rec

    # ------------------------------------------------------------------
    # the tick (called periodically by the gateway loop)
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One scheduling round: collect, heal, assign."""
        self._collect_finished()
        self._handle_deaths()
        self._assign()

    def _collect_finished(self) -> None:
        for job_ids in self._assigned.values():
            for job_id in sorted(job_ids):
                try:
                    self._collect_one(job_ids, job_id)
                except Exception:  # noqa: BLE001 - isolate per job
                    # One bad job must not wedge collection (and with
                    # it death-handling and assignment) for the rest.
                    self._log_once(
                        f"collect:{job_id}",
                        f"collecting finished job {job_id} failed",
                    )

    def _collect_one(self, job_ids: set[str], job_id: str) -> None:
        rec = self.records[job_id]
        if rec.terminal:
            # cancelled under the worker's feet, or a previous tick
            # finalized the record but died before dropping it here
            job_ids.discard(job_id)
            return
        job_dir = self.jobs_dir / job_id
        result_path = job_dir / "result.json"
        error_path = job_dir / "error.json"
        if result_path.exists():
            try:
                result = json.loads(result_path.read_text())
            except ValueError:
                return  # torn: the worker is mid-replace
            rec.elapsed = float(result.get("elapsed", 0.0))
            rec.advance("done")
            rec.finished = time.time()  # wall stamp
            try:
                self.cache.put(rec.fingerprint, rec, job_dir, result)
            except Exception:  # noqa: BLE001 - cache is best-effort
                # A failed fill costs a later recompute, not the job.
                self._log_once(
                    f"cache:{rec.fingerprint}",
                    f"cache fill for job {job_id} failed",
                )
            self.history.append("done", rec)
            job_ids.discard(job_id)
        elif error_path.exists():
            try:
                err = json.loads(error_path.read_text())
            except ValueError:
                return
            rec.error = str(err.get("error", ""))[-2000:]
            rec.advance("failed")
            rec.finished = time.time()  # wall stamp
            self.history.append("failed", rec)
            job_ids.discard(job_id)

    def _handle_deaths(self) -> None:
        for worker in self.pool.ensure_alive():
            # A kill we ordered ourselves (job cancellation) is not a
            # real worker death: the cancelled job's batch-mates are
            # requeued without touching their retry budget.
            cancel_kill = worker in self._cancel_kills
            self._cancel_kills.discard(worker)
            for job_id in sorted(self._assigned[worker]):
                self._remove_ticket(worker, job_id)
                rec = self.records[job_id]
                if rec.terminal:
                    continue
                if cancel_kill or rec.retries < self.max_retries:
                    if not cancel_kill:
                        rec.retries += 1
                    rec.worker = -1
                    rec.advance("queued")
                    heapq.heappush(
                        self._heap, (-rec.priority, rec.seq, rec.job_id)
                    )
                    self.history.append("requeued", rec)
                else:
                    rec.error = (
                        f"worker {worker} died and the job exhausted "
                        f"{self.max_retries} retries"
                    )
                    rec.advance("failed")
                    rec.finished = time.time()  # wall stamp
                    self.history.append("failed", rec)
            self._assigned[worker].clear()

    def _log_once(self, key: str, msg: str) -> None:
        """Log the active exception once per distinct key, not per tick."""
        if key not in self._logged:
            self._logged.add(key)
            log.exception(msg)

    def _assign(self) -> None:
        for worker in range(self.pool.n_workers):
            if self._assigned[worker] or not self.pool.alive(worker):
                continue
            batch = self._next_batch()
            if not batch:
                return
            for rec in batch:
                rec.worker = worker
                rec.advance("running")
                rec.started = time.time()  # wall stamp
                ticket = (
                    self.pool.inbox(worker)
                    / f"{rec.seq:08d}_{rec.job_id}.json"
                )
                ticket.write_text(json.dumps({"job_id": rec.job_id}))
                self._assigned[worker].add(rec.job_id)
                self.history.append("assigned", rec)

    def _next_batch(self) -> list[JobRecord]:
        """Pop the next worker assignment off the priority queue.

        A distributed job rides alone; serial/threaded jobs are batched
        up to ``batch_size`` so one warm worker process marches them
        back to back.
        """
        batch: list[JobRecord] = []
        while self._heap and len(batch) < self.batch_size:
            _, _, job_id = self._heap[0]
            rec = self.records[job_id]
            if rec.state != "queued":
                heapq.heappop(self._heap)  # cancelled while queued
                continue
            if rec.backend == "distributed" and batch:
                break
            heapq.heappop(self._heap)
            batch.append(rec)
            if rec.backend == "distributed":
                break
        return batch

    def _remove_ticket(self, worker: int, job_id: str) -> None:
        rec = self.records[job_id]
        ticket = (
            self.pool.inbox(worker) / f"{rec.seq:08d}_{job_id}.json"
        )
        ticket.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # queries (gateway endpoints)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting for a worker."""
        return sum(
            1 for r in self.records.values() if r.state == "queued"
        )

    def job_dir(self, job_id: str) -> Path:
        """A job's artifact directory."""
        return self.jobs_dir / job_id

    def result_payload(self, job_id: str) -> dict:
        """Record + run summary + artifact paths for a finished job."""
        rec = self.records[job_id]
        payload: dict = {"record": rec.to_dict()}
        if rec.cached:
            entry = self.cache.get(rec.fingerprint)
            if entry is not None:
                payload["result"] = entry.get("result")
                payload["fields"] = entry["fields"]
                payload["workdir"] = entry.get("workdir")
                payload["computed_by"] = entry["record"].get("job_id")
            return payload
        job_dir = self.job_dir(job_id)
        result_path = job_dir / "result.json"
        if result_path.exists():
            try:
                payload["result"] = json.loads(result_path.read_text())
            except ValueError:
                payload["result"] = None
        if (job_dir / "fields.npz").exists():
            payload["fields"] = str(job_dir / "fields.npz")
        payload["workdir"] = str(job_dir / "run")
        if rec.state == "failed":
            payload["error"] = rec.error
        return payload

    def fields_file(self, job_id: str) -> Path | None:
        """Path of the job's final-fields npz (cache-aware)."""
        rec = self.records[job_id]
        if rec.cached:
            path = self.cache.fields_path(rec.fingerprint)
            return path if path.exists() else None
        path = self.job_dir(job_id) / "fields.npz"
        return path if path.exists() else None

    def diagnostics_file(self, job_id: str) -> Path:
        """The diagnostics.jsonl a live stream of this job tails."""
        rec = self.records[job_id]
        if rec.cached:
            entry = self.cache.get(rec.fingerprint)
            if entry is not None and entry.get("workdir"):
                return Path(entry["workdir"]) / "diagnostics.jsonl"
        return self.job_dir(job_id) / "run" / "diagnostics.jsonl"
