"""The asyncio HTTP/JSON gateway: simulation-as-a-service, stdlib only.

A handwritten HTTP/1.1 server (``asyncio.start_server`` + a small
request parser — no framework, no new runtime deps) in front of the
:class:`~repro.serve.scheduler.Scheduler`.  One event loop owns every
mutation of the job table; the compute happens in the pool's worker
*processes*, so the gateway stays responsive while hundreds of jobs
march.

Routes (all JSON unless noted)::

    GET    /healthz              liveness probe
    POST   /jobs                 submit {spec, settings, seed, priority,
                                 backend} -> the job record (cached
                                 submissions come back already done)
    POST   /jobs/batch           submit {"jobs": [{...}, ...]} in one
                                 round trip -> {"jobs": [record, ...]}
                                 (the sweep driver's fan-out path)
    POST   /admin/gc             compact jobs.jsonl to the last event
                                 per job -> compaction stats
    GET    /jobs                 every job record, newest first
    GET    /jobs/<id>            one job record
    DELETE /jobs/<id>            cancel (queued or running)
    GET    /jobs/<id>/result     record + run summary + artifact paths
    GET    /jobs/<id>/fields     the final global fields (npz bytes)
    GET    /jobs/<id>/stream     chunked NDJSON: the job's
                                 diagnostics.jsonl tailed live, then one
                                 {"event": "end", ...} line with the
                                 final state and trace summary
    GET    /cluster              workers + hosts + queue + cache stats
                                 (what ``repro top`` renders)

``gateway.json`` in the serve directory records the bound address so
CLI clients can discover a running gateway from the directory alone.

The gateway is **unauthenticated**: anyone who can reach the port can
submit jobs and read results.  Keep it on the loopback default, or put
an authenticating reverse proxy in front before binding ``--host`` to
anything wider.  Request bodies are capped at :data:`MAX_BODY` bytes
(413 beyond it) so a client cannot balloon the gateway's memory.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from pathlib import Path

from .cache import ResultCache
from .jobs import JobHistory
from .pool import WorkerPool
from .scheduler import Scheduler

__all__ = ["Gateway"]

log = logging.getLogger("repro.serve")

_JSON = "application/json"
_NDJSON = "application/x-ndjson"

#: Largest request body the gateway will read into memory (a spec plus
#: settings is a few KB; anything near this is hostile or a bug).
MAX_BODY = 8 * 1024 * 1024

#: ``jobs.jsonl`` size past which a booting gateway compacts the job
#: history down to the last event per job before replaying it.
HISTORY_GC_BYTES = 4 * 1024 * 1024


class _HttpError(Exception):
    """An error with a status code, rendered as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class Gateway:
    """One serve directory's HTTP gateway + scheduler + worker pool."""

    def __init__(
        self,
        serve_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        batch_size: int = 4,
        poll: float = 0.05,
        max_retries: int = 2,
        history_gc_bytes: int = HISTORY_GC_BYTES,
    ) -> None:
        self.serve_dir = Path(serve_dir).resolve()
        self.serve_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = port
        self.poll = poll
        self.pool = WorkerPool(self.serve_dir, n_workers=workers)
        self.cache = ResultCache(self.serve_dir / "cache")
        self.history = JobHistory.for_dir(self.serve_dir)
        # GC an overgrown history before the scheduler replays it: at
        # boot no appender is live yet, so the rewrite is race-free
        try:
            if (history_gc_bytes > 0
                    and self.history.path.exists()
                    and self.history.path.stat().st_size
                    > history_gc_bytes):
                stats = self.history.compact()
                log.info("compacted job history: %s", stats)
        except OSError:
            log.exception("job-history compaction failed (continuing)")
        self.scheduler = Scheduler(
            self.serve_dir, self.pool, self.cache, self.history,
            batch_size=batch_size, max_retries=max_retries,
        )
        self._tick_errors: set[str] = set()
        self._server: asyncio.base_events.Server | None = None
        self._tick_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the pool, bind the server, start the scheduler tick."""
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        (self.serve_dir / "gateway.json").write_text(json.dumps({
            "host": self.host,
            "port": self.port,
            "workers": self.pool.n_workers,
            "wall": time.time(),  # wall stamp of the boot
        }, indent=2))
        self._tick_task = asyncio.get_running_loop().create_task(
            self._tick_loop()
        )

    async def stop(self) -> None:
        """Stop accepting, cancel the tick, drain the pool."""
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.stop()

    async def _tick_loop(self) -> None:
        while True:
            try:
                self.scheduler.tick()
            except Exception as exc:  # noqa: BLE001 - loop must survive
                # The scheduler isolates per-job errors itself; anything
                # that still reaches here is logged once per distinct
                # error so a recurring failure is not a silent stall.
                key = f"{type(exc).__name__}: {exc}"
                if key not in self._tick_errors:
                    self._tick_errors.add(key)
                    log.exception("scheduler tick failed (loop continues)")
            await asyncio.sleep(self.poll)

    async def run_forever(self) -> None:
        """Start and serve until cancelled (the ``repro serve`` path)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    @property
    def address(self) -> str:
        """``host:port`` once the server is bound."""
        return f"{self.host}:{self.port}"

    # -- background-thread embedding (tests, benchmarks) ---------------
    def start_background(self, timeout: float = 30.0) -> "Gateway":
        """Run the gateway in a daemon thread; returns once bound."""
        started = threading.Event()
        failure: list[BaseException] = []

        def _runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # noqa: BLE001 - reported below
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_runner, name="repro-serve-gateway", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise TimeoutError("gateway did not come up in time")
        if failure:
            raise failure[0]
        return self

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop a background gateway started by :meth:`start_background`."""
        if self._loop is None or self._thread is None:
            return
        fut = asyncio.run_coroutine_threadsafe(self.stop(), self._loop)
        fut.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(writer, *request)
        except _HttpError as exc:
            await self._send_json(
                writer, exc.status, {"error": str(exc)}
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - render, don't die
            try:
                await self._send_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line.strip():
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError as exc:
            raise _HttpError(400, f"malformed request line: {exc}") from exc
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise _HttpError(400, f"bad Content-Length: {exc}") from exc
        if length < 0:
            raise _HttpError(400, "bad Content-Length: negative")
        if length > MAX_BODY:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY}-byte limit",
            )
        if length:
            body = await reader.readexactly(length)
        return method.upper(), target.split("?", 1)[0], headers, body

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload
    ) -> None:
        body = json.dumps(payload).encode()
        await self._send_response(writer, status, body, _JSON)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, writer, method, target, headers, body):
        parts = [p for p in target.split("/") if p]
        if target == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
        elif target == "/jobs" and method == "POST":
            await self._post_job(writer, body)
        elif target == "/jobs/batch" and method == "POST":
            await self._post_batch(writer, body)
        elif target == "/admin/gc" and method == "POST":
            # runs on the event loop, where every append originates, so
            # the rewrite cannot race a state transition
            await self._send_json(writer, 200, self.history.compact())
        elif target == "/jobs" and method == "GET":
            records = sorted(
                self.scheduler.records.values(),
                key=lambda r: -r.seq,
            )
            await self._send_json(
                writer, 200, {"jobs": [r.to_dict() for r in records]}
            )
        elif target == "/cluster" and method == "GET":
            await self._send_json(writer, 200, self._cluster_payload())
        elif len(parts) >= 2 and parts[0] == "jobs":
            await self._job_route(writer, method, parts)
        else:
            raise _HttpError(404, f"no route for {method} {target}")

    def _submit_one(self, req: dict):
        if not isinstance(req, dict) or "spec" not in req:
            raise _HttpError(400, 'body must be {"spec": {...}, ...}')
        try:
            return self.scheduler.submit(
                req["spec"],
                settings=req.get("settings"),
                seed=int(req.get("seed", 0)),
                priority=int(req.get("priority", 0)),
                backend=req.get("backend"),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise _HttpError(400, str(exc)) from exc

    async def _post_job(self, writer, body: bytes) -> None:
        try:
            req = json.loads(body.decode() or "{}")
        except ValueError as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from exc
        rec = self._submit_one(req)
        await self._send_json(writer, 200, rec.to_dict())

    async def _post_batch(self, writer, body: bytes) -> None:
        """Submit many jobs in one round trip (the sweep fan-out).

        All-or-nothing validation: the whole batch is checked before
        any job is enqueued, so a typo in point 37 of a sweep does not
        leave 36 orphans running.
        """
        try:
            req = json.loads(body.decode() or "{}")
        except ValueError as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from exc
        jobs = req.get("jobs") if isinstance(req, dict) else None
        if not isinstance(jobs, list) or not jobs:
            raise _HttpError(
                400, 'body must be {"jobs": [{"spec": {...}, ...}]}'
            )
        for entry in jobs:
            if not isinstance(entry, dict) or "spec" not in entry:
                raise _HttpError(
                    400, 'each batch entry must be {"spec": {...}, ...}'
                )
            try:
                self.scheduler.validate(
                    entry["spec"],
                    settings=entry.get("settings"),
                    seed=int(entry.get("seed", 0)),
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise _HttpError(400, str(exc)) from exc
        records = [self._submit_one(entry) for entry in jobs]
        await self._send_json(
            writer, 200, {"jobs": [r.to_dict() for r in records]}
        )

    def _record(self, job_id: str):
        rec = self.scheduler.records.get(job_id)
        if rec is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return rec

    async def _job_route(self, writer, method, parts) -> None:
        job_id = parts[1]
        sub = parts[2] if len(parts) > 2 else ""
        rec = self._record(job_id)
        if method == "DELETE" and not sub:
            rec = self.scheduler.cancel(job_id)
            await self._send_json(writer, 200, rec.to_dict())
        elif method != "GET":
            raise _HttpError(405, f"{method} not allowed here")
        elif not sub:
            await self._send_json(writer, 200, rec.to_dict())
        elif sub == "result":
            await self._send_json(
                writer, 200, self.scheduler.result_payload(job_id)
            )
        elif sub == "fields":
            path = self.scheduler.fields_file(job_id)
            if path is None:
                raise _HttpError(
                    404, f"job {job_id} has no fields yet "
                         f"(state {rec.state})"
                )
            await self._send_response(
                writer, 200, path.read_bytes(),
                "application/octet-stream",
            )
        elif sub == "stream":
            await self._stream_job(writer, job_id)
        else:
            raise _HttpError(404, f"unknown job endpoint {sub!r}")

    # ------------------------------------------------------------------
    # live streaming (chunked transfer)
    # ------------------------------------------------------------------
    async def _stream_job(self, writer, job_id: str) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {_NDJSON}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii"))
        await writer.drain()

        async def chunk(line: str) -> None:
            data = (line.rstrip("\n") + "\n").encode()
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()

        diag_path = self.scheduler.diagnostics_file(job_id)
        offset = 0
        while True:
            rec = self._record(job_id)
            offset = await self._drain_diag(diag_path, offset, chunk)
            if rec.terminal:
                break
            await asyncio.sleep(0.1)
        payload = self.scheduler.result_payload(job_id)
        summary = payload.get("result") or {}
        await chunk(json.dumps({
            "event": "end",
            "state": rec.state,
            "cached": rec.cached,
            "error": rec.error,
            "elapsed": rec.elapsed,
            "utilization": summary.get("utilization"),
            "trace_path": summary.get("trace_path"),
        }))
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _drain_diag(self, path: Path, offset: int, chunk) -> int:
        """Forward complete new lines of ``path``; returns new offset."""
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
        except OSError:
            return offset
        while True:
            cut = data.find(b"\n")
            if cut < 0:
                return offset
            line = data[:cut]
            data = data[cut + 1:]
            offset += cut + 1
            if line.strip():
                await chunk(
                    json.dumps({
                        "event": "diagnostics",
                        "record": json.loads(line.decode()),
                    })
                )

    # ------------------------------------------------------------------
    # cluster view
    # ------------------------------------------------------------------
    def _cluster_payload(self) -> dict:
        records = sorted(
            self.scheduler.records.values(), key=lambda r: -r.seq
        )
        by_state: dict[str, int] = {}
        for rec in records:
            by_state[rec.state] = by_state.get(rec.state, 0) + 1
        return {
            "wall": time.time(),  # wall stamp of the snapshot
            "address": self.address,
            "workers": self.pool.status(),
            "worker_deaths": self.pool.deaths,
            "hosts": [
                {
                    "name": h.name, "model": h.model, "rank": h.rank,
                    "load5": h.load5, "load15": h.load15,
                }
                for h in self.pool.hostdb.hosts()
            ],
            "queue_depth": self.scheduler.queue_depth,
            "jobs_by_state": by_state,
            "jobs": [r.to_dict() for r in records[:50]],
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": len(self.cache),
            },
        }
