"""The persistent worker-process pool behind the gateway.

Spawning reuses the distributed runtime's submit machinery verbatim:
the same absolutized-``PYTHONPATH`` environment
(:func:`repro.distrib.submit._worker_env`), the same append-mode log
files, and the same :class:`~repro.distrib.hostdb.HostDB` registry —
each pool worker occupies a virtual ``pool-<i>`` host, so the existing
host-level ops surface (`repro top`, load queries) sees service workers
exactly as it sees distributed ranks.

Liveness is the monitor's contract scaled down: :meth:`ensure_alive`
polls exit codes, respawns the dead, and reports who died so the
scheduler can requeue their in-flight jobs (retry-on-worker-death).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from ..distrib.hostdb import HostDB, HostInfo
from ..distrib.submit import _worker_env

__all__ = ["WorkerPool"]


class WorkerPool:
    """A fixed-size pool of persistent ``pool_worker`` processes."""

    def __init__(self, serve_dir: str | Path, n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValueError("the pool needs at least one worker")
        self.serve_dir = Path(serve_dir).resolve()
        self.n_workers = n_workers
        self.pool_dir = self.serve_dir / "pool"
        self.hostdb = HostDB(self.serve_dir / "hosts.json")
        self.procs: dict[int, subprocess.Popen] = {}
        self.deaths = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register the virtual hosts and spawn every worker."""
        (self.pool_dir / "hb").mkdir(parents=True, exist_ok=True)
        (self.pool_dir / "logs").mkdir(parents=True, exist_ok=True)
        (self.pool_dir / "stop").unlink(missing_ok=True)
        # Tickets from a previous gateway incarnation are void: the
        # scheduler re-tickets every job it recovers, so a stale ticket
        # left in an inbox (graceful stop drains only the current one)
        # would have a second worker race the recovered assignment in
        # the same job directory.  Clear every inbox — including those
        # beyond n_workers, from a pool that shrank — before any worker
        # can pick one up.
        for inbox in self.pool_dir.glob("inbox-*"):
            for stale in inbox.glob("*.json"):
                stale.unlink(missing_ok=True)
        self.hostdb.initialize([
            HostInfo(name=self._host_name(i), model="715/50", rank=i)
            for i in range(self.n_workers)
        ])
        for i in range(self.n_workers):
            self.inbox(i).mkdir(parents=True, exist_ok=True)
            self.spawn(i)

    def spawn(self, index: int) -> subprocess.Popen:
        """(Re)start one pool worker process."""
        log = self.pool_dir / "logs" / f"worker-{index:02d}.log"
        with open(log, "ab") as fh:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.serve.pool_worker",
                    str(self.serve_dir), str(index),
                ],
                stdout=fh,
                stderr=subprocess.STDOUT,
                cwd=str(self.serve_dir),
                env=_worker_env(),
            )
        self.procs[index] = proc
        return proc

    def stop(self, timeout: float = 10.0) -> None:
        """Ask every worker to drain out, then kill stragglers."""
        (self.pool_dir / "stop").touch()
        for proc in self.procs.values():
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout)
        self.procs.clear()

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def alive(self, index: int) -> bool:
        """Whether worker ``index`` is currently running."""
        proc = self.procs.get(index)
        return proc is not None and proc.poll() is None

    def ensure_alive(self) -> list[int]:
        """Respawn any dead worker; returns the indices that had died."""
        dead = [i for i in range(self.n_workers) if not self.alive(i)]
        for i in dead:
            self.deaths += 1
            self.spawn(i)
        return dead

    def kill(self, index: int) -> None:
        """Force-kill one worker (cancellation of its running job)."""
        proc = self.procs.get(index)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # ------------------------------------------------------------------
    # scheduler-facing file surfaces
    # ------------------------------------------------------------------
    def _host_name(self, index: int) -> str:
        return f"pool-{index:02d}"

    def inbox(self, index: int) -> Path:
        """The ticket directory worker ``index`` drains."""
        return self.pool_dir / f"inbox-{index:02d}"

    def heartbeat(self, index: int) -> dict | None:
        """Worker ``index``'s last heartbeat, or None (torn/missing)."""
        path = self.pool_dir / "hb" / f"pool{index:04d}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def status(self) -> list[dict]:
        """One status dict per worker (for ``/cluster`` and top)."""
        out = []
        for i in range(self.n_workers):
            proc = self.procs.get(i)
            out.append({
                "index": i,
                "host": self._host_name(i),
                "alive": self.alive(i),
                "pid": proc.pid if proc is not None else None,
                "heartbeat": self.heartbeat(i),
            })
        return out
