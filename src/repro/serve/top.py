"""``repro top`` — a refreshing per-host / per-job cluster view.

Rendering is a pure function of one ``/cluster`` snapshot (plus the
wall clock it carries), so tests can assert on the text without a
gateway; :func:`watch` adds the terminal refresh loop around it.
"""

from __future__ import annotations

import sys
import time

__all__ = ["render", "watch"]

_CLEAR = "\x1b[2J\x1b[H"


def _age(now: float, wall: float | None) -> str:
    if not wall:
        return "-"
    return f"{max(now - wall, 0.0):5.1f}s"


def render(snap: dict, max_jobs: int = 12) -> str:
    """One text frame of the cluster view from a ``/cluster`` snapshot."""
    now = snap.get("wall", 0.0)
    cache = snap.get("cache", {})
    by_state = snap.get("jobs_by_state", {})
    lines = [
        f"repro serve @ {snap.get('address', '?')}   "
        f"queue {snap.get('queue_depth', 0)}   "
        f"cache {cache.get('hits', 0)} hit / "
        f"{cache.get('misses', 0)} miss / "
        f"{cache.get('entries', 0)} stored   "
        f"worker deaths {snap.get('worker_deaths', 0)}",
        "jobs: " + (
            "  ".join(
                f"{state}={n}" for state, n in sorted(by_state.items())
            ) or "none yet"
        ),
        "",
        f"{'WORKER':<10}{'HOST':<10}{'PID':<8}{'STATE':<9}"
        f"{'JOB':<20}{'DONE':<6}{'HB AGE':<8}",
    ]
    for w in snap.get("workers", []):
        hb = w.get("heartbeat") or {}
        lines.append(
            f"{w.get('index', '?'):<10}"
            f"{w.get('host', '?'):<10}"
            f"{str(w.get('pid', '-')):<8}"
            f"{(hb.get('state') if w.get('alive') else 'dead'):<9}"
            f"{str(hb.get('job') or '-'):<20}"
            f"{hb.get('jobs_done', 0):<6}"
            f"{_age(now, hb.get('wall')):<8}"
        )
    lines.append("")
    lines.append(
        f"{'JOB':<20}{'STATE':<11}{'BACKEND':<12}{'PRI':<5}"
        f"{'WORKER':<8}{'RETRY':<7}{'ELAPSED':<9}{'CACHED':<7}"
    )
    for job in snap.get("jobs", [])[:max_jobs]:
        lines.append(
            f"{job.get('job_id', '?'):<20}"
            f"{job.get('state', '?'):<11}"
            f"{job.get('backend', '?'):<12}"
            f"{job.get('priority', 0):<5}"
            f"{str(job.get('worker', -1)):<8}"
            f"{job.get('retries', 0):<7}"
            f"{job.get('elapsed', 0.0):<9.3f}"
            f"{str(bool(job.get('cached'))):<7}"
        )
    return "\n".join(lines)


def watch(
    client,
    interval: float = 1.0,
    iterations: int | None = None,
    out=None,
) -> None:
    """Refreshing terminal loop over :func:`render`.

    ``iterations`` bounds the loop (None = until interrupted);
    ``out`` defaults to stdout and is parameterized for tests.
    """
    out = out or sys.stdout
    n = 0
    try:
        while iterations is None or n < iterations:
            snap = client.cluster()
            out.write(_CLEAR + render(snap) + "\n")
            out.flush()
            n += 1
            if iterations is not None and n >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
