"""Canonical content hashing of one simulation request.

The result cache's contract is *physical identity*: two submissions
whose ``(spec, settings, seed)`` describe the same computation must map
to the same fingerprint no matter how they were spelled — field order
in a JSON body, tuples vs lists, defaults left implicit vs written out.
Conversely any knob that can change the produced fields (grid, physical
parameters, step count, diagnostic abort thresholds, kernel backend)
must change the fingerprint.

Operational knobs deliberately do **not** participate: transport,
timeouts, checkpoint cadence, heartbeat period, tracing, synthetic step
delays and host lists change *how* a run executes, not *what* it
computes — the repo's integration tests hold the runtimes bit-for-bit
equal across all of them.  The kernel backend knobs stay in the key
because backend parity is only guaranteed to ~1e-10, not bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["PHYSICAL_KNOBS", "canonical_request", "fingerprint"]

#: The settings knobs that can change the produced fields.  Everything
#: else in :class:`~repro.distrib.RunSettings` is operational and is
#: excluded from the cache key (see module docstring).
PHYSICAL_KNOBS = (
    "steps",
    "diag_every",
    "diag_vmax",
    "diag_algorithm",
    "nan_step",
    "nan_rank",
    "fault_plan",
    "backend",
    "backends",
)

#: Bump when the canonical form itself changes, so stale cache entries
#: from an older layout can never satisfy a new request.
_CANON_VERSION = 1


def _canonical_spec(spec) -> dict:
    """Normalize a ProblemSpec (or a dict of its fields) to one dict.

    Round-tripping through :class:`~repro.distrib.ProblemSpec` applies
    the class' own normalization (tuples, defaulted fields), and its
    ``to_json`` sorts keys — so two dicts that build the same problem
    serialize identically.
    """
    from ..distrib.spec import ProblemSpec

    if not isinstance(spec, ProblemSpec):
        spec = ProblemSpec.from_json(json.dumps(dict(spec)))
    return json.loads(spec.to_json())


def _canonical_settings(settings) -> dict:
    """Project settings onto the physical knobs, defaults filled in.

    ``settings`` may be a :class:`~repro.distrib.RunSettings`, a plain
    dict of knob overrides (the gateway's JSON body), or ``None``.
    Unknown keys in a dict are rejected loudly — a typo'd physical knob
    silently ignored would alias two different computations.
    """
    from dataclasses import fields

    from ..distrib.orchestrator import RunSettings

    if settings is None:
        settings = {}
    if isinstance(settings, dict):
        known = {f.name for f in fields(RunSettings)}
        unknown = set(settings) - known
        if unknown:
            raise ValueError(
                f"unknown settings knob(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        base = RunSettings(steps=int(settings.get("steps", 0)))
        out = {
            name: settings.get(name, getattr(base, name))
            for name in PHYSICAL_KNOBS
        }
    else:
        out = {name: getattr(settings, name) for name in PHYSICAL_KNOBS}
    # JSON round-trip flattens tuples to lists so spelling cannot leak
    # into the hash.
    return json.loads(json.dumps(out))


def canonical_request(spec, settings=None, seed: int = 0) -> dict:
    """The canonical ``(spec, settings, seed)`` form the cache hashes."""
    return {
        "version": _CANON_VERSION,
        "spec": _canonical_spec(spec),
        "settings": _canonical_settings(settings),
        "seed": int(seed),
    }


def fingerprint(spec, settings=None, seed: int = 0) -> str:
    """SHA-256 hex digest of the canonical request."""
    canon = canonical_request(spec, settings, seed)
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
