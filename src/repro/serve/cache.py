"""Content-addressed result cache: identical request, zero recompute.

Entries live under ``cache/<fingerprint>/`` as two files: the final
global fields (``fields.npz``, copied from the computing job's artifact
dir) and ``entry.json`` (the computing job's record, run summary and
artifact paths).  The entry file is written last and atomically
(``os.replace``), so a crash mid-``put`` leaves no half-entry a later
gateway could serve — the cache survives restarts by construction, no
index to rebuild.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from .jobs import JobRecord

__all__ = ["ResultCache"]


class ResultCache:
    """Filesystem result cache keyed by request fingerprint."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _entry_dir(self, fp: str) -> Path:
        return self.root / fp

    def fields_path(self, fp: str) -> Path:
        """Where a hit's ``fields.npz`` lives."""
        return self._entry_dir(fp) / "fields.npz"

    def get(self, fp: str) -> dict | None:
        """The cache entry for ``fp``, or None (counts hit/miss)."""
        entry_path = self._entry_dir(fp) / "entry.json"
        try:
            entry = json.loads(entry_path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        entry["fields"] = str(self.fields_path(fp))
        self.hits += 1
        return entry

    def put(self, fp: str, record: JobRecord, job_dir: str | Path,
            result: dict) -> bool:
        """Store a finished job's artifacts under its fingerprint.

        First writer wins: a fingerprint already cached (two identical
        jobs in flight before either finished) is left untouched.
        Returns whether this call created the entry.
        """
        entry_dir = self._entry_dir(fp)
        if (entry_dir / "entry.json").exists():
            return False
        job_dir = Path(job_dir)
        fields_src = job_dir / "fields.npz"
        if not fields_src.exists():
            raise FileNotFoundError(
                f"job {record.job_id} finished without {fields_src}"
            )
        entry_dir.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(fields_src, entry_dir / "fields.npz")
        entry = {
            "fingerprint": fp,
            "record": record.to_dict(),
            "result": result,
            "workdir": str(job_dir / "run"),
        }
        tmp = entry_dir / "entry.json.tmp"
        tmp.write_text(json.dumps(entry, indent=2, sort_keys=True))
        os.replace(tmp, entry_dir / "entry.json")
        return True

    def __len__(self) -> int:
        """Number of complete entries on disk."""
        return sum(
            1 for p in self.root.glob("*/entry.json") if p.is_file()
        )
