"""One persistent pool worker process: ``python -m repro.serve.pool_worker``.

The scheduler batches small jobs many-per-worker by dropping ticket
files into this process' inbox directory; the worker drains them in
filename (= queue) order, running each job through :func:`repro.run`
inside its own long-lived interpreter — so a batch of N small 2D jobs
pays interpreter/import startup once, and a job on the ``threaded``
backend reuses the persistent thread pool across jobs.  Large jobs
arrive as a batch of one and fan out through the normal distributed
path (the worker plays the paper's designated submit workstation).

Everything the worker says to the scheduler goes through the
filesystem, mirroring the distributed runtime's control plane:

* ``pool/hb/pool<index>.json`` — heartbeat (state, current job, jobs
  done), rewritten atomically so the gateway/`repro top` never read a
  torn line;
* ``jobs/<id>/result.json`` + ``fields.npz`` — success artifacts,
  written atomically, result last (the scheduler treats its presence as
  the commit point);
* ``jobs/<id>/error.json`` — a deterministic failure (no retry).

A worker death (crash, chaos kill, OOM) simply stops the heartbeat and
leaves no result; the scheduler's liveness check respawns the process
and requeues the in-flight jobs — the same detect-and-restart contract
the distributed monitor implements for rank processes.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import time
import traceback
from pathlib import Path

__all__ = ["main", "run_job"]

#: Seconds between inbox polls when idle.
POLL = 0.05


def _atomic_write(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)


def _heartbeat(path: Path, index: int, state: str, job: str | None,
               jobs_done: int) -> None:
    _atomic_write(path, {
        "index": index,
        "pid": os.getpid(),
        "state": state,                # idle | running | stopped
        "job": job,
        "jobs_done": jobs_done,
        "wall": time.time(),           # wall stamp for staleness checks
    })


def _build_settings(knobs: dict, job_id: str):
    """A RunSettings from the submitted knob dict, tagged with the job."""
    from dataclasses import fields

    from ..distrib.orchestrator import RunSettings

    known = {f.name for f in fields(RunSettings)}
    kwargs = {k: v for k, v in knobs.items() if k in known}
    kwargs.setdefault("steps", 0)
    settings = RunSettings(**kwargs)
    settings.job_id = job_id
    return settings


def run_job(serve_dir: Path, job_id: str, worker_index: int) -> None:
    """Execute one job from its ``job.json`` and commit the artifacts.

    Idempotent across retries: a half-written ``run/`` directory from a
    previous incarnation is discarded before starting over.
    """
    import numpy as np

    import repro

    from ..distrib.spec import ProblemSpec

    job_dir = serve_dir / "jobs" / job_id
    req = json.loads((job_dir / "job.json").read_text())
    try:
        spec = ProblemSpec.from_json(json.dumps(req["spec"]))
        settings = _build_settings(req.get("settings", {}), job_id)
        backend = req.get("backend", "serial")
        seed = int(req.get("seed", 0))
        # The seed is part of the cache fingerprint, so it must also be
        # part of the computation: seed 0 is the canonical start (the
        # spec's declarative init, rest by default), any other seed
        # perturbs the initial density reproducibly (the "random" init
        # program of paper §4.1).
        fields = None
        if seed:
            from ..distrib.initprog import initial_fields

            fields = initial_fields(spec, "random", seed=seed)
        elif spec.init is not None:
            from ..distrib.initprog import initial_fields

            fields = initial_fields(spec, None)
        rundir = job_dir / "run"
        if rundir.exists():
            shutil.rmtree(rundir)  # retry after a worker death
        if backend != "distributed":
            # DistributedRun insists on creating an empty dir itself.
            rundir.mkdir(parents=True)
        t0 = time.perf_counter()
        result = repro.run(
            spec, backend, settings, workdir=rundir, fields=fields
        )
        elapsed = time.perf_counter() - t0
        fields = result.fields or {}
        tmp = job_dir / "fields.tmp.npz"
        np.savez(tmp, **fields)
        os.replace(tmp, job_dir / "fields.npz")
        _atomic_write(job_dir / "result.json", {
            "job_id": job_id,
            "backend": backend,
            "steps": result.steps,
            "elapsed": result.elapsed,
            "wall_elapsed": elapsed,
            "worker": worker_index,
            "n_diagnostics": len(result.diagnostics),
            "utilization": result.utilization,
            "migrations": result.migrations,
            "rebalances": result.rebalances,
            "trace_path": str(result.trace_path)
            if result.trace_path else None,
        })
    except Exception:  # noqa: BLE001 - reported to the scheduler as-is
        _atomic_write(job_dir / "error.json", {
            "job_id": job_id,
            "worker": worker_index,
            "error": traceback.format_exc(limit=20),
        })


def main(argv: list[str] | None = None) -> int:
    """Poll the inbox and run tickets until the stop file appears."""
    argv = sys.argv[1:] if argv is None else argv
    serve_dir = Path(argv[0]).resolve()
    index = int(argv[1])
    pool_dir = serve_dir / "pool"
    inbox = pool_dir / f"inbox-{index:02d}"
    inbox.mkdir(parents=True, exist_ok=True)
    hb = pool_dir / "hb" / f"pool{index:04d}.json"
    hb.parent.mkdir(parents=True, exist_ok=True)
    stop = pool_dir / "stop"
    jobs_done = 0
    # Pay the heavy imports once at spawn, not inside the first job:
    # the first "idle" heartbeat below doubles as the warm-pool signal.
    import numpy  # noqa: F401
    import repro  # noqa: F401
    _heartbeat(hb, index, "idle", None, jobs_done)
    while not stop.exists():
        tickets = sorted(inbox.glob("*.json"))
        if not tickets:
            _heartbeat(hb, index, "idle", None, jobs_done)
            time.sleep(POLL)
            continue
        ticket = tickets[0]
        try:
            job_id = json.loads(ticket.read_text())["job_id"]
        except (OSError, ValueError, KeyError):
            # torn/cancelled ticket: the scheduler owns removal races
            ticket.unlink(missing_ok=True)
            continue
        _heartbeat(hb, index, "running", job_id, jobs_done)
        run_job(serve_dir, job_id, index)
        jobs_done += 1
        ticket.unlink(missing_ok=True)
        _heartbeat(hb, index, "idle", None, jobs_done)
    _heartbeat(hb, index, "stopped", None, jobs_done)
    return 0


if __name__ == "__main__":
    sys.exit(main())
