"""Argument parsing and dispatch for ``python -m repro.tools``."""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _host_metadata() -> dict:
    """Host facts every BENCH_*.json carries (ISSUE: comparability).

    Benchmark numbers are meaningless without knowing what produced
    them — core count, library versions, and which kernel backends the
    host could actually run.  ``numba`` is ``None`` when the import
    fails; the benches then record honest numpy-only rows.
    """
    import platform

    meta = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": None,
    }
    try:
        import numba

        meta["numba"] = numba.__version__
    except ImportError:
        pass
    from ..fluids.backends import available_backends

    meta["backends"] = list(available_backends())
    return meta


def _cmd_simulate(args: argparse.Namespace) -> int:
    from ..core import Decomposition, Simulation
    from ..fluids import (
        FDMethod,
        FluidParams,
        LBMethod,
        channel_geometry,
        cylinder_channel,
        flue_pipe,
    )

    shape = tuple(args.shape)
    inlets, outlets = [], []
    if args.problem == "channel":
        solid = channel_geometry(shape)
        periodic = (True,) + (False,) * (len(shape) - 1)
        gravity = (args.force,) + (0.0,) * (len(shape) - 1)
    elif args.problem == "cylinder":
        solid = cylinder_channel(shape)
        periodic = (True, False)
        gravity = (args.force, 0.0)
    else:  # flue_pipe
        setup = flue_pipe(shape, jet_speed=args.jet)
        solid = setup.solid
        inlets, outlets = [setup.inlet], [setup.outlet]
        periodic = (False, False)
        gravity = (0.0, 0.0)

    ndim = len(shape)
    params = FluidParams.lattice(
        ndim, nu=args.nu, gravity=gravity, filter_eps=args.filter_eps
    )
    cls = LBMethod if args.method == "lb" else FDMethod
    method = cls(params, ndim, inlets=inlets, outlets=outlets,
                 backend=args.backend or None)
    decomp = Decomposition(
        shape, tuple(args.blocks), periodic=periodic, solid=solid
    )
    fields = {"rho": np.full(shape, 1.0)}
    for name in ("u", "v", "w")[:ndim]:
        fields[name] = np.zeros(shape)

    sim = Simulation(method, decomp, fields, solid)
    print(
        f"{args.problem} {shape}, {args.method.upper()}, "
        f"decomposition {'x'.join(map(str, args.blocks))} "
        f"({decomp.n_active} active)"
    )
    chunk = max(args.steps // 10, 1)
    done = 0
    while done < args.steps:
        n = min(chunk, args.steps - done)
        sim.step(n)
        done += n
        u = sim.global_field("u")
        print(f"  step {sim.step_count:6d}   max|u| = {np.abs(u).max():.5f}")
    out = Path(args.out)
    np.savez_compressed(out, solid=solid, **sim.global_state())
    print(f"fields written to {out}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from ..cluster import ClusterSimulation, NetworkParams
    from ..harness import format_table

    blocks = tuple(args.blocks)
    sim = ClusterSimulation(
        args.method,
        len(blocks),
        blocks,
        args.side,
        network=NetworkParams(preset=args.network)
        if args.network
        else NetworkParams(),
        sync_mode=args.sync,
    )
    res = sim.run(steps=args.steps, monitor_poll=args.monitor_poll)
    rows = [
        ["processors", res.processors],
        ["nodes/processor", res.nodes_per_proc],
        ["time/step (simulated)", f"{res.time_per_step:.4f} s"],
        ["T_1 (one 715/50)", f"{res.serial_time_per_step:.4f} s"],
        ["speedup", f"{res.speedup:.2f}"],
        ["efficiency", f"{res.efficiency:.3f}"],
        ["bus utilization", f"{res.bus.utilization(res.elapsed):.3f}"],
        ["network errors", res.bus.network_errors],
        ["migrations", len(res.migrations)],
    ]
    print(format_table(["quantity", "value"], rows,
                       title="simulated distributed run (§7 protocol)"))
    return 0


def _cmd_image(args: argparse.Namespace) -> int:
    from ..fluids import vorticity_2d
    from ..viz import field_to_ppm

    data = np.load(args.npz)
    solid = data["solid"].astype(bool) if "solid" in data.files else None
    if args.field == "vorticity" and "vorticity" not in data.files:
        field = vorticity_2d(data["u"], data["v"])
    else:
        field = data[args.field]
    if field.ndim == 3:  # 3D run: take the requested x-slice
        field = field[args.slice]
        solid = solid[args.slice] if solid is not None else None
    out = args.out or f"{Path(args.npz).stem}_{args.field}.ppm"
    field_to_ppm(field, out, solid=solid)
    print(f"wrote {out} ({field.shape[0]}x{field.shape[1]})")
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from ..fluids import dominant_frequency, spectrum

    data = np.load(args.npz)
    if args.key not in data.files:
        print(f"no array {args.key!r} in {args.npz}; "
              f"available: {', '.join(data.files)}")
        return 1
    signal = data[args.key]
    f = dominant_frequency(signal, dt=args.dt)
    freqs, amp = spectrum(signal, dt=args.dt)
    order = np.argsort(amp[1:])[::-1][:5] + 1
    print(f"samples: {len(signal)}, swing: "
          f"{signal.max() - signal.min():.3e}")
    print(f"dominant frequency: {f:.6f} cycles per time unit")
    print("strongest lines:")
    for k in order:
        print(f"  f = {freqs[k]:.6f}   amplitude = {amp[k]:.3e}")
    return 0


#: the §7 kernel-benchmark cases: (name, method, shape).  128x128 /
#: 32^3 channel flow, the sizes the perf table in README.md quotes.
_BENCH_CASES = (
    ("fd2d", "fd", (128, 128)),
    ("lb2d", "lb", (128, 128)),
    ("lb3d", "lb", (32, 32, 32)),
)


def _thread_blocks(ndim: int) -> tuple[int, ...]:
    """Threaded-bench block grid sized to this host's cores.

    Splitting a grid across more threads than cores only buys barrier
    overhead, so the threaded row uses at most as many blocks as cores.
    Below two cores the grid stays whole — the threaded runner's
    degenerate single-block path steps inline with no pool, keeping the
    threaded row honest (>= 1.0x serial) instead of measuring pure
    synchronization cost.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        return (1,) * ndim
    per = (2, 2) if cpus >= 4 else (2, 1)
    return (per + (1,) * ndim)[:ndim]


def _bench_collectives(args: argparse.Namespace) -> int:
    """Time the collective primitives and the diagnostics overhead.

    Four ranks run as threads over the in-process fabric — the same
    blocking :class:`~repro.net.collectives.Communicator` schedules a
    distributed run executes, minus the wire.  The second half measures
    what in-flight diagnostics at ``N = 10`` cost a threaded lattice
    Boltzmann run per step (the ISSUE.md acceptance number).
    """
    import json
    import threading
    import time

    from ..core import Decomposition, ThreadedSimulation
    from ..fluids import FluidParams, LBMethod, channel_geometry
    from ..harness import format_table, time_stepper
    from ..net.collectives import Communicator
    from ..net.local import LocalFabric

    n = args.ranks
    iters = args.steps
    big = np.ones(65536)  # 512 KiB -> exercises the chunked array path

    def timed(comms, op) -> float:
        """Best-of-repeats seconds for one collective across ``n`` threads."""

        def worker(comm):
            for _ in range(iters):
                op(comm)

        best = float("inf")
        for _ in range(args.repeats):
            threads = [
                threading.Thread(target=worker, args=(c,)) for c in comms
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            best = min(best, (time.perf_counter() - t0) / iters)
        return best

    cases = (
        ("barrier", lambda c: c.barrier()),
        ("allreduce_8B", lambda c: c.allreduce(1.0, "sum")),
        ("allreduce_512KiB", lambda c: c.allreduce(big, "sum")),
        ("allgather_64B", lambda c: c.allgather(np.full(8, float(c.rank)))),
    )
    results: dict[str, dict] = {
        "host": _host_metadata(), "ranks": n, "collectives": {}
    }
    rows = []
    for algorithm in ("tree", "ring"):
        fabric = LocalFabric(n)
        comms = [
            Communicator(fabric.channel_set(r), r, n, algorithm=algorithm)
            for r in range(n)
        ]
        warm = [threading.Thread(target=c.barrier) for c in comms]
        for t in warm:  # warm caches and allocators
            t.start()
        for t in warm:
            t.join()
        per_alg: dict[str, float] = {}
        for name, op in cases:
            secs = timed(comms, op)
            per_alg[name] = secs
            rows.append([algorithm, name, f"{secs * 1e6:,.1f} us"])
        results["collectives"][algorithm] = per_alg
    print(format_table(
        ["algorithm", "primitive", "time/op"],
        rows, title=f"in-process collectives, {n} ranks "
                    f"({iters} ops averaged, best of {args.repeats})",
    ))

    # diagnostics overhead: threaded LB channel flow, N = 10
    shape, blocks, every = (64, 64), (2, 2), 10
    solid = channel_geometry(shape)
    params = FluidParams.lattice(2, nu=0.05, gravity=(1e-5, 0.0),
                                 filter_eps=0.02)
    fields = {"rho": np.full(shape, 1.0),
              "u": np.zeros(shape), "v": np.zeros(shape)}
    per_step = {}
    for label, diag_every in (("base", 0), ("diag", every)):
        decomp = Decomposition(shape, blocks, periodic=(True, False),
                               solid=solid)
        sim = ThreadedSimulation(LBMethod(params, 2), decomp, fields,
                                 solid, diag_every=diag_every)
        timing = time_stepper(sim.step, steps=max(args.steps, 2 * every),
                              repeats=args.repeats)
        per_step[label] = timing.seconds_per_step
    overhead = 100.0 * (per_step["diag"] / per_step["base"] - 1.0)
    results["diagnostics_overhead"] = {
        "grid": list(shape), "blocks": list(blocks), "diag_every": every,
        "base_seconds_per_step": per_step["base"],
        "diag_seconds_per_step": per_step["diag"],
        "overhead_percent": overhead,
    }
    print(f"\ndiagnostics overhead (threaded LB {shape[0]}x{shape[1]}, "
          f"N={every}): {overhead:+.2f}% per step")

    out = Path(args.out or "BENCH_collectives.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Print the §7 T_comp/T_comm table for a traced run."""
    from ..trace import (
        format_breakdown_table,
        summarize,
        write_chrome_trace,
        write_trace_bench,
    )

    where = args.run[0] if len(args.run) == 1 else args.run
    try:
        summary = summarize(where)
    except FileNotFoundError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 1
    print(format_breakdown_table(summary))
    dropped = sum(r.dropped_spans for r in summary.ranks)
    if dropped:
        print(f"warning: {dropped} spans dropped (trace buffer full); "
              f"the table underestimates the traced time")
    out = write_trace_bench(summary, args.out or "BENCH_trace.json")
    print(f"summary written to {out}")
    if args.chrome:
        path = write_chrome_trace(where, args.chrome)
        print(f"chrome trace written to {path} "
              f"(load in Perfetto / chrome://tracing)")
    return 0


def _bench_trace(args: argparse.Namespace) -> int:
    """Measure what tracing costs the serial kernel loop per step.

    Times the same 128x128 FD channel flow three ways: a *bare* loop
    calling the kernels with no tracer calls at all, the instrumented
    loop with the :data:`~repro.trace.NULL_TRACER` gate (how every
    runtime runs by default), and with a live
    :class:`~repro.trace.Tracer` streaming to disk.  The null-gated
    path must stay within ``--max-overhead`` percent of bare — the
    instrumentation is built to be left compiled in; the enabled cost
    is reported alongside the §7 table of the traced window.
    """
    import json

    from ..core import Decomposition, Simulation
    from ..fluids import FDMethod, FluidParams, channel_geometry
    from ..harness import time_stepper
    from ..trace import (
        Tracer,
        format_breakdown_table,
        summarize,
        write_chrome_trace,
        write_trace_bench,
    )

    shape, blocks = (128, 128), (2, 2)
    solid = channel_geometry(shape)
    params = FluidParams.lattice(2, nu=0.05, gravity=(1e-5, 0.0),
                                 filter_eps=0.02)
    fields = {"rho": np.full(shape, 1.0),
              "u": np.zeros(shape), "v": np.zeros(shape)}
    trace_dir = Path(args.trace_dir or "trace_bench")
    trace_dir.mkdir(parents=True, exist_ok=True)

    def build(tracer=None):
        decomp = Decomposition(shape, blocks, periodic=(True, False),
                               solid=solid)
        if tracer is None:
            return Simulation(FDMethod(params, 2), decomp, fields, solid)
        return Simulation(FDMethod(params, 2), decomp, fields, solid,
                          tracer=tracer)

    per_step: dict[str, float] = {}

    # the same cycle Simulation.step runs, minus every tracer call
    bare = build()
    method, subs, exchanger = bare.method, bare.subs, bare.exchanger

    def bare_step(n: int = 1) -> None:
        for _ in range(n):
            for phase, fnames in enumerate(method.exchange_phases):
                for sub in subs:
                    method.compute_phase(sub, phase)
                exchanger.exchange(fnames)
            for sub in subs:
                method.finalize_step(sub)
                sub.step += 1

    per_step["bare"] = time_stepper(
        bare_step, steps=args.steps, repeats=args.repeats
    ).seconds_per_step
    per_step["disabled"] = time_stepper(
        build().step, steps=args.steps, repeats=args.repeats
    ).seconds_per_step
    tracer = Tracer(trace_dir / "trace-0000.jsonl", rank=0)
    per_step["enabled"] = time_stepper(
        build(tracer).step, steps=args.steps, repeats=args.repeats
    ).seconds_per_step
    tracer.close()

    disabled_overhead = 100.0 * (
        per_step["disabled"] / per_step["bare"] - 1.0
    )
    enabled_overhead = 100.0 * (
        per_step["enabled"] / per_step["bare"] - 1.0
    )
    print(f"tracing overhead (serial FD {shape[0]}x{shape[1]}, "
          f"{args.steps}-step windows, best of {args.repeats}):")
    print(f"  bare loop       {per_step['bare'] * 1e3:9.3f} ms/step")
    print(f"  null-gated      {per_step['disabled'] * 1e3:9.3f} ms/step "
          f"({disabled_overhead:+.2f}%)")
    print(f"  tracing to disk {per_step['enabled'] * 1e3:9.3f} ms/step "
          f"({enabled_overhead:+.2f}%)")

    summary = summarize(trace_dir)
    print(format_breakdown_table(summary))
    chrome = write_chrome_trace(trace_dir, trace_dir / "trace.json")
    out = write_trace_bench(
        summary,
        args.out or "BENCH_trace.json",
        extra={
            "host": _host_metadata(),
            "grid": list(shape),
            "blocks": list(blocks),
            "bare_seconds_per_step": per_step["bare"],
            "disabled_seconds_per_step": per_step["disabled"],
            "enabled_seconds_per_step": per_step["enabled"],
            "disabled_overhead_percent": disabled_overhead,
            "enabled_overhead_percent": enabled_overhead,
            "max_overhead_percent": args.max_overhead,
            "chrome_trace": str(chrome),
        },
    )
    print(f"results written to {out}; merged trace at {chrome}")
    if disabled_overhead > args.max_overhead:
        print(f"bench: null-gated overhead {disabled_overhead:.2f}% "
              f"exceeds --max-overhead {args.max_overhead:.1f}%",
              file=sys.stderr)
        return 1
    return 0


def _bench_balance(args: argparse.Namespace) -> int:
    """Measure what adaptive rebalancing buys on a cramped cluster.

    A four-workstation cluster with *no* spare host — the situation
    where the paper's migration policy cannot help — under the
    heterogeneous stochastic user load of
    :func:`repro.cluster.loadgen.poisson_user_traces` (three of the
    four hosts receive recurring full-time jobs).  The simulator runs
    the same computation with the monitor off (``none``) and with
    ``policy="rebalance"`` — the
    :class:`~repro.balance.RebalancePlanner` the live runtime uses —
    and compares steps/second.  Fails unless rebalancing sustains at
    least ``--min-speedup`` times the baseline rate.
    """
    import json

    from ..cluster import ClusterSimulation, paper_sim_cluster
    from ..cluster.loadgen import poisson_user_traces
    from ..harness import format_table

    side, blocks, steps, poll = 140, (4, 1), 600, 15.0
    names = ("hp715-00", "hp715-01", "hp715-02", "hp715-03")
    busy = poisson_user_traces(
        ["hp715-01", "hp715-02", "hp715-03"],
        duration=2.0e6,
        busy_rate_per_hour=6.0,
        mean_busy_minutes=45.0,
        load=2.5,
        seed=7,
    )

    results: dict[str, dict] = {
        "host": _host_metadata(),
        "scenario": {
            "hosts": list(names),
            "busy_hosts": sorted(busy),
            "side": side,
            "blocks": list(blocks),
            "steps": steps,
            "monitor_poll": poll,
        },
        "policies": {},
    }
    rows = []
    per_policy: dict[str, float] = {}
    for policy in ("none", "rebalance"):
        hosts = [
            h for h in paper_sim_cluster(dict(busy)) if h.name in names
        ]
        sim = ClusterSimulation("lb", 2, blocks, side, hosts=hosts)
        kw = {} if policy == "none" else {
            "monitor_poll": poll, "policy": policy,
        }
        res = sim.run(steps=steps, **kw)
        rate = steps / res.elapsed
        per_policy[policy] = rate
        results["policies"][policy] = {
            "elapsed_seconds": res.elapsed,
            "steps_per_second": rate,
            "efficiency": res.efficiency,
            "rebalances": len(res.rebalances),
        }
        rows.append(
            [policy, f"{res.elapsed:,.0f} s", f"{rate:.4f}",
             f"{res.efficiency:.3f}", len(res.rebalances)]
        )
    speedup = per_policy["rebalance"] / per_policy["none"]
    results["speedup"] = speedup
    results["min_speedup"] = args.min_speedup

    print(format_table(
        ["policy", "elapsed", "steps/s", "efficiency", "rebalances"],
        rows,
        title=f"adaptive rebalancing, cramped 4-host cluster "
              f"({side}x{side} LB, {steps} steps)",
    ))
    print(f"\nsteps/s speedup from rebalancing: {speedup:.2f}x "
          f"(required: {args.min_speedup:.2f}x)")
    out = Path(args.out or "BENCH_balance.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    if speedup < args.min_speedup:
        print(f"bench: rebalance speedup {speedup:.2f}x below "
              f"--min-speedup {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def _chaos_rows(outcomes) -> list[list]:
    """Result-table rows shared by ``repro chaos`` and ``bench --chaos``."""
    rows = []
    for o in outcomes:
        rows.append([
            o.scenario, o.seed,
            o.outcome + ("" if o.passed else " <- FAIL"),
            o.restarts, o.migrations,
            f"{o.elapsed:.1f} s", f"{o.recovery_seconds:.1f} s",
            f"{o.steps_per_second:.1f}",
        ])
    return rows


def _bench_chaos(args: argparse.Namespace) -> int:
    """The fault-tolerance acceptance gate (``repro bench --chaos``).

    Runs the canonical seeded fault scenarios through
    :func:`repro.chaos.runner.sweep` — a fault-free baseline first,
    then every (scenario, seed) pair — and requires each one to end in
    a bit-for-bit match against the fault-free serial reference or a
    clean diagnostic abort.  A hang, a silent divergence, or an
    unclassified exception fails the gate.  ``--chaos-seeds K`` widens
    the sweep to seeds ``0..K-1`` (the nightly CI job runs 3).
    """
    import json
    import tempfile
    from dataclasses import asdict

    from ..chaos import CANONICAL, sweep
    from ..harness import format_table

    seeds = tuple(range(max(args.chaos_seeds, 1)))
    workdir = args.chaos_dir or tempfile.mkdtemp(prefix="repro_chaos_")
    try:
        outcomes = sweep(
            workdir, seeds=seeds, scenarios=CANONICAL,
            steps=args.chaos_steps,
        )
    except RuntimeError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 1

    print(format_table(
        ["scenario", "seed", "outcome", "restarts", "migrations",
         "elapsed", "recovery", "steps/s"],
        _chaos_rows(outcomes),
        title=f"chaos sweep ({len(CANONICAL)} scenarios x "
              f"{len(seeds)} seed(s) + fault-free baseline, "
              f"{args.chaos_steps} steps each)",
    ))
    failed = [o for o in outcomes if not o.passed]
    results = {
        "host": _host_metadata(),
        "steps": args.chaos_steps,
        "scenarios": list(CANONICAL),
        "seeds": list(seeds),
        "baseline_seconds": outcomes[0].elapsed,
        "runs": [asdict(o) for o in outcomes],
        "passed": not failed,
    }
    out = Path(args.out or "BENCH_chaos.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    if failed:
        names = ", ".join(f"{o.scenario}/s{o.seed}={o.outcome}"
                          for o in failed)
        print(f"bench: chaos gate failed: {names}", file=sys.stderr)
        return 1
    print(f"chaos gate passed: {len(outcomes) - 1} faulted runs "
          f"recovered or aborted cleanly")
    return 0


def _bench_hybrid(args: argparse.Namespace) -> int:
    """The hybrid-coupling acceptance gate (``repro bench --hybrid``).

    Marches the §7 Poiseuille channel with the FD/LB method seam laid
    *along* the flow — the converted ghost strip then carries the full
    shear of the parabola, the hardest orientation for the seam
    reconstruction — and gates on three properties of the coupled run:
    the steady profile must match the analytic solution within the
    single-method tolerance, total mass must hold to truncation level,
    and the serial and threaded runtimes must agree bit for bit.
    Records nodes/s for the hybrid run next to each pure method so the
    throughput cost of the seam is on the record.
    """
    import json

    import repro
    from ..distrib import ProblemSpec
    from ..fluids import poiseuille_profile
    from ..harness import format_table

    nx, ny = 16, args.hybrid_ny
    nu, g = 0.1, 1e-5
    steps = args.hybrid_steps
    if ny % 2 or ny < 8:
        print("bench: --hybrid-ny must be even and >= 8", file=sys.stderr)
        return 2

    def _spec(method):
        return ProblemSpec(
            method=method, grid_shape=(nx, ny), blocks=(1, 2),
            periodic=(True, False),
            params={"nu": nu, "gravity": (g, 0.0), "filter_eps": 0.0},
            geometry={"kind": "channel"},
        )

    hybrid = _spec({
        "default": "lb",
        "regions": [{"box": [[0, ny // 2], [nx, ny]], "method": "fd"}],
    })

    run = repro.run(hybrid, "serial", steps=steps)
    u = run.fields["u"][nx // 2]
    # Bottom wall is LB (halfway bounce-back: wall at y=0 with
    # y_j = j - 0.5); top wall is FD (no-slip at the wall node).
    y = np.arange(ny, dtype=float) - 0.5
    exact = poiseuille_profile(y, ny - 1.5, g, nu)
    fl = slice(1, ny - 1)
    profile_err = float(np.abs(u[fl] - exact[fl]).max() / exact.max())
    mass_drift = abs(float(run.fields["rho"].sum()) - nx * ny) / (nx * ny)

    srl = repro.run(hybrid, "serial", steps=50)
    thr = repro.run(hybrid, "threaded", steps=50)
    bitwise = all(
        np.array_equal(srl.fields[k], thr.fields[k])
        for k in ("rho", "u", "v")
    )

    nodes = nx * ny
    rate_steps = min(steps, 2000)
    rates = {"hybrid": nodes * steps / max(run.elapsed, 1e-9)}
    for name in ("lb", "fd"):
        r = repro.run(_spec(name), "serial", steps=rate_steps)
        rates[name] = nodes * rate_steps / max(r.elapsed, 1e-9)

    mass_ok = mass_drift < args.hybrid_mass_tol
    profile_ok = profile_err < args.hybrid_tol
    print(format_table(
        ["check", "value", "bound", "ok"],
        [
            ["profile error", f"{profile_err:.2e}",
             f"< {args.hybrid_tol:g}", str(profile_ok)],
            ["mass drift", f"{mass_drift:.2e}",
             f"< {args.hybrid_mass_tol:g}", str(mass_ok)],
            ["serial == threaded", "bitwise" if bitwise else "DIVERGED",
             "bitwise", str(bitwise)],
        ],
        title=f"hybrid lb|fd Poiseuille, {nx}x{ny}, {steps} steps "
              f"(seam along the flow at y={ny // 2})",
    ))
    print(format_table(
        ["run", "nodes/s"],
        [[name, f"{rate:.3g}"] for name, rate in rates.items()],
        title="serial throughput",
    ))

    passed = profile_ok and mass_ok and bitwise
    results = {
        "host": _host_metadata(),
        "grid": [nx, ny],
        "steps": steps,
        "nu": nu,
        "gravity": g,
        "profile_error": profile_err,
        "profile_tolerance": args.hybrid_tol,
        "mass_drift": mass_drift,
        "mass_tolerance": args.hybrid_mass_tol,
        "serial_threaded_bitwise": bitwise,
        "nodes_per_second": rates,
        "passed": passed,
    }
    out = Path(args.out or "BENCH_hybrid.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    if not passed:
        print("bench: hybrid gate failed", file=sys.stderr)
        return 1
    print("hybrid gate passed")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Build, inspect, or execute one seeded fault plan."""
    import json
    from dataclasses import asdict

    from ..chaos import SCENARIOS, FaultPlan, run_scenario
    from ..harness import format_table

    if args.list:
        for name in sorted(SCENARIOS + ("random",)):
            print(name)
        return 0
    if args.scenario is None:
        print("chaos: a scenario is required (or --list)", file=sys.stderr)
        return 2

    plan = None
    if args.plan:
        plan = FaultPlan.from_json(Path(args.plan).read_text())
    elif args.scenario == "random":
        # a seeded mixed plan off the full fault menu (the nightly
        # chaos soak runs several of these)
        plan = FaultPlan.generate(
            args.seed, args.ranks, args.steps, args.save_every,
            n_faults=args.faults,
        )
    elif args.scenario != "none":
        plan = FaultPlan.scenario(
            args.scenario, args.seed, args.ranks, args.steps,
            args.save_every,
        )
    if args.print_plan:
        print(plan.to_json() if plan else "{}")
        return 0

    workdir = Path(args.workdir or f"chaos_{args.scenario}_s{args.seed}")
    outcome = run_scenario(
        args.scenario, args.seed, workdir,
        steps=args.steps, save_every=args.save_every, plan=plan,
    )
    print(format_table(
        ["scenario", "seed", "outcome", "restarts", "migrations",
         "elapsed", "recovery", "steps/s"],
        _chaos_rows([outcome]),
        title=f"chaos run in {workdir}",
    ))
    if outcome.detail:
        print(f"detail: {outcome.detail}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(asdict(outcome), indent=1) + "\n"
        )
        print(f"outcome written to {args.json}")
    return 0 if outcome.passed else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """Browse the scenario registry, or run + score one case."""
    import json

    from .. import scenarios as sc
    from ..harness import format_table

    if args.action == "list":
        rows = [
            [s.name, s.version, " ".join(s.params), s.title]
            for s in sc.all_scenarios()
        ]
        print(format_table(
            ["scenario", "ver", "params", "title"], rows,
            title=f"{len(rows)} registered scenarios",
        ))
        return 0
    if not args.name:
        print(f"scenarios: {args.action} needs a scenario name",
              file=sys.stderr)
        return 2
    try:
        scenario = sc.get(args.name)
    except KeyError as exc:
        print(f"scenarios: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.action == "show":
        print(json.dumps(scenario.describe(), indent=2))
        return 0

    # run: one case on a local backend, scored
    try:
        overrides = {}
        for name, values in sc.parse_grid(args.set).items():
            if len(values) != 1:
                raise ValueError(
                    f"--set {name} takes one value (use `repro sweep` "
                    f"for grids)"
                )
            overrides[name] = values[0]
        params = scenario.resolve(**overrides)
        case = scenario.case(**overrides)
    except ValueError as exc:
        print(f"scenarios: {exc}", file=sys.stderr)
        return 2
    print(f"running {scenario.name} {params} "
          f"({'x'.join(map(str, case.spec.grid_shape))}, "
          f"{case.settings.get('steps')} steps, {args.backend})")
    result = sc.run_case(case, backend=args.backend)
    score = scenario.score(result.fields, result.diagnostics,
                           **overrides)
    rows = [
        [name, f"{value:.4g}",
         f"<= {score.bounds[name]:g}" if name in score.bounds else "",
         "" if name not in score.bounds
         else ("ok" if not any(f.startswith(f"{name}:")
                               for f in score.failures) else "FAIL")]
        for name, value in score.residuals.items()
    ]
    print(format_table(
        ["residual", "value", "bound", ""], rows,
        title=f"{scenario.name}: "
              f"{'pass' if score.passed else 'FAIL'} "
              f"({result.elapsed:.1f} s)",
    ))
    for failure in score.failures:
        print(f"  failed: {failure}")
    if score.details:
        print(f"details: {json.dumps(score.details, default=str)}")
    if args.out:
        np.savez_compressed(args.out, **result.fields)
        print(f"fields written to {args.out}")
    return 0 if score.passed else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Expand a parameter grid over one scenario and score every point."""
    from .. import scenarios as sc
    from ..harness import format_table

    try:
        scenario = sc.get(args.scenario)
        grid = sc.parse_grid(args.grid)
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if isinstance(exc, KeyError) else exc
        print(f"sweep: {msg}", file=sys.stderr)
        return 2
    server = args.address
    if server is None and args.serve_dir:
        gateway_file = Path(args.serve_dir) / "gateway.json"
        if gateway_file.exists():
            import json

            info = json.loads(gateway_file.read_text())
            server = f"{info['host']}:{info['port']}"
    out_dir = Path(args.out or Path("sweeps") / scenario.name)
    try:
        points = sc.run_sweep(
            scenario, grid,
            backend=args.backend,
            server=server,
            out_dir=out_dir,
            resume=not args.no_resume,
            timeout=args.timeout,
            log=print,
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    md = sc.write_report(points, out_dir, scenario)
    rows = [
        [", ".join(f"{k}={v}" for k, v in p.params.items()) or "-",
         ("pass" if p.passed else "FAIL") if p.state == "done"
         else p.state,
         "cached" if p.cached else f"{p.elapsed:.1f} s",
         f"{p.nodes_per_sec:.3g}" if p.nodes_per_sec else "-"]
        for p in points
    ]
    n_pass = sum(1 for p in points if p.passed)
    print(format_table(
        ["params", "score", "elapsed", "nodes/s"], rows,
        title=f"sweep {scenario.name}: {n_pass}/{len(points)} passed"
              f"{' (via ' + server + ')' if server else ''}",
    ))
    print(f"report written to {md}")
    return 0 if n_pass == len(points) else 1


#: (scenario, grid) pairs ``repro bench --sweep`` marches.  The quick
#: set is the CI gate — every sub-minute physics claim, led by the
#: cavity Re=100 vortex-center check against Hou et al. (1995).
_SWEEP_QUICK = (
    ("cavity", {"Re": [100]}),
    ("poiseuille", {"method": ["lb"]}),
    ("conservation", {"method": ["lb", "fd"]}),
    ("duct3d", {"method": ["fd"]}),
    ("hybrid_channel", {}),
    ("acoustic_wave", {"method": ["lb"]}),
)
_SWEEP_FULL = (
    ("cavity", {"Re": [100, 400, 1000]}),
    ("poiseuille", {"method": ["lb", "fd"]}),
    ("conservation", {"method": ["lb", "fd"]}),
    ("duct3d", {"method": ["fd", "lb"]}),
    ("hybrid_channel", {}),
    ("acoustic_wave", {"method": ["lb", "fd"]}),
    ("taylor_green", {}),
    ("flue_pipe_channel", {}),
    ("flue_pipe", {}),
    ("cylinder_wake", {}),
)


def _bench_sweep(args: argparse.Namespace) -> int:
    """The scored-validation acceptance gate (``repro bench --sweep``).

    Marches the scenario library's canonical grids through the sweep
    driver and requires every point to pass its scenario's score —
    the cavity Re=100 primary-vortex check against Hou et al. is the
    headline gate.  ``--quick`` runs the sub-minute subset (the CI
    job); the full set adds the heavy wake/jet/high-Re scenarios.
    """
    import json
    import tempfile

    from .. import scenarios as sc
    from ..harness import format_table

    plan = _SWEEP_QUICK if args.quick else _SWEEP_FULL
    backend = args.backend or "threaded"
    base = Path(args.sweep_dir or
                tempfile.mkdtemp(prefix="repro_sweep_"))
    rows = []
    scenarios_out: dict = {}
    all_passed = True
    gate = None  # the cavity Re=100 point
    for name, grid in plan:
        scenario = sc.get(name)
        points = sc.run_sweep(
            scenario, grid, backend=backend, out_dir=base / name,
            log=lambda msg, n=name: print(f"  [{n}] {msg}"),
        )
        sc.write_report(points, base / name, scenario)
        entry = scenarios_out.setdefault(name, {
            "version": scenario.version, "points": [],
        })
        for p in points:
            entry["points"].append(p.to_dict())
            all_passed = all_passed and p.passed
            if name == "cavity" and p.params.get("Re") == 100:
                gate = p
            worst = ""
            if p.score and p.score.get("failures"):
                worst = p.score["failures"][0]
            elif p.error:
                worst = p.error
            rows.append([
                name,
                ", ".join(f"{k}={v}" for k, v in p.params.items())
                or "-",
                "pass" if p.passed else "FAIL",
                f"{p.elapsed:.1f} s",
                f"{p.nodes_per_sec:.3g}" if p.nodes_per_sec else "-",
                worst[:48],
            ])
    print(format_table(
        ["scenario", "params", "score", "elapsed", "nodes/s", "failure"],
        rows,
        title=f"scored validation sweep "
              f"({'quick' if args.quick else 'full'}, {backend})",
    ))
    results = {
        "host": _host_metadata(),
        "backend": backend,
        "quick": bool(args.quick),
        "scenarios": scenarios_out,
        "cavity_re100_passed": bool(gate and gate.passed),
        "passed": all_passed,
    }
    out = Path(args.out or "BENCH_sweep.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    if gate is None or not gate.passed:
        print("bench: sweep gate failed: cavity Re=100 vortex center "
              "does not match Hou et al.", file=sys.stderr)
        return 1
    if not all_passed:
        bad = [r[0] + "(" + r[1] + ")" for r in rows if r[2] != "pass"]
        print(f"bench: sweep gate failed: {', '.join(bad)}",
              file=sys.stderr)
        return 1
    print(f"sweep gate passed: {len(rows)} points, all scored pass")
    return 0


def _bench_graph(args: argparse.Namespace) -> int:
    """The dependency-driven overlap gate (``repro bench --graph``).

    Marches one decomposed FD problem two ways on an *imbalanced*
    synthetic workload — an alternating end-rank hotspot sleeps one
    rank ``--graph-delay`` seconds per step (rank 0 on even steps, the
    far-end rank on odd steps) — and compares steps/s:

    * the barriered threaded runner (BSP): every step waits for the
      hot rank, so the delay is paid in full every step;
    * the dependency-driven graph executor: a rank steps as soon as
      its own ghost strips are filled, and the two hotspot ranks sit
      farther apart than a delay can propagate between sleeps, so each
      rank only ever waits for its *own* sleeps — half the BSP bill.

    Both runs must stay bit-for-bit equal to the serial reference, and
    the graph run must clear ``--min-graph-speedup`` (the acceptance
    criterion: >= 1.15x).  A separate traced graph run writes the
    merged Chrome trace plus ``summary.md`` with the §7
    T_comp/T_comm/stall table (the CI artifact).
    """
    import json
    import tempfile
    import time

    from ..core import Decomposition, Simulation, ThreadedSimulation
    from ..fluids import FDMethod, FluidParams
    from ..graph import GraphExecutor, plan_graph
    from ..harness import format_table
    from ..trace import Tracer, summarize, write_chrome_trace

    steps = args.graph_steps
    repeats = max(args.repeats, 1)
    if args.quick:
        steps = min(steps, 12)
        repeats = min(repeats, 2)
    n_ranks = max(args.graph_ranks, 4)
    delay = args.graph_delay
    shape = (16 * n_ranks, 48)
    blocks = (n_ranks, 1)
    # A *chain* of subregions (axis 0 closed by solid walls, not
    # wrapped): the two end ranks are n-1 hops apart, which is what
    # lets the graph run overlap the delays below.
    periodic = (False, True)
    solid = np.zeros(shape, dtype=bool)
    solid[0, :] = solid[-1, :] = True
    params = FluidParams.lattice(2, nu=0.05)
    x = np.arange(shape[0], dtype=float)[:, None] / shape[0]
    y = np.arange(shape[1], dtype=float)[None, :] / shape[1]
    fields = {
        "rho": 1.0 + 1e-3 * np.sin(2 * np.pi * x) * np.sin(2 * np.pi * y),
        "u": np.zeros(shape),
        "v": np.zeros(shape),
    }

    def decomp():
        return Decomposition(shape, blocks, periodic=periodic,
                             solid=solid)

    # End-to-end alternating hotspot: rank 0 sleeps on even steps, the
    # far-end rank on odd steps — one rank is slow *every* step, so the
    # BSP barriers pay the full delay every step.  A planner delay
    # propagates along fill->compute edges at nphases hops per step
    # with no attenuation (the path's compute time equals the elapsed
    # schedule time exactly), so two delays chain serially whenever the
    # later one is reachable from the earlier: distance <= nphases x
    # steps-between.  The chain ends are n-1 > nphases hops apart and
    # the sleeps alternate every step, so consecutive delays are
    # mutually unreachable and the graph run pays each rank's *own*
    # sleeps only — half the BSP bill, and the measured gap below.
    far = n_ranks - 1

    def delay_fn(rank: int, step: int) -> float:
        hot = 0 if step % 2 == 0 else far
        return delay if rank == hot else 0.0

    ref = Simulation(FDMethod(params, 2), decomp(), fields, solid)
    ref.step(steps)
    ref_fields = ref.global_state()

    def _check(state) -> bool:
        return all(
            np.array_equal(state[k], ref_fields[k]) for k in ref_fields
        )

    t_bsp, bsp_ok = float("inf"), True
    for _ in range(repeats):
        sim = ThreadedSimulation(
            FDMethod(params, 2), decomp(), fields, solid,
            delay_fn=delay_fn,
        )
        t0 = time.perf_counter()
        sim.step(steps)
        t_bsp = min(t_bsp, time.perf_counter() - t0)
        bsp_ok = bsp_ok and _check(sim.global_state())
        sim.close()

    t_graph, graph_ok = float("inf"), True
    graph = None
    for _ in range(repeats):
        sim = Simulation(FDMethod(params, 2), decomp(), fields, solid)
        graph = plan_graph(sim.decomp, sim.methods, steps)
        ex = GraphExecutor(sim, graph, delay_fn=delay_fn)
        t0 = time.perf_counter()
        ex.run()
        t_graph = min(t_graph, time.perf_counter() - t0)
        graph_ok = graph_ok and _check(sim.global_state())

    # a dedicated traced run for the CI artifact (tracing costs a
    # little, so it is kept out of the timed windows)
    trace_dir = Path(
        args.trace_dir or tempfile.mkdtemp(prefix="repro_graph_")
    )
    tracer = Tracer(trace_dir / "trace-0000.jsonl", rank=0)
    sim = Simulation(FDMethod(params, 2), decomp(), fields, solid,
                     tracer=tracer)
    traced = GraphExecutor(
        sim, plan_graph(sim.decomp, sim.methods, steps),
        delay_fn=delay_fn, tracer=tracer,
    )
    traced.run()
    tracer.close()
    write_chrome_trace(trace_dir, trace_dir / "trace.json")
    summary = summarize(trace_dir)

    speedup = t_bsp / max(t_graph, 1e-9)
    sps = {"bsp": steps / max(t_bsp, 1e-9),
           "graph": steps / max(t_graph, 1e-9)}
    print(format_table(
        ["run", "best time", "steps/s", "bitwise vs serial"],
        [
            ["threaded (BSP barriers)", f"{t_bsp:.3f} s",
             f"{sps['bsp']:.1f}", str(bsp_ok)],
            ["graph (dependency-driven)", f"{t_graph:.3f} s",
             f"{sps['graph']:.1f}", str(graph_ok)],
        ],
        title=f"dependency-driven overlap, FD "
              f"{shape[0]}x{shape[1]} / {n_ranks} ranks, {steps} steps, "
              f"alternating {delay * 1e3:.0f} ms end-rank hotspot "
              f"(best of {repeats})",
    ))
    per_step = summary.per_step()
    print(f"  speedup: {speedup:.2f}x (gate: "
          f">= {args.min_graph_speedup:g}x)")
    print(f"  traced graph run: T_comp {per_step['t_comp'] * 1e3:.2f} "
          f"ms/step, T_comm {per_step['t_comm'] * 1e3:.2f} ms/step, "
          f"stalls {len(traced.stalls)}")
    print(f"  trace artifact: {trace_dir / 'trace.json'}")

    passed = bsp_ok and graph_ok and speedup >= args.min_graph_speedup
    md = [
        "# bench --graph: dependency-driven overlap",
        "",
        f"FD {shape[0]}x{shape[1]}, {n_ranks} ranks, {steps} steps, "
        f"alternating {delay * 1e3:.0f} ms end-rank hotspot.",
        "",
        "| run | best time | steps/s |",
        "|---|---|---|",
        f"| threaded (BSP) | {t_bsp:.3f} s | {sps['bsp']:.1f} |",
        f"| graph | {t_graph:.3f} s | {sps['graph']:.1f} |",
        "",
        f"**Speedup: {speedup:.2f}x** (gate >= "
        f"{args.min_graph_speedup:g}x) — "
        f"{'PASS' if passed else 'FAIL'}",
        "",
        "## §7 breakdown of the traced graph run",
        "",
        "| rank | T_comp | T_comm | T_other | utilization |",
        "|---|---|---|---|---|",
    ]
    for r in summary.ranks:
        md.append(
            f"| {r.rank} | {r.t_comp:.3f} s | {r.t_comm:.3f} s | "
            f"{r.t_other:.3f} s | {r.utilization:.2f} |"
        )
    md += [
        "",
        f"Graph stalls on the balanced hotspot run: "
        f"{len(traced.stalls)} (the {delay * 1e3:.0f} ms alternating "
        f"delay sits below the stall floor — a *sustained* slow rank, "
        f"not jitter, is what the detector names).",
    ]
    (trace_dir / "summary.md").write_text("\n".join(md) + "\n")

    results = {
        "host": _host_metadata(),
        "grid": list(shape),
        "blocks": list(blocks),
        "steps": steps,
        "repeats": repeats,
        "hot_delay_seconds": delay,
        "seconds": {"bsp": t_bsp, "graph": t_graph},
        "steps_per_second": sps,
        "speedup": speedup,
        "min_speedup": args.min_graph_speedup,
        "bsp_bitwise": bsp_ok,
        "graph_bitwise": graph_ok,
        "graph_nodes": graph.counts() if graph is not None else {},
        "critical_path_seconds": (
            graph.critical_path() if graph is not None else 0.0
        ),
        "stalls": len(traced.stalls),
        "passed": passed,
    }
    out = Path(args.out or "BENCH_graph.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    if not passed:
        reasons = []
        if not (bsp_ok and graph_ok):
            reasons.append("bitwise parity broken")
        if speedup < args.min_graph_speedup:
            reasons.append(
                f"speedup {speedup:.2f}x < {args.min_graph_speedup:g}x"
            )
        print(f"bench: graph gate failed: {'; '.join(reasons)}",
              file=sys.stderr)
        return 1
    print("graph gate passed")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from ..core import Decomposition, Simulation, ThreadedSimulation
    from ..fluids import FDMethod, FluidParams, LBMethod, channel_geometry
    from ..fluids.backends import BACKEND_NAMES, available_backends
    from ..harness import format_table, time_stepper

    if args.quick:
        args.steps = min(args.steps, 5)
        args.repeats = min(args.repeats, 2)
    if args.steps < 1 or args.repeats < 1:
        print("bench: --steps and --repeats must be >= 1", file=sys.stderr)
        return 2
    if args.collectives:
        return _bench_collectives(args)
    if args.trace:
        return _bench_trace(args)
    if args.balance:
        return _bench_balance(args)
    if args.chaos:
        return _bench_chaos(args)
    if args.serve:
        return _bench_serve(args)
    if args.hybrid:
        return _bench_hybrid(args)
    if args.sweep:
        return _bench_sweep(args)
    if args.graph:
        return _bench_graph(args)

    if args.backend:
        if args.backend not in BACKEND_NAMES:
            print(f"bench: unknown backend {args.backend!r}; "
                  f"expected one of {BACKEND_NAMES}", file=sys.stderr)
            return 2
        if args.backend not in available_backends():
            print(f"bench: backend {args.backend!r} is unavailable on "
                  f"this host (numba not importable?)", file=sys.stderr)
            return 2
        kernel_backends = [args.backend]
    else:
        kernel_backends = list(available_backends())

    results: dict = {
        "host": _host_metadata(),
        "steps": args.steps,
        "repeats": args.repeats,
        "cases": {},
    }
    rows = []
    cases = _BENCH_CASES[:2] if args.quick else _BENCH_CASES
    for name, method_name, shape in cases:
        ndim = len(shape)
        solid = channel_geometry(shape)
        n_fluid = int(np.count_nonzero(~solid))
        periodic = (True,) + (False,) * (ndim - 1)
        gravity = (1e-5,) + (0.0,) * (ndim - 1)
        params = FluidParams.lattice(
            ndim, nu=0.05, gravity=gravity, filter_eps=0.02
        )
        cls = LBMethod if method_name == "lb" else FDMethod
        fields = {"rho": np.full(shape, 1.0)}
        for vn in ("u", "v", "w")[:ndim]:
            fields[vn] = np.zeros(shape)

        # (label, runner, blocks, kernel backend).  The threaded row
        # exists only for numpy — numba's parallel backend already owns
        # the cores inside one subregion, so a serial runner is its
        # fastest configuration.
        runs = []
        for kb in kernel_backends:
            if kb.startswith("numba") and ndim != 2:
                continue  # loop kernels are 2D-only; don't bench fallback
            suffix = "serial" if kb == "numpy" else kb
            runs.append((f"{name}_{suffix}", Simulation, (1,) * ndim, kb))
            if kb == "numpy":
                runs.append((f"{name}_threaded", ThreadedSimulation,
                             _thread_blocks(ndim), kb))
        for label, runner, blocks, kb in runs:
            decomp = Decomposition(
                shape, blocks, periodic=periodic, solid=solid
            )
            sim = runner(
                cls(params, ndim, backend=kb), decomp, fields, solid
            )
            timing = time_stepper(
                sim.step, steps=args.steps, repeats=args.repeats
            )
            if runner is ThreadedSimulation:
                sim.close()
            speed = n_fluid / timing.median
            results["cases"][label] = {
                "method": method_name,
                "shape": list(shape),
                "blocks": list(blocks),
                "backend": kb,
                "runner": ("threaded" if runner is ThreadedSimulation
                           else "serial"),
                "fluid_nodes": n_fluid,
                "seconds_per_step": timing.seconds_per_step,
                "median_seconds_per_step": timing.median,
                "stdev_seconds_per_step": timing.stdev,
                "nodes_per_second": speed,
            }
            rows.append(
                [label, "x".join(map(str, shape)),
                 "x".join(map(str, blocks)), kb,
                 f"{timing.median * 1e3:.3f} ms",
                 f"{timing.stdev * 1e3:.3f}",
                 f"{speed:,.0f}"]
            )

    # headline ratios the acceptance criteria quote
    med = {k: v["median_seconds_per_step"]
           for k, v in results["cases"].items()}
    speedups = {}
    for case, _, _ in cases:
        base = med.get(f"{case}_serial")
        if not base:
            continue
        for other in ("threaded", "numba", "numba-serial"):
            t = med.get(f"{case}_{other}")
            if t:
                speedups[f"{case}_{other}_vs_serial_numpy"] = base / t
    results["speedups"] = speedups

    print(format_table(
        ["case", "grid", "blocks", "backend", "median/step", "stdev ms",
         "fluid nodes/s"],
        rows, title=f"kernel speeds (§7 protocol, {args.steps}-step "
                    f"windows, median of {args.repeats}, warmed up)",
    ))
    for key, val in sorted(speedups.items()):
        print(f"  {key}: {val:.2f}x")
    out = Path(args.out or "BENCH_kernels.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """Measure per-backend nodes/s on this host (feeds load balancing)."""
    import json

    from ..balance import calibrated_speeds
    from ..cluster.calibration import calibrate_backends
    from ..harness import format_table

    table = calibrate_backends(
        method=args.method, ndim=args.ndim, side=args.side,
        steps=args.steps, repeats=args.repeats,
    )
    ref = table.get("numpy") or max(table.values())
    rows = [
        [name, f"{speed:,.0f}", f"{speed / ref:.2f}"]
        for name, speed in sorted(
            table.items(), key=lambda kv: kv[1], reverse=True
        )
    ]
    print(format_table(
        ["backend", "fluid nodes/s", "vs numpy"],
        rows, title=f"backend calibration ({args.method.upper()} "
                    f"{args.ndim}D, {args.side}^{args.ndim}, "
                    f"{args.steps}-step windows, best of {args.repeats})",
    ))
    if args.backends:
        weights = calibrated_speeds(args.backends, table)
        total = sum(weights)
        print("per-rank weights for --backends "
              + ",".join(args.backends) + ":")
        for rank, w in enumerate(weights):
            print(f"  rank {rank}: {w:,.0f} nodes/s "
                  f"(share {w / total:.3f})")
    if args.out:
        Path(args.out).write_text(json.dumps(
            {"host": _host_metadata(), "method": args.method,
             "ndim": args.ndim, "side": args.side,
             "nodes_per_second": table}, indent=1) + "\n")
        print(f"calibration written to {args.out}")
    return 0


def _serve_address(args: argparse.Namespace) -> str:
    """Resolve the gateway address from --address or --dir."""
    if getattr(args, "address", None):
        return args.address
    from ..serve import discover

    return discover(args.dir)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the simulation-as-a-service gateway and serve until ^C."""
    import asyncio

    from ..serve import Gateway

    gw = Gateway(
        args.dir, host=args.host, port=args.port,
        workers=args.workers, batch_size=args.batch_size,
    )

    async def _serve() -> None:
        import signal

        await gw.start()
        print(f"gateway listening on {gw.address} "
              f"(serve dir {gw.serve_dir}, {gw.pool.n_workers} workers)")
        stop = asyncio.Event()
        # a SIGTERM'd gateway must still drain its worker pool — without
        # this the pool processes outlive the gateway and race the next
        # gateway's workers for the same inboxes
        asyncio.get_running_loop().add_signal_handler(
            signal.SIGTERM, stop.set
        )
        try:
            await stop.wait()
        finally:
            await gw.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\ngateway stopped")
    return 0


def _submit_spec(args: argparse.Namespace):
    """The ProblemSpec a ``repro submit`` invocation describes."""
    from ..distrib.spec import ProblemSpec

    if args.spec:
        return ProblemSpec.load(args.spec)
    shape = tuple(args.shape)
    ndim = len(shape)
    if args.problem == "channel":
        geometry: dict = {"kind": "channel"}
        periodic = (True,) + (False,) * (ndim - 1)
        gravity = (args.force,) + (0.0,) * (ndim - 1)
    else:  # flue_pipe
        geometry = {"kind": "flue_pipe", "jet_speed": args.jet}
        periodic = (False, False)
        gravity = (0.0, 0.0)
    return ProblemSpec(
        method=args.method,
        grid_shape=shape,
        blocks=tuple(args.blocks),
        periodic=periodic,
        params={"nu": args.nu, "gravity": gravity,
                "filter_eps": args.filter_eps},
        geometry=geometry,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one spec to a running gateway (optionally wait/stream)."""
    from ..serve import ServeClient

    client = ServeClient(_serve_address(args), timeout=args.timeout)
    spec = _submit_spec(args)
    rec = client.submit(
        spec,
        settings={"steps": args.steps, "diag_every": args.diag_every},
        seed=args.seed,
        priority=args.priority,
        backend=args.backend,
    )
    print(f"job {rec['job_id']}  state={rec['state']}"
          f"{'  (cache hit)' if rec.get('cached') else ''}")
    if args.stream:
        for event in client.stream(rec["job_id"]):
            if event.get("event") == "diagnostics":
                d = event["record"]
                print(f"  step {d.get('step', '?'):>6}  "
                      f"max|V| = {d.get('max_speed', 0.0):.5f}")
            else:
                print(f"  end: state={event.get('state')} "
                      f"cached={event.get('cached')} "
                      f"elapsed={event.get('elapsed', 0.0):.2f}s")
        rec = client.job(rec["job_id"])
    elif args.wait:
        rec = client.wait(rec["job_id"], timeout=args.timeout)
        print(f"job {rec['job_id']}  state={rec['state']}  "
              f"elapsed={rec.get('elapsed') or 0.0:.2f}s"
              f"{'  (cache hit)' if rec.get('cached') else ''}")
    if rec["state"] == "failed":
        print(f"error: {rec.get('error')}", file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """List every job the gateway knows, newest first."""
    from ..harness import format_table
    from ..serve import ServeClient

    client = ServeClient(_serve_address(args))
    if args.gc:
        stats = client.gc()
        print(f"history compacted: {stats['events_before']} -> "
              f"{stats['events_after']} events, "
              f"{stats['bytes_before']} -> {stats['bytes_after']} bytes")
        return 0
    rows = [
        [j["job_id"], j["state"], j["backend"], j["priority"],
         "yes" if j.get("cached") else "",
         f"{j.get('elapsed') or 0.0:.2f} s",
         j.get("error") or ""]
        for j in client.jobs()
    ]
    print(format_table(
        ["job", "state", "backend", "pri", "cached", "elapsed", "error"],
        rows, title=f"jobs at {client.host}:{client.port}",
    ))
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    """Print one job's result payload (and optionally save its fields)."""
    import json

    from ..serve import ServeClient

    client = ServeClient(_serve_address(args))
    payload = client.result(args.job_id)
    print(json.dumps(payload, indent=2, default=str))
    if args.fields_out:
        fields = client.fields(args.job_id)
        np.savez_compressed(args.fields_out, **fields)
        print(f"fields written to {args.fields_out}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """The live cluster view (workers, queue, cache, recent jobs)."""
    from ..serve import ServeClient, watch

    client = ServeClient(_serve_address(args))
    watch(client, interval=args.interval, iterations=args.iterations)
    return 0


def _bench_serve(args: argparse.Namespace) -> int:
    """The service-layer throughput gate (``repro bench --serve``).

    A tenant workload of ``--serve-jobs`` distinct small problems, each
    submitted ``1 + --serve-warm`` times, measured two ways: a plain
    sequential ``repro.run()`` loop (what a user without the service
    would do) and through a live gateway with its worker pool and
    result cache.  The cache means the service computes each distinct
    problem once and serves every repeat for free — the aggregate
    throughput must come out at least ``--min-serve-speedup`` times the
    sequential loop, and every warm submission must be a cache hit
    (zero recompute).
    """
    import json
    import tempfile
    import time

    from .. import run as repro_run
    from ..distrib.orchestrator import RunSettings
    from ..distrib.spec import ProblemSpec
    from ..serve import Gateway, ServeClient

    n_jobs = max(args.serve_jobs, 1)
    n_warm = max(args.serve_warm, 0)
    steps = args.serve_steps
    side = args.serve_side
    if args.quick:
        # the same CI-sized promise every bench leg honours
        n_jobs = min(n_jobs, 3)
        n_warm = min(n_warm, 2)
        steps = min(steps, 30)
        side = min(side, 48)
    specs = [
        ProblemSpec(
            method="lb",
            grid_shape=(side, side),
            blocks=(1, 1),
            periodic=(True, False),
            params={"nu": 0.05 + 0.002 * i, "gravity": (1e-5, 0.0),
                    "filter_eps": 0.02},
            geometry={"kind": "channel"},
        )
        for i in range(n_jobs)
    ]
    submissions = specs * (1 + n_warm)

    # baseline: the same workload as a sequential facade loop
    t0 = time.perf_counter()
    for spec in submissions:
        repro_run(spec, "serial", RunSettings(steps=steps))
    t_seq = time.perf_counter() - t0

    serve_dir = args.serve_dir or tempfile.mkdtemp(prefix="repro_serve_")
    gw = Gateway(serve_dir, workers=args.serve_workers, poll=0.02)
    gw.start_background()
    try:
        from ..serve.jobs import TERMINAL

        client = ServeClient(gw.address, timeout=300.0)
        # steady-state throughput: let the persistent pool finish its
        # one-time interpreter warm-up (first heartbeat) before timing
        deadline = time.perf_counter() + 60.0
        while any(
            gw.pool.heartbeat(i) is None
            for i in range(gw.pool.n_workers)
        ):
            if time.perf_counter() > deadline:
                raise TimeoutError("worker pool never became ready")
            time.sleep(0.01)
        t0 = time.perf_counter()
        cold = [
            client.submit(spec, settings={"steps": steps})
            for spec in specs
        ]
        for rec in cold:
            client.wait(rec["job_id"], timeout=300.0, poll=0.01)
        warm = [
            client.submit(spec, settings={"steps": steps})
            for spec in specs * n_warm
        ]
        for rec in warm:
            # cache hits come back from /jobs already terminal — only
            # poll the stragglers (a miss would mean a recompute, which
            # the warm_all_cached gate below catches)
            if rec["state"] not in TERMINAL:
                client.wait(rec["job_id"], timeout=300.0, poll=0.01)
        t_serve = time.perf_counter() - t0
        final = {r["job_id"]: client.job(r["job_id"]) for r in cold + warm}
    finally:
        gw.shutdown()

    computed = sum(1 for rec in final.values() if not rec["cached"])
    warm_all_cached = all(
        final[r["job_id"]]["cached"] for r in warm
    ) if warm else True
    all_done = all(rec["state"] == "done" for rec in final.values())
    speedup = t_seq / t_serve if t_serve > 0 else float("inf")

    n_total = len(submissions)
    print(f"service throughput ({n_jobs} distinct problems x "
          f"{1 + n_warm} submissions, LB {side}x{side}, {steps} steps, "
          f"{args.serve_workers} workers):")
    print(f"  sequential repro.run() loop  {t_seq:8.2f} s "
          f"({n_total / t_seq:.2f} jobs/s)")
    print(f"  gateway (pool + cache)       {t_serve:8.2f} s "
          f"({n_total / t_serve:.2f} jobs/s)")
    print(f"  computed {computed}/{n_total} jobs; warm submissions "
          f"{'all cached' if warm_all_cached else 'NOT all cached'}")
    print(f"  aggregate throughput speedup: {speedup:.2f}x "
          f"(required: {args.min_serve_speedup:.2f}x)")

    results = {
        "host": _host_metadata(),
        "jobs": n_jobs,
        "warm_repeats": n_warm,
        "submissions": n_total,
        "steps": steps,
        "side": side,
        "workers": args.serve_workers,
        "t_sequential_seconds": t_seq,
        "t_serve_seconds": t_serve,
        "computed_jobs": computed,
        "warm_all_cached": warm_all_cached,
        "all_done": all_done,
        "speedup": speedup,
        "min_speedup": args.min_serve_speedup,
    }
    out = Path(args.out or "BENCH_serve.json")
    out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"results written to {out}")
    if not all_done:
        bad = {k: v["state"] for k, v in final.items()
               if v["state"] != "done"}
        print(f"bench: jobs did not finish: {bad}", file=sys.stderr)
        return 1
    if not warm_all_cached:
        print("bench: warm submissions recomputed — the result cache "
              "missed identical requests", file=sys.stderr)
        return 1
    if speedup < args.min_serve_speedup:
        print(f"bench: serve speedup {speedup:.2f}x below "
              f"--min-serve-speedup {args.min_serve_speedup:.2f}x",
              file=sys.stderr)
        return 1
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import subprocess

    cmd = [
        sys.executable, "-m", "pytest",
        str(Path(__file__).resolve().parents[3] / "benchmarks"),
        "--benchmark-only", "-q",
    ]
    print("running:", " ".join(cmd))
    return subprocess.call(cmd)


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description=__doc__,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run a named flow problem")
    p.add_argument("problem", choices=("channel", "flue_pipe", "cylinder"))
    p.add_argument("--method", choices=("lb", "fd"), default="lb")
    p.add_argument("--shape", type=int, nargs="+", default=(96, 64))
    p.add_argument("--blocks", type=int, nargs="+", default=(2, 2))
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--nu", type=float, default=0.05)
    p.add_argument("--force", type=float, default=1e-5)
    p.add_argument("--jet", type=float, default=0.08)
    p.add_argument("--filter-eps", type=float, default=0.02)
    p.add_argument("--backend", default=None,
                   help="kernel backend (numpy, numba, numba-serial); "
                        "default: numpy.  numba falls back to numpy "
                        "with a warning when not importable")
    p.add_argument("--out", default="simulation.npz")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("cluster", help="simulated 1994-cluster run")
    p.add_argument("--method", choices=("lb", "fd"), default="lb")
    p.add_argument("--blocks", type=int, nargs="+", default=(5, 4))
    p.add_argument("--side", type=int, default=150)
    p.add_argument("--steps", type=int, default=30)
    p.add_argument("--network",
                   choices=("ethernet10", "switched10", "fddi100",
                            "atm155"),
                   default=None)
    p.add_argument("--sync", choices=("bsp", "loose"), default="bsp")
    p.add_argument("--monitor-poll", type=float, default=0.0)
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("image", help="render a saved field as PPM")
    p.add_argument("npz", help="npz file from simulate / an example")
    p.add_argument("--field", default="vorticity")
    p.add_argument("--slice", type=int, default=0,
                   help="x-slice for 3D fields")
    p.add_argument("--out", default=None)
    p.set_defaults(func=_cmd_image)

    p = sub.add_parser("probe", help="spectrum of a saved probe signal")
    p.add_argument("npz")
    p.add_argument("--key", default="mouth_probe")
    p.add_argument("--dt", type=float, default=1.0,
                   help="steps between samples")
    p.set_defaults(func=_cmd_probe)

    p = sub.add_parser("bench",
                       help="time the fluid kernels (§7 protocol)")
    p.add_argument("--steps", type=int, default=20,
                   help="steps per timed window (paper: 20)")
    p.add_argument("--repeats", type=int, default=3,
                   help="windows to time; the median is recorded, the "
                        "best kept for the paper's §7 column "
                        "(default: 3)")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized run, honoured by every leg: kernel "
                        "bench drops to 2D cases at <= 5 steps x 2 "
                        "repeats; --sweep runs the sub-minute scenario "
                        "subset; --serve shrinks the tenant workload "
                        "(3 jobs x 2 warm repeats, 30 steps); --graph "
                        "drops to <= 12 steps x 2 repeats")
    p.add_argument("--backend", default=None,
                   help="bench only this kernel backend (default: "
                        "every backend available on this host)")
    p.add_argument("--collectives", action="store_true",
                   help="time the collective primitives and the "
                        "in-flight diagnostics overhead instead")
    p.add_argument("--trace", action="store_true",
                   help="measure the tracing layer's per-step overhead "
                        "instead (writes BENCH_trace.json + a merged "
                        "Chrome trace)")
    p.add_argument("--balance", action="store_true",
                   help="measure adaptive rebalancing vs doing nothing "
                        "on a cramped simulated cluster instead "
                        "(writes BENCH_balance.json)")
    p.add_argument("--chaos", action="store_true",
                   help="run the seeded fault-injection acceptance gate "
                        "instead: every scenario must recover bit-for-bit "
                        "or abort cleanly (writes BENCH_chaos.json)")
    p.add_argument("--chaos-seeds", type=int, default=1,
                   help="seeds per scenario for --chaos (default: 1; "
                        "the nightly CI sweep runs 3)")
    p.add_argument("--chaos-steps", type=int, default=40,
                   help="steps per chaos run (default: 40)")
    p.add_argument("--chaos-dir", default=None,
                   help="workdir for --chaos runs (default: a fresh "
                        "temporary directory)")
    p.add_argument("--hybrid", action="store_true",
                   help="run the hybrid FD-LB coupling acceptance gate "
                        "instead: seam Poiseuille profile accuracy, "
                        "mass conservation, and serial==threaded "
                        "bitwise equality (writes BENCH_hybrid.json)")
    p.add_argument("--hybrid-steps", type=int, default=12000,
                   help="steps of the --hybrid validation run; the "
                        "default reaches steady state at the default "
                        "channel width (12000)")
    p.add_argument("--hybrid-ny", type=int, default=32,
                   help="channel width for --hybrid; the seam defect "
                        "shrinks as 1/ny^2 (default: 32)")
    p.add_argument("--hybrid-tol", type=float, default=5e-3,
                   help="fail --hybrid above this relative profile "
                        "error — the single-method validation "
                        "tolerance (default: 5e-3)")
    p.add_argument("--hybrid-mass-tol", type=float, default=1e-6,
                   help="fail --hybrid above this relative mass drift "
                        "(default: 1e-6)")
    p.add_argument("--sweep", action="store_true",
                   help="run the scored scenario-validation sweep "
                        "instead (writes BENCH_sweep.json; with "
                        "--quick, the sub-minute CI subset; the "
                        "cavity Re=100 Hou et al. check is the "
                        "headline gate)")
    p.add_argument("--sweep-dir", default=None,
                   help="sweep working directory holding per-scenario "
                        "manifests and reports (default: a temp dir)")
    p.add_argument("--graph", action="store_true",
                   help="run the dependency-driven overlap gate instead: "
                        "the repro.graph executor vs the barriered "
                        "threaded runner on a rotating-hotspot "
                        "imbalanced workload, bitwise-checked against "
                        "the serial reference (writes BENCH_graph.json "
                        "+ a merged Chrome trace and summary.md)")
    p.add_argument("--graph-steps", type=int, default=40,
                   help="steps per --graph timed window (default: 40)")
    p.add_argument("--graph-ranks", type=int, default=4,
                   help="subregions/ranks for --graph (default: 4)")
    p.add_argument("--graph-delay", type=float, default=0.008,
                   help="rotating-hotspot sleep seconds per step for "
                        "--graph (default: 0.008)")
    p.add_argument("--min-graph-speedup", type=float, default=1.15,
                   help="fail --graph below this steps/s ratio over "
                        "the barriered threaded runner (default: 1.15)")
    p.add_argument("--serve", action="store_true",
                   help="run the service-layer throughput gate instead: "
                        "a multi-tenant workload through a live gateway "
                        "vs a sequential repro.run() loop (writes "
                        "BENCH_serve.json)")
    p.add_argument("--serve-jobs", type=int, default=6,
                   help="distinct problems in the --serve workload "
                        "(default: 6)")
    p.add_argument("--serve-warm", type=int, default=7,
                   help="repeat submissions per problem for --serve; "
                        "every repeat must be a cache hit (default: 7)")
    p.add_argument("--serve-workers", type=int, default=2,
                   help="pool worker processes for --serve (default: 2)")
    p.add_argument("--serve-steps", type=int, default=60,
                   help="steps per --serve job (default: 60)")
    p.add_argument("--serve-side", type=int, default=64,
                   help="square LB grid side per --serve job "
                        "(default: 64)")
    p.add_argument("--serve-dir", default=None,
                   help="serve directory for --serve (default: a fresh "
                        "temporary directory)")
    p.add_argument("--min-serve-speedup", type=float, default=3.0,
                   help="fail --serve below this aggregate-throughput "
                        "ratio vs the sequential loop (default: 3)")
    p.add_argument("--min-speedup", type=float, default=1.2,
                   help="fail --balance if rebalancing sustains less "
                        "than this times the baseline steps/s "
                        "(default: 1.2)")
    p.add_argument("--trace-dir", default=None,
                   help="where --trace writes its streams "
                        "(default: trace_bench/)")
    p.add_argument("--max-overhead", type=float, default=3.0,
                   help="fail --trace if the enabled tracer costs more "
                        "than this percent per step (default: 3)")
    p.add_argument("--ranks", type=int, default=4,
                   help="rank count for --collectives (default: 4)")
    p.add_argument("--out", default=None,
                   help="JSON output (default: BENCH_kernels.json, "
                        "BENCH_collectives.json with --collectives, "
                        "BENCH_trace.json with --trace, or "
                        "BENCH_balance.json with --balance)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("calibrate",
                       help="measure per-backend kernel speeds on "
                            "this host (feeds load balancing)")
    p.add_argument("--method", choices=("lb", "fd"), default="lb")
    p.add_argument("--ndim", type=int, default=2, choices=(2, 3))
    p.add_argument("--side", type=int, default=48,
                   help="periodic problem side (default: 48)")
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--backends", nargs="+", default=None,
                   help="also print per-rank weights for this "
                        "per-rank backend assignment")
    p.add_argument("--out", default=None,
                   help="write the calibration table as JSON here")
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser("chaos",
                       help="run one seeded fault-injection scenario")
    p.add_argument("scenario", nargs="?", default=None,
                   help="scenario name (see --list), 'random' for a "
                        "seeded mixed plan off the full fault menu, or "
                        "'none' for a fault-free run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", type=int, default=2,
                   help="fault count for the 'random' scenario "
                        "(default: 2)")
    p.add_argument("--steps", type=int, default=40)
    p.add_argument("--save-every", type=int, default=10)
    p.add_argument("--ranks", type=int, default=2,
                   help="rank count the generated plan targets "
                        "(default: 2, the runner's 2x1 decomposition)")
    p.add_argument("--plan", default=None,
                   help="run this fault-plan JSON file instead of the "
                        "scenario's generated plan")
    p.add_argument("--print-plan", action="store_true",
                   help="print the plan JSON and exit without running")
    p.add_argument("--list", action="store_true",
                   help="list the known scenarios and exit")
    p.add_argument("--workdir", default=None,
                   help="run directory (default: chaos_<scenario>_s<seed>)")
    p.add_argument("--json", default=None,
                   help="also write the classified outcome as JSON here")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("scenarios",
                       help="browse the scenario registry or run one "
                            "scored case")
    p.add_argument("action", choices=("list", "show", "run"),
                   nargs="?", default="list")
    p.add_argument("name", nargs="?", default=None,
                   help="scenario name (for show/run)")
    p.add_argument("--set", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="parameter override, repeatable (run only)")
    p.add_argument("--backend", default="serial",
                   help="local executor: serial, threaded, or "
                        "distributed (default: serial)")
    p.add_argument("--out", default=None,
                   help="save the final fields as .npz here (run only)")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("sweep",
                       help="march a scenario over a parameter grid "
                            "and score every point")
    p.add_argument("--scenario", required=True,
                   help="registry name (see `repro scenarios list`)")
    p.add_argument("--grid", action="append", default=[],
                   metavar="NAME=V1,V2,...",
                   help="one grid axis, repeatable; omitted parameters "
                        "take their defaults")
    p.add_argument("--backend", default="serial",
                   help="local executor backend (default: serial)")
    p.add_argument("--address", default=None,
                   help="gateway host:port — fan the grid through the "
                        "cluster service instead of running locally")
    p.add_argument("--serve-dir", default=None,
                   help="discover the gateway from this serve "
                        "directory's gateway.json (overridden by "
                        "--address)")
    p.add_argument("--out", default=None,
                   help="sweep directory: manifest, summary.json, "
                        "summary.md (default: sweeps/<scenario>)")
    p.add_argument("--no-resume", action="store_true",
                   help="recompute points the manifest already settles")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-job wait limit on the service executor "
                        "(default: 600 s)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("trace",
                       help="§7 T_comp/T_comm breakdown of a traced run")
    p.add_argument("run", nargs="+",
                   help="run workdir, trace/ directory, or "
                        "trace-*.jsonl files")
    p.add_argument("--out", default=None,
                   help="summary JSON (default: BENCH_trace.json)")
    p.add_argument("--chrome", default=None,
                   help="also write the merged Chrome trace-event JSON "
                        "here (loads in Perfetto)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("serve",
                       help="run the simulation-as-a-service gateway")
    p.add_argument("--dir", default="serve",
                   help="serve directory: queue, cache, history, "
                        "artifacts (default: serve/)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback; the gateway "
                        "is unauthenticated — widen it only behind an "
                        "authenticating proxy)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: 0 = pick a free one; the "
                        "bound address lands in <dir>/gateway.json)")
    p.add_argument("--workers", type=int, default=2,
                   help="pool worker processes (default: 2)")
    p.add_argument("--batch-size", type=int, default=4,
                   help="max small jobs assigned to one worker at once "
                        "(default: 4)")
    p.set_defaults(func=_cmd_serve)

    def _client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", default="serve",
                       help="serve directory to discover the gateway "
                            "from (default: serve/)")
        p.add_argument("--address", default=None,
                       help="gateway host:port (overrides --dir)")

    p = sub.add_parser("submit",
                       help="submit a problem to a running gateway")
    _client_args(p)
    p.add_argument("--spec", default=None,
                   help="ProblemSpec JSON file (overrides --problem)")
    p.add_argument("--problem", choices=("channel", "flue_pipe"),
                   default="channel")
    p.add_argument("--method", choices=("lb", "fd"), default="lb")
    p.add_argument("--shape", type=int, nargs="+", default=(64, 64))
    p.add_argument("--blocks", type=int, nargs="+", default=(1, 1))
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--nu", type=float, default=0.05)
    p.add_argument("--force", type=float, default=1e-5)
    p.add_argument("--jet", type=float, default=0.08)
    p.add_argument("--filter-eps", type=float, default=0.02)
    p.add_argument("--diag-every", type=int, default=10,
                   help="diagnostics period (streamed live; default: 10)")
    p.add_argument("--seed", type=int, default=0,
                   help="initial-condition seed: 0 starts from rest, a "
                        "nonzero seed adds a reproducible random "
                        "density perturbation (each seed is its own "
                        "cache key)")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (default: 0)")
    p.add_argument("--backend", default=None,
                   help="force serial/threaded/distributed (default: "
                        "the scheduler picks by problem size)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal")
    p.add_argument("--stream", action="store_true",
                   help="follow the live diagnostics stream")
    p.add_argument("--timeout", type=float, default=600.0)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("jobs", help="list a gateway's jobs")
    _client_args(p)
    p.add_argument("--gc", action="store_true",
                   help="compact the gateway's job history instead of "
                        "listing (keeps the last event per job)")
    p.set_defaults(func=_cmd_jobs)

    p = sub.add_parser("result",
                       help="fetch one job's result payload")
    _client_args(p)
    p.add_argument("job_id")
    p.add_argument("--fields-out", default=None,
                   help="also download the final fields as .npz here")
    p.set_defaults(func=_cmd_result)

    p = sub.add_parser("top",
                       help="live cluster view of a running gateway")
    _client_args(p)
    p.add_argument("--interval", type=float, default=1.0)
    p.add_argument("--iterations", type=int, default=None,
                   help="refresh this many times then exit "
                        "(default: until ^C)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("figures",
                       help="regenerate benchmarks/results/*.txt")
    p.set_defaults(func=_cmd_figures)

    args = parser.parse_args(argv)
    return args.func(args)
