"""Command-line tools: ``python -m repro.tools <command>``.

* ``simulate`` — run a named problem (channel / flue_pipe / cylinder)
  with either method, any decomposition, and save the fields;
* ``cluster`` — one simulated distributed run on the 1994 cluster,
  printing the §7-style measurement;
* ``figures`` — regenerate every figure's data table outside pytest.
"""

from .cli import main

__all__ = ["main"]
