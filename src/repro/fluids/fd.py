"""Explicit finite differences for subsonic flow (paper §6, eqs. 1-3).

A straightforward discretization of the isothermal compressible
Navier-Stokes equations: spatial derivatives by centered differences on
a uniform orthogonal grid, time derivatives by forward Euler.  For the
purpose of improving numerical stability the density equation (eq. 1)
is updated *using the velocities at time t+dt*: the velocity values are
computed first and the density is computed as a separate step — which is
also why FD sends **two messages per integration step** per neighbour
(velocity boundary, then density boundary) where the lattice Boltzmann
method sends one, the difference whose performance consequences §7
measures.

Per-step sequence (paper §6)::

    Calculate   Vx, Vy[, Vz]   (inner)
    Communicate Vx, Vy[, Vz]   (boundary)
    Calculate   rho            (inner)
    Communicate rho            (boundary)
    Filter      rho, Vx, Vy[, Vz] (inner)

Ghost width is 4: updates reach 1, the wall-density rule reaches 1 more,
and the fourth-order filter reaches 2 beyond that; ring-1 ghosts are
re-filtered locally so the two messages above are the only communication.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.subregion import SubregionState
from .backends import KernelBackend, resolve_backend
from .boundary import (
    PressureOutlet,
    VelocityInlet,
    build_wall_aux,
    enforce_noslip,
    enforce_wall_density,
)
from .filters import FourthOrderFilter
from .params import FluidParams

__all__ = ["FDMethod"]

_VEL_NAMES = ("u", "v", "w")


class FDMethod:
    """Explicit finite differences in 2 or 3 dimensions.

    Parameters
    ----------
    params:
        Physical/numerical parameters; ``params.check_stability(ndim)``
        is enforced at construction.
    ndim:
        2 or 3.
    inlets, outlets:
        Optional openings in the enclosing walls.
    """

    #: ghost layers; see module docstring
    pad = 4
    #: canonical spec name (``ProblemSpec.method``)
    method_name = "fd"

    def __init__(
        self,
        params: FluidParams,
        ndim: int = 2,
        inlets: Sequence[VelocityInlet] = (),
        outlets: Sequence[PressureOutlet] = (),
        backend: str | KernelBackend | None = None,
        pad: int | None = None,
    ) -> None:
        if ndim not in (2, 3):
            raise ValueError(f"ndim must be 2 or 3, got {ndim}")
        if pad is not None:
            if pad < type(self).pad:
                raise ValueError(
                    f"pad {pad} below the method minimum {type(self).pad}"
                )
            self.pad = pad
        if len(params.gravity) != ndim:
            raise ValueError(
                f"gravity {params.gravity} must have {ndim} components"
            )
        params.check_stability(ndim)
        self.params = params
        self.ndim = ndim
        self.vel_names: tuple[str, ...] = _VEL_NAMES[:ndim]
        self.field_names: tuple[str, ...] = ("rho",) + self.vel_names
        self.exchange_phases: tuple[tuple[str, ...], ...] = (
            self.vel_names,
            ("rho",),
        )
        self.inlets = tuple(inlets)
        self.outlets = tuple(outlets)
        self.filter = FourthOrderFilter(params.filter_eps)
        self.backend: KernelBackend = None  # type: ignore[assignment]
        self.set_backend(backend)

    def set_backend(
        self, backend: str | KernelBackend | None = None
    ) -> KernelBackend:
        """Bind a kernel backend (name, instance, or None for default).

        Unavailable backends degrade to ``numpy`` with a one-time
        warning — see :func:`repro.fluids.backends.resolve_backend`.
        """
        if isinstance(backend, KernelBackend):
            self.backend = backend
        else:
            self.backend = resolve_backend(backend, self)
        return self.backend

    # ------------------------------------------------------------------
    # ExplicitMethod protocol
    # ------------------------------------------------------------------
    def init_subregion(self, sub: SubregionState) -> None:
        """Allocate masks and scratch on a fresh subregion."""
        if sub.ndim != self.ndim:
            raise ValueError(
                f"subregion is {sub.ndim}D but method is {self.ndim}D"
            )
        if sub.pad != self.pad:
            raise ValueError(f"subregion pad {sub.pad} != method pad {self.pad}")
        build_wall_aux(sub)
        self.filter.build_mask(sub)
        for i, inlet in enumerate(self.inlets):
            sub.aux[f"inlet{i}"] = inlet.box.local_mask(sub)
        for i, outlet in enumerate(self.outlets):
            sub.aux[f"outlet{i}"] = outlet.box.local_mask(sub)
        for name in self.vel_names:
            sub.aux["new_" + name] = np.zeros(sub.padded_shape)

    def compute_phase(self, sub: SubregionState, phase: int) -> None:
        """Velocity update (phase 0) or density update (phase 1)."""
        if phase == 0:
            self._update_velocity(sub)
        elif phase == 1:
            self._update_density(sub)
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"FD has 2 compute phases, got {phase}")

    def finalize_step(self, sub: SubregionState) -> None:
        """Wall rules, openings, then the fourth-order filter."""
        g1 = sub.grown_interior(1)
        g3 = sub.grown_interior(3)
        enforce_wall_density(sub, g3)
        # Ghost-ring solid nodes facing an *inactive* block are never
        # refreshed by an exchange; zeroing them locally reproduces the
        # no-slip values the serial program holds there.
        enforce_noslip(sub, self.vel_names, g3)
        self._apply_openings(sub, g3)
        self.backend.filter_fields(self.filter, sub, self.field_names, g1)

    # ------------------------------------------------------------------
    # kernels — hot paths delegate to the pluggable backend (see
    # repro.fluids.backends; the numpy implementation in
    # backends/numpy_backend.py is the historical fused kernel, moved
    # verbatim).  No-slip enforcement stays here: boundary rules are
    # cheap and backend-independent.
    # ------------------------------------------------------------------
    def _update_velocity(self, sub: SubregionState) -> None:
        """Forward-Euler momentum update (eqs. 2-3) on the interior."""
        self.backend.fd_velocity(sub)
        enforce_noslip(sub, self.vel_names, sub.interior)

    def _update_density(self, sub: SubregionState) -> None:
        """Continuity update (eq. 1) with time-(t+dt) velocities."""
        # The freshly exchanged velocity ghosts are no-slip-enforced
        # already, except ghosts held against inactive blocks (and, at
        # step 0, the raw initial condition): enforce over one ring so
        # the mass fluxes read clean wall velocities.
        enforce_noslip(sub, self.vel_names, sub.grown_interior(1))
        self.backend.fd_density(sub)

    def _apply_openings(self, sub: SubregionState, region) -> None:
        """Force inlet velocities and outlet densities (node-wise)."""
        for i, inlet in enumerate(self.inlets):
            mask = sub.aux[f"inlet{i}"][region]
            if not mask.any():
                continue
            vel = inlet.velocity_at(sub.step)
            for d, name in enumerate(self.vel_names):
                arr = sub.fields[name][region]
                arr[mask] = vel[d]
        for i, outlet in enumerate(self.outlets):
            mask = sub.aux[f"outlet{i}"][region]
            if not mask.any():
                continue
            sub.fields["rho"][region][mask] = outlet.rho
