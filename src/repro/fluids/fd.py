"""Explicit finite differences for subsonic flow (paper §6, eqs. 1-3).

A straightforward discretization of the isothermal compressible
Navier-Stokes equations: spatial derivatives by centered differences on
a uniform orthogonal grid, time derivatives by forward Euler.  For the
purpose of improving numerical stability the density equation (eq. 1)
is updated *using the velocities at time t+dt*: the velocity values are
computed first and the density is computed as a separate step — which is
also why FD sends **two messages per integration step** per neighbour
(velocity boundary, then density boundary) where the lattice Boltzmann
method sends one, the difference whose performance consequences §7
measures.

Per-step sequence (paper §6)::

    Calculate   Vx, Vy[, Vz]   (inner)
    Communicate Vx, Vy[, Vz]   (boundary)
    Calculate   rho            (inner)
    Communicate rho            (boundary)
    Filter      rho, Vx, Vy[, Vz] (inner)

Ghost width is 4: updates reach 1, the wall-density rule reaches 1 more,
and the fourth-order filter reaches 2 beyond that; ring-1 ghosts are
re-filtered locally so the two messages above are the only communication.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.subregion import SubregionState
from ._kernels import central_diff, laplacian, region_shape
from .boundary import (
    PressureOutlet,
    VelocityInlet,
    build_wall_aux,
    enforce_noslip,
    enforce_wall_density,
)
from .filters import FourthOrderFilter
from .params import FluidParams

__all__ = ["FDMethod"]

_VEL_NAMES = ("u", "v", "w")


class FDMethod:
    """Explicit finite differences in 2 or 3 dimensions.

    Parameters
    ----------
    params:
        Physical/numerical parameters; ``params.check_stability(ndim)``
        is enforced at construction.
    ndim:
        2 or 3.
    inlets, outlets:
        Optional openings in the enclosing walls.
    """

    #: ghost layers; see module docstring
    pad = 4

    def __init__(
        self,
        params: FluidParams,
        ndim: int = 2,
        inlets: Sequence[VelocityInlet] = (),
        outlets: Sequence[PressureOutlet] = (),
    ) -> None:
        if ndim not in (2, 3):
            raise ValueError(f"ndim must be 2 or 3, got {ndim}")
        if len(params.gravity) != ndim:
            raise ValueError(
                f"gravity {params.gravity} must have {ndim} components"
            )
        params.check_stability(ndim)
        self.params = params
        self.ndim = ndim
        self.vel_names: tuple[str, ...] = _VEL_NAMES[:ndim]
        self.field_names: tuple[str, ...] = ("rho",) + self.vel_names
        self.exchange_phases: tuple[tuple[str, ...], ...] = (
            self.vel_names,
            ("rho",),
        )
        self.inlets = tuple(inlets)
        self.outlets = tuple(outlets)
        self.filter = FourthOrderFilter(params.filter_eps)

    # ------------------------------------------------------------------
    # ExplicitMethod protocol
    # ------------------------------------------------------------------
    def init_subregion(self, sub: SubregionState) -> None:
        """Allocate masks and scratch on a fresh subregion."""
        if sub.ndim != self.ndim:
            raise ValueError(
                f"subregion is {sub.ndim}D but method is {self.ndim}D"
            )
        if sub.pad != self.pad:
            raise ValueError(f"subregion pad {sub.pad} != method pad {self.pad}")
        build_wall_aux(sub)
        self.filter.build_mask(sub)
        for i, inlet in enumerate(self.inlets):
            sub.aux[f"inlet{i}"] = inlet.box.local_mask(sub)
        for i, outlet in enumerate(self.outlets):
            sub.aux[f"outlet{i}"] = outlet.box.local_mask(sub)
        for name in self.vel_names:
            sub.aux["new_" + name] = np.zeros(sub.padded_shape)

    def compute_phase(self, sub: SubregionState, phase: int) -> None:
        """Velocity update (phase 0) or density update (phase 1)."""
        if phase == 0:
            self._update_velocity(sub)
        elif phase == 1:
            self._update_density(sub)
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"FD has 2 compute phases, got {phase}")

    def finalize_step(self, sub: SubregionState) -> None:
        """Wall rules, openings, then the fourth-order filter."""
        g1 = sub.grown_interior(1)
        g3 = sub.grown_interior(3)
        enforce_wall_density(sub, g3)
        # Ghost-ring solid nodes facing an *inactive* block are never
        # refreshed by an exchange; zeroing them locally reproduces the
        # no-slip values the serial program holds there.
        enforce_noslip(sub, self.vel_names, g3)
        self._apply_openings(sub, g3)
        self.filter.apply(sub, self.field_names, g1)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _update_velocity(self, sub: SubregionState) -> None:
        """Forward-Euler momentum update (eqs. 2-3) on the interior.

        All derivative kernels write into per-subregion scratch
        (allocation-free after the first step); the accumulation order
        matches the classic form ``c + dt (-adv - press + visc + g)``.
        """
        p = self.params
        region = sub.interior
        rho = sub.fields["rho"]
        vels = [sub.fields[n] for n in self.vel_names]
        vel_mid = [c[region] for c in vels]
        cs2 = p.cs * p.cs
        ishape = vel_mid[0].shape
        acc = sub.scratch("fd_acc", ishape)    # adv + press
        t1 = sub.scratch("fd_t1", ishape)
        t2 = sub.scratch("fd_t2", ishape)

        for d, name in enumerate(self.vel_names):
            c = vels[d]
            # advection: (V . grad) V_d
            central_diff(c, region, 0, p.dx, out=acc)
            acc *= vel_mid[0]
            for ax in range(1, self.ndim):
                central_diff(c, region, ax, p.dx, out=t1)
                t1 *= vel_mid[ax]
                acc += t1
            # pressure: (cs^2 / rho) d rho / d x_d
            central_diff(rho, region, d, p.dx, out=t1)
            np.divide(cs2, rho[region], out=t2)
            t1 *= t2
            acc += t1
            # viscosity: nu * laplacian(V_d)
            laplacian(c, region, p.dx, out=t1, scratch=t2)
            t1 *= p.nu
            # new = c + dt * (visc - (adv + press) + g)
            t1 -= acc
            if p.gravity[d] != 0.0:
                t1 += p.gravity[d]
            t1 *= p.dt
            new = sub.aux["new_" + name][region]
            np.add(c[region], t1, out=new)
        for name in self.vel_names:
            sub.fields[name][region] = sub.aux["new_" + name][region]
        enforce_noslip(sub, self.vel_names, region)

    def _update_density(self, sub: SubregionState) -> None:
        """Continuity update (eq. 1) with time-(t+dt) velocities."""
        p = self.params
        region = sub.interior
        # The freshly exchanged velocity ghosts are no-slip-enforced
        # already, except ghosts held against inactive blocks (and, at
        # step 0, the raw initial condition): enforce over one ring so
        # the mass fluxes below read clean wall velocities.
        g1 = sub.grown_interior(1)
        enforce_noslip(sub, self.vel_names, g1)
        rho = sub.fields["rho"]
        # Mass flux rho(t) * V(t+dt), formed over one ring beyond the
        # interior (all its centered difference reads) instead of the
        # whole padded array, into reusable scratch.
        flux = sub.scratch("fd_flux", region_shape(g1))
        inner = tuple(slice(1, 1 + n) for n in sub.block.shape)
        div = sub.scratch("fd_div", region_shape(region))
        term = sub.scratch("fd_term", region_shape(region))
        for d, name in enumerate(self.vel_names):
            np.multiply(rho[g1], sub.fields[name][g1], out=flux)
            target = div if d == 0 else term
            central_diff(flux, inner, d, p.dx, out=target)
            if d > 0:
                div += term
        div *= p.dt
        rho[region] -= div

    def _apply_openings(self, sub: SubregionState, region) -> None:
        """Force inlet velocities and outlet densities (node-wise)."""
        for i, inlet in enumerate(self.inlets):
            mask = sub.aux[f"inlet{i}"][region]
            if not mask.any():
                continue
            vel = inlet.velocity_at(sub.step)
            for d, name in enumerate(self.vel_names):
                arr = sub.fields[name][region]
                arr[mask] = vel[d]
        for i, outlet in enumerate(self.outlets):
            mask = sub.aux[f"outlet{i}"][region]
            if not mask.any():
                continue
            sub.fields["rho"][region][mask] = outlet.rho
