"""Analytic reference solutions for validation (paper §7).

The performance experiments of §7 run Hagen-Poiseuille flow through a
rectangular channel, the textbook problem both methods "converge
quadratically with increased resolution in space" to.  This module
provides that exact solution (2D plane channel and 3D rectangular duct)
plus small-amplitude acoustic solutions used to validate the wave side
of subsonic flow.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "poiseuille_profile",
    "poiseuille_max_velocity",
    "duct_profile",
    "standing_wave",
    "acoustic_frequency",
    "taylor_green",
    "taylor_green_decay_rate",
]


def poiseuille_profile(
    y: np.ndarray, height: float, g: float, nu: float
) -> np.ndarray:
    """Steady plane-Poiseuille velocity profile.

    A body force (acceleration) ``g`` drives fluid between no-slip walls
    at ``y = 0`` and ``y = height``; the steady solution of eqs. 2-3 is
    the parabola ``u(y) = g y (height - y) / (2 nu)``.
    """
    return g * y * (height - y) / (2.0 * nu)


def poiseuille_max_velocity(height: float, g: float, nu: float) -> float:
    """Centerline velocity ``g H^2 / (8 nu)`` of the plane channel."""
    return g * height * height / (8.0 * nu)


def duct_profile(
    y: np.ndarray,
    z: np.ndarray,
    ly: float,
    lz: float,
    g: float,
    nu: float,
    terms: int = 41,
) -> np.ndarray:
    """Steady flow through a rectangular duct (3D Hagen-Poiseuille).

    Fourier-series solution (Landau & Lifshitz §17 problem form) for
    no-slip walls at ``y in {0, ly}`` and ``z in {0, lz}``::

        u(y,z) = (4 g ly^2 / (nu pi^3)) * sum_{odd n}
                 sin(n pi y / ly) / n^3 *
                 [1 - cosh(n pi (z - lz/2) / ly) / cosh(n pi lz / (2 ly))]

    ``y`` and ``z`` may be arrays (broadcast together).
    """
    y = np.asarray(y, dtype=float)
    z = np.asarray(z, dtype=float)
    out = np.zeros(np.broadcast(y, z).shape, dtype=float)
    pref = 4.0 * g * ly * ly / (nu * np.pi**3)

    def log_cosh(x):
        # overflow-free: log(cosh x) = |x| + log1p(e^{-2|x|}) - log 2
        ax = np.abs(x)
        return ax + np.log1p(np.exp(-2.0 * ax)) - np.log(2.0)

    for n in range(1, terms + 1, 2):
        k = n * np.pi / ly
        # cosh ratio in log space: high-n terms overflow a direct cosh
        ratio = np.exp(
            log_cosh(k * (z - lz / 2.0)) - log_cosh(k * lz / 2.0)
        )
        out += np.sin(k * y) / n**3 * (1.0 - ratio)
    return pref * out


def standing_wave(
    x: np.ndarray,
    t: float,
    length: float,
    mode: int,
    amplitude: float,
    rho0: float,
    cs: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Inviscid 1D standing acoustic wave in a periodic box.

    Returns ``(rho, u)`` for a mode-``mode`` standing wave of relative
    density amplitude ``amplitude``::

        rho = rho0 (1 + A cos(k x) cos(omega t))
        u   = A cs sin(k x) sin(omega t)

    with ``k = 2 pi mode / length`` and ``omega = cs k``.  Used to check
    the propagation speed of the fast acoustic scale whose resolution
    requirement (eq. 4) motivates explicit methods.
    """
    k = 2.0 * np.pi * mode / length
    omega = cs * k
    rho = rho0 * (1.0 + amplitude * np.cos(k * x) * np.cos(omega * t))
    u = amplitude * cs * np.sin(k * x) * np.sin(omega * t)
    return rho, u


def acoustic_frequency(length: float, mode: int, cs: float) -> float:
    """Frequency (radians per unit time) of the periodic-box mode."""
    return cs * 2.0 * np.pi * mode / length


def taylor_green(
    x: np.ndarray,
    y: np.ndarray,
    t: float,
    length: float,
    u0: float,
    nu: float,
) -> tuple[np.ndarray, np.ndarray]:
    """The Taylor-Green vortex array: an exact decaying Navier-Stokes
    solution in a periodic box.

    ::

        u =  u0 cos(kx) sin(ky) exp(-2 nu k^2 t)
        v = -u0 sin(kx) cos(ky) exp(-2 nu k^2 t)

    with ``k = 2 pi / length``.  Divergence-free, nonlinear terms cancel
    exactly, so viscosity alone sets the evolution — the cleanest
    possible oracle for a solver's effective viscosity (and hence for
    the LB relation ``nu = (tau - 1/2)/3``).  ``x``/``y`` broadcast.
    """
    k = 2.0 * np.pi / length
    damp = np.exp(-2.0 * nu * k * k * t)
    u = u0 * np.cos(k * x) * np.sin(k * y) * damp
    v = -u0 * np.sin(k * x) * np.cos(k * y) * damp
    return u, v


def taylor_green_decay_rate(length: float, nu: float) -> float:
    """Kinetic-energy decay rate: ``E(t) = E(0) exp(-4 nu k^2 t)``.

    (The velocity decays at ``2 nu k^2``; energy is quadratic.)
    """
    k = 2.0 * np.pi / length
    return 4.0 * nu * k * k
