"""Fourth-order numerical-viscosity filter (paper §6).

Fast flow and the interaction between acoustic waves and hydrodynamics
lead to slow-growing numerical instabilities at high Reynolds number;
the paper suppresses them by dissipating spatial frequencies whose
wavelength is comparable to the grid mesh size, using a fourth-order
numerical viscosity (Peyret & Taylor).  The same filter serves both the
finite-difference and the lattice Boltzmann method, applied to the
macroscopic fields ``rho, Vx, Vy(,Vz)`` once per integration step::

    a <- a - eps * sum_axes (a[i-2] - 4 a[i-1] + 6 a[i] - 4 a[i+1] + a[i+2])

The correction is zeroed at any node whose stencil touches a solid wall
node, so wall values stay pinned and the stencil never reads across a
wall; ``eps <= 1/16`` keeps the filter itself stable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.subregion import SubregionState
from ._kernels import Region, dilate_star, fourth_diff_sum, region_shape

__all__ = ["FourthOrderFilter"]


class FourthOrderFilter:
    """The paper's filter, bound to a strength ``eps``.

    A strength of 0 turns the filter into a no-op (used by conservation
    tests and by low-Reynolds validation runs where it is unnecessary).
    """

    #: nodes of reach of the filter stencil per axis
    reach = 2

    def __init__(self, eps: float):
        if not 0.0 <= eps <= 1.0 / 16.0:
            raise ValueError(f"filter eps {eps} outside [0, 1/16]")
        self.eps = eps

    @property
    def enabled(self) -> bool:
        return self.eps > 0.0

    def build_mask(self, sub: SubregionState) -> None:
        """Precompute the keep-mask: 1 where filtering is allowed.

        Stored in ``sub.aux['filter_keep']`` as float64 so it multiplies
        straight into the vectorized correction.
        """
        near_wall = dilate_star(sub.solid, self.reach)
        sub.aux["filter_keep"] = (~near_wall).astype(np.float64)

    def apply(
        self,
        sub: SubregionState,
        names: Sequence[str],
        region: Region,
    ) -> None:
        """Filter the named fields over ``region`` (out-of-place reads).

        The full correction array is evaluated before any write, so a
        node never reads an already-filtered neighbour — this is what
        makes locally re-filtering ghost ring 1 reproduce the
        neighbouring subregion's interior filtering bit for bit.
        """
        if not self.enabled:
            return
        keep = sub.aux["filter_keep"][region]
        shape = region_shape(region)
        corr = sub.scratch("filter_corr", shape)
        tmp = sub.scratch("filter_tmp", shape)
        for name in names:
            a = sub.fields[name]
            fourth_diff_sum(a, region, out=corr, scratch=tmp)
            corr *= keep
            corr *= self.eps
            a[region] -= corr
