"""The D2Q9 and D3Q15 lattices.

The paper's communication accounting (§6) pins down the lattices used:
the lattice Boltzmann method communicates 3 population values per
boundary fluid node in 2D and 5 in 3D — exactly the number of D2Q9 /
D3Q15 populations crossing a subregion face.  Both lattices share the
lattice speed of sound ``c_s^2 = 1/3`` and the BGK viscosity relation
``nu = (tau - 1/2) / 3`` (lattice units).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Lattice", "D2Q9", "D3Q15", "lattice_for"]


@dataclass(frozen=True)
class Lattice:
    """Velocity set, weights and opposite-direction table."""

    name: str
    e: np.ndarray  # (Q, ndim) int
    w: np.ndarray  # (Q,) float
    opposite: np.ndarray  # (Q,) int

    @property
    def q(self) -> int:
        return self.e.shape[0]

    @property
    def ndim(self) -> int:
        return self.e.shape[1]

    def crossing_populations(self, axis: int, side: int) -> np.ndarray:
        """Indices of populations leaving a face (``e[axis] == side``).

        The count of these (3 for D2Q9, 5 for D3Q15) is the per-node
        payload of the paper's one-message-per-step LB exchange.
        """
        return np.nonzero(self.e[:, axis] == side)[0]


def _make(name: str, e_list: list[tuple[int, ...]], w_list: list[float]) -> Lattice:
    e = np.array(e_list, dtype=np.int64)
    w = np.array(w_list, dtype=np.float64)
    if not np.isclose(w.sum(), 1.0):
        raise AssertionError(f"{name} weights sum to {w.sum()}")
    opp = np.empty(len(e_list), dtype=np.int64)
    for i, ei in enumerate(e_list):
        match = [j for j, ej in enumerate(e_list) if all(a == -b for a, b in zip(ej, ei))]
        opp[i] = match[0]
    return Lattice(name=name, e=e, w=w, opposite=opp)


#: D2Q9: rest + 4 axis directions (w=1/9) + 4 diagonals (w=1/36).
D2Q9 = _make(
    "D2Q9",
    [
        (0, 0),
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
    ],
    [4.0 / 9.0] + [1.0 / 9.0] * 4 + [1.0 / 36.0] * 4,
)

#: D3Q15: rest + 6 axis directions (w=1/9) + 8 cube diagonals (w=1/72).
D3Q15 = _make(
    "D3Q15",
    [
        (0, 0, 0),
        (1, 0, 0), (-1, 0, 0),
        (0, 1, 0), (0, -1, 0),
        (0, 0, 1), (0, 0, -1),
        (1, 1, 1), (-1, -1, -1),
        (1, 1, -1), (-1, -1, 1),
        (1, -1, 1), (-1, 1, -1),
        (1, -1, -1), (-1, 1, 1),
    ],
    [2.0 / 9.0] + [1.0 / 9.0] * 6 + [1.0 / 72.0] * 8,
)


def lattice_for(ndim: int) -> Lattice:
    """The paper's lattice for the given dimensionality."""
    if ndim == 2:
        return D2Q9
    if ndim == 3:
        return D3Q15
    raise ValueError(f"no lattice for ndim={ndim}")
