"""Numba-compiled loop backend: GIL-free multicore kernels.

Wraps the plain-Python 2D kernels of :mod:`._numba_kernels` with
``@njit(parallel=..., fastmath=True, cache=True, nogil=True)``.  Two
registry entries share this class:

``numba``
    ``parallel=True`` — ``prange`` spreads rows over all cores and the
    compiled code releases the GIL, so ``ThreadedSimulation`` scales.
``numba-serial``
    ``parallel=False`` — deterministic single-thread machine code (no
    thread-count dependence), still GIL-free.

Both factories raise :class:`~repro.fluids.backends.BackendUnavailable`
when numba is not importable or the method is not 2D; the resolver then
degrades to ``numpy`` with a one-time warning.  ``mode="python"``
bypasses the numba requirement and runs the same kernels interpreted —
orders of magnitude slower, used only by the parity suite to exercise
the loop arithmetic on hosts without numba.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._kernels import Region, region_shape
from . import BackendUnavailable, KernelBackend, register_backend
from . import _numba_kernels as K

__all__ = ["NumbaBackend"]

#: compiled kernels, keyed by (kernel name, parallel flag); shared by
#: every backend instance so each variant compiles exactly once
_COMPILED: dict[tuple[str, bool], object] = {}


def _compiled(name: str, parallel: bool):
    key = (name, parallel)
    fn = _COMPILED.get(key)
    if fn is None:
        import numba

        fn = numba.njit(
            parallel=parallel, fastmath=True, cache=True, nogil=True
        )(getattr(K, name))
        _COMPILED[key] = fn
    return fn


def _bounds(region: Region) -> tuple[int, int, int, int]:
    si, sj = region
    return si.start, si.stop, sj.start, sj.stop


class NumbaBackend(KernelBackend):
    """Loop kernels compiled per (kernel, parallel) pair on first use."""

    def __init__(self, method, parallel: bool = True,
                 mode: str = "compiled") -> None:
        if mode not in ("compiled", "python"):
            raise ValueError(f"mode must be compiled|python, got {mode!r}")
        if mode == "compiled" and not K.HAVE_NUMBA:
            raise BackendUnavailable("numba is not installed")
        if method.ndim != 2:
            raise BackendUnavailable(
                f"numba kernels cover 2D only (method is {method.ndim}D)"
            )
        super().__init__(method)
        self.parallel = bool(parallel)
        self.mode = mode
        self.name = "numba" if self.parallel else "numba-serial"
        g = method.params.gravity
        self._gx, self._gy = float(g[0]), float(g[1])
        lat = getattr(method, "lattice", None)
        if lat is not None:
            # Flat per-population constants for the loop kernels; the
            # fused-polynomial coefficients come straight off the
            # method's precomputed broadcast views.
            self._ex = lat.e[:, 0].astype(np.float64)
            self._ey = lat.e[:, 1].astype(np.float64)
            self._exi = lat.e[:, 0].astype(np.int64)
            self._eyi = lat.e[:, 1].astype(np.int64)
            self._w = lat.w.astype(np.float64)
            self._a1 = np.ascontiguousarray(method._a1_b, dtype=np.float64).ravel()
            self._a0 = np.ascontiguousarray(method._a0_b, dtype=np.float64).ravel()
            pref = method._pref
            self._cgx = 3.0 * pref * self._gx
            self._cgy = 3.0 * pref * self._gy

    def _fn(self, name: str):
        if self.mode == "python":
            return getattr(K, name)
        return _compiled(name, self.parallel)

    # -- lattice Boltzmann --------------------------------------------
    def lb_relax(self, sub) -> None:
        m = self.method
        i0, i1, j0, j1 = _bounds(sub.interior)
        self._fn("lb_relax_2d")(
            sub.fields["f"], sub.fields["rho"],
            sub.fields["u"], sub.fields["v"], sub.aux["fluid_f"],
            self._ex, self._ey, self._w, self._a1, self._a0,
            m._omega, self._cgx, self._cgy, i0, i1, j0, j1,
        )

    def lb_stream(self, sub, region) -> None:
        i0, i1, j0, j1 = _bounds(region)
        self._fn("lb_stream_2d")(
            sub.fields["f"], sub.aux["f_scratch"],
            self._exi, self._eyi, i0, i1, j0, j1,
        )

    def lb_moments(self, sub, region) -> None:
        i0, i1, j0, j1 = _bounds(region)
        self._fn("lb_moments_2d")(
            sub.fields["f"], sub.fields["rho"],
            sub.fields["u"], sub.fields["v"], sub.aux["fluid_f"],
            self._ex, self._ey, self._gx, self._gy, i0, i1, j0, j1,
        )

    # -- finite differences -------------------------------------------
    def fd_velocity(self, sub) -> None:
        p = self.method.params
        i0, i1, j0, j1 = _bounds(sub.interior)
        self._fn("fd_velocity_2d")(
            sub.fields["u"], sub.fields["v"], sub.fields["rho"],
            sub.aux["new_u"], sub.aux["new_v"],
            p.dx, p.dt, p.nu, p.cs * p.cs, self._gx, self._gy,
            i0, i1, j0, j1,
        )

    def fd_density(self, sub) -> None:
        p = self.method.params
        region = sub.interior
        i0, i1, j0, j1 = _bounds(region)
        div = sub.scratch("nb_div", region_shape(region))
        self._fn("fd_density_2d")(
            sub.fields["rho"], sub.fields["u"], sub.fields["v"],
            div, p.dx, p.dt, i0, i1, j0, j1,
        )

    # -- shared filter ------------------------------------------------
    def filter_fields(self, flt, sub, names: Sequence[str], region) -> None:
        if not flt.enabled:
            return
        i0, i1, j0, j1 = _bounds(region)
        keep = sub.aux["filter_keep"]
        corr = sub.scratch("nb_corr", region_shape(region))
        fn = self._fn("filter_2d")
        for name in names:
            fn(sub.fields[name], keep, flt.eps, corr, i0, i1, j0, j1)


register_backend("numba", lambda method: NumbaBackend(method, parallel=True))
register_backend(
    "numba-serial", lambda method: NumbaBackend(method, parallel=False)
)
