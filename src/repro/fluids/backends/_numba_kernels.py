"""Loop-form 2D kernels, written in the numba-compilable subset.

Each function below is plain Python over raw ``float64`` arrays with
explicit bounds ``(i0, i1, j0, j1)`` into the padded layout — exactly
the region slices the array kernels use, spelled out as integers.  The
:mod:`.numba_backend` wrapper compiles them with
``@njit(parallel=..., fastmath=True, cache=True, nogil=True)``; the
outer ``prange`` row loop spreads rows over cores and releases the GIL,
which is what lets ``ThreadedSimulation`` scale past one core.

When numba is absent ``prange`` degrades to ``range`` and the same
source runs interpreted — catastrophically slow, but numerically the
same per-node arithmetic, which is how the parity suite exercises these
kernels on hosts without numba.

Read/write hazards are handled exactly like the array kernels: LB
streaming bounces through the ``f_scratch`` buffer, the FD velocity
update writes ``new_u``/``new_v`` before copying back, and the density
update and filter stage their corrections in a scratch plane so no node
reads an already-updated neighbour.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only on numba hosts
    from numba import prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    prange = range
    HAVE_NUMBA = False

#: names of the kernel functions the backend compiles
KERNEL_NAMES = (
    "lb_relax_2d",
    "lb_stream_2d",
    "lb_moments_2d",
    "fd_velocity_2d",
    "fd_density_2d",
    "filter_2d",
)


def lb_relax_2d(f, rho, u, v, fluid, ex, ey, w, a1, a0,
                omega, cgx, cgy, i0, i1, j0, j1):
    """BGK collision + Guo forcing, one fused polynomial per population.

    ``delta_k = w_k rho [(4.5 omega eu + A1_k) eu + A0_k - s] - omega f_k``
    with ``s = 1.5 omega |u|^2 + cgx u + cgy v`` and
    ``cg = 3 (1 - 1/(2 tau)) g`` — the same Horner form as the numpy
    kernel, per node.  Solid nodes keep their populations.
    """
    q = f.shape[0]
    c45 = 4.5 * omega
    c15 = 1.5 * omega
    for i in prange(i0, i1):
        for j in range(j0, j1):
            uu = u[i, j]
            vv = v[i, j]
            s = (uu * uu + vv * vv) * c15 + uu * cgx + vv * cgy
            r = rho[i, j]
            fl = fluid[i, j]
            for k in range(q):
                eu = ex[k] * uu + ey[k] * vv
                delta = (((c45 * eu + a1[k]) * eu + a0[k] - s)
                         * w[k] * r - omega * f[k, i, j])
                f[k, i, j] += delta * fl


def lb_stream_2d(f, scratch, exi, eyi, i0, i1, j0, j1):
    """Streaming in pull form: ``F_k(x) <- F_k(x - e_k)``."""
    q = f.shape[0]
    for k in range(q):
        di = exi[k]
        dj = eyi[k]
        for i in prange(i0, i1):
            for j in range(j0, j1):
                scratch[k, i, j] = f[k, i - di, j - dj]
    for k in range(q):
        for i in prange(i0, i1):
            for j in range(j0, j1):
                f[k, i, j] = scratch[k, i, j]


def lb_moments_2d(f, rho, u, v, fluid, ex, ey, gx, gy, i0, i1, j0, j1):
    """Fluid variables from populations (plus Guo half-force shift)."""
    q = f.shape[0]
    hgx = 0.5 * gx
    hgy = 0.5 * gy
    for i in prange(i0, i1):
        for j in range(j0, j1):
            r = 0.0
            mu = 0.0
            mv = 0.0
            for k in range(q):
                fk = f[k, i, j]
                r += fk
                mu += ex[k] * fk
                mv += ey[k] * fk
            rho[i, j] = r
            fl = fluid[i, j]
            u[i, j] = (mu / r + hgx) * fl
            v[i, j] = (mv / r + hgy) * fl


def fd_velocity_2d(u, v, rho, new_u, new_v,
                   dx, dt, nu, cs2, gx, gy, i0, i1, j0, j1):
    """Forward-Euler momentum update (eqs. 2-3), two-pass.

    ``new = c + dt (visc - (adv + press) + g)`` with centered first and
    second differences; the copy-back runs only after every node's new
    value exists, so the advection stencil never reads an updated
    neighbour.
    """
    h = 0.5 / dx
    h2 = 1.0 / (dx * dx)
    for i in prange(i0, i1):
        for j in range(j0, j1):
            uu = u[i, j]
            vv = v[i, j]
            pre = cs2 / rho[i, j]
            adv = (uu * (u[i + 1, j] - u[i - 1, j])
                   + vv * (u[i, j + 1] - u[i, j - 1])) * h
            prs = (rho[i + 1, j] - rho[i - 1, j]) * h * pre
            vis = nu * ((u[i + 1, j] - 2.0 * uu + u[i - 1, j])
                        + (u[i, j + 1] - 2.0 * uu + u[i, j - 1])) * h2
            new_u[i, j] = uu + dt * (vis - (adv + prs) + gx)
            adv = (uu * (v[i + 1, j] - v[i - 1, j])
                   + vv * (v[i, j + 1] - v[i, j - 1])) * h
            prs = (rho[i, j + 1] - rho[i, j - 1]) * h * pre
            vis = nu * ((v[i + 1, j] - 2.0 * vv + v[i - 1, j])
                        + (v[i, j + 1] - 2.0 * vv + v[i, j - 1])) * h2
            new_v[i, j] = vv + dt * (vis - (adv + prs) + gy)
    for i in prange(i0, i1):
        for j in range(j0, j1):
            u[i, j] = new_u[i, j]
            v[i, j] = new_v[i, j]


def fd_density_2d(rho, u, v, div, dx, dt, i0, i1, j0, j1):
    """Continuity update (eq. 1) with time-(t+dt) velocities, two-pass.

    The divergence of ``rho(t) V(t+dt)`` is staged in ``div`` (region
    shape) before any density is touched — centered differences read one
    ring of time-t densities beyond the region.
    """
    h = 0.5 / dx
    for i in prange(i0, i1):
        for j in range(j0, j1):
            dfx = (rho[i + 1, j] * u[i + 1, j]
                   - rho[i - 1, j] * u[i - 1, j]) * h
            dfy = (rho[i, j + 1] * v[i, j + 1]
                   - rho[i, j - 1] * v[i, j - 1]) * h
            div[i - i0, j - j0] = (dfx + dfy) * dt
    for i in prange(i0, i1):
        for j in range(j0, j1):
            rho[i, j] -= div[i - i0, j - j0]


def filter_2d(a, keep, eps, corr, i0, i1, j0, j1):
    """Fourth-order numerical-viscosity filter, two-pass.

    ``corr = eps keep (12 a + sum_axis (a[-2] + a[+2] - 4 (a[-1] + a[+1])))``
    staged over the whole region before subtraction, so a node never
    reads an already-filtered neighbour (the property that makes local
    ghost re-filtering reproduce the neighbour's interior filtering).
    """
    for i in prange(i0, i1):
        for j in range(j0, j1):
            c = 12.0 * a[i, j]
            c += a[i - 2, j] + a[i + 2, j] - 4.0 * (a[i - 1, j] + a[i + 1, j])
            c += a[i, j - 2] + a[i, j + 2] - 4.0 * (a[i, j - 1] + a[i, j + 1])
            corr[i - i0, j - j0] = c * eps * keep[i, j]
    for i in prange(i0, i1):
        for j in range(j0, j1):
            a[i, j] -= corr[i - i0, j - j0]
