"""The fused NumPy kernel backend (the default).

These are the historical in-method kernels of :class:`~repro.fluids.lbm.
LBMethod` / :class:`~repro.fluids.fd.FDMethod`, moved verbatim behind
the :class:`~repro.fluids.backends.KernelBackend` interface — same
operations in the same order on the same scratch buffers (the
``lb_*``/``fd_*``/``filter_*`` names), so a run through this backend is
bit-identical to the pre-backend code and stays allocation-free after
the first step.
"""

from __future__ import annotations

import numpy as np

from .._kernels import Region, central_diff, laplacian, region_shape, shift_region
from . import KernelBackend, register_backend

__all__ = ["NumpyBackend"]


def lb_relax(method, sub) -> None:
    """BGK collision + Guo forcing; solid nodes do not collide.

    The relaxation towards equilibrium and the forcing term share every
    factor (``w_i``, ``rho``, ``e_i . u``), so the whole collision
    increment collapses into one polynomial per population with
    coefficients precomputed at method construction::

        delta_i = w_i rho [4.5 w eu^2 + A1_i eu + A0_i - s] - w f_i
        s       = 1.5 w |u|^2 + 3 pref (g . u)

    where ``w = 1/tau``, ``pref = 1 - 1/(2 tau)``,
    ``A1_i = 3 w + 9 pref (e_i . g)`` and ``A0_i = w + 3 pref (e_i . g)``.
    Expanding recovers the textbook ``w (f_eq_i - f_i) + S_i`` with the
    Guo source ``S_i = pref w_i [3 (e_i - u) + 9 eu e_i] . (rho g)``.
    All work lands in per-subregion scratch (allocation-free after step
    one).
    """
    region = sub.interior
    f = sub.fields["f"]
    rho = sub.fields["rho"][region]
    vels = [sub.fields[n][region] for n in method.vel_names]
    ishape = rho.shape
    qshape = (method.lattice.q,) + ishape
    eu = sub.scratch("lb_eu", qshape)
    delta = sub.scratch("lb_delta", qshape)
    s = sub.scratch("lb_usq", ishape)
    tmp = sub.scratch("lb_tmp", ishape)
    g = method.params.gravity
    omega = method._omega
    # eu <- e_i . u (delta doubles as the per-axis scratch)
    np.multiply(method._e_b[0], vels[0], out=eu)
    for d in range(1, method.ndim):
        np.multiply(method._e_b[d], vels[d], out=delta)
        eu += delta
    # s <- 1.5 w |u|^2 + 3 pref (g . u)
    np.multiply(vels[0], vels[0], out=s)
    for d in range(1, method.ndim):
        np.multiply(vels[d], vels[d], out=tmp)
        s += tmp
    s *= 1.5 * omega
    for d in range(method.ndim):
        if g[d] != 0.0:
            np.multiply(vels[d], 3.0 * method._pref * g[d], out=tmp)
            s += tmp
    # delta <- w_i rho ((4.5 w eu + A1) eu + A0 - s)   (Horner form)
    np.multiply(eu, 4.5 * omega, out=delta)
    delta += method._a1_b
    delta *= eu
    delta += method._a0_b
    delta -= s
    delta *= method._w_b
    delta *= rho
    # delta -= w f  (eu is dead past the polynomial; reuse it)
    fview = f[(slice(None),) + region]
    np.multiply(fview, omega, out=eu)
    delta -= eu
    # Solid nodes keep their populations (no collision).
    delta *= sub.aux["fluid_f"][region]
    fview += delta


def lb_stream(method, sub, region: Region) -> None:
    """Streaming in pull form: ``F_i(x) <- F_i(x - e_i)``."""
    f = sub.fields["f"]
    scratch = sub.aux["f_scratch"]
    for i in range(method.lattice.q):
        src = region
        for d in range(method.ndim):
            e = int(method.lattice.e[i, d])
            if e:
                src = shift_region(src, d, -e)
        scratch[(i,) + region] = f[(i,) + src]
    f[(slice(None),) + region] = scratch[(slice(None),) + region]


def lb_moments(method, sub, region: Region) -> None:
    """Fluid variables from populations (plus Guo half-force shift).

    Density is summed directly into the field view; each momentum is a
    signed sum of population planes written straight into the velocity
    field view (``e`` components are -1/0/+1).
    """
    f = sub.fields["f"]
    view = f[(slice(None),) + region]
    rho = sub.fields["rho"][region]
    np.sum(view, axis=0, out=rho)
    g = method.params.gravity
    fluid = sub.aux["fluid_f"][region]
    for d, name in enumerate(method.vel_names):
        vel = sub.fields[name][region]
        plus, minus = method._mom_idx[d]
        np.subtract(view[plus[0]], view[minus[0]], out=vel)
        for i in plus[1:]:
            vel += view[i]
        for i in minus[1:]:
            vel -= view[i]
        vel /= rho
        if g[d] != 0.0:
            vel += 0.5 * g[d]
        # Walls are no-slip: solid nodes report zero velocity.
        vel *= fluid


def fd_velocity(method, sub) -> None:
    """Forward-Euler momentum update (eqs. 2-3) on the interior.

    All derivative kernels write into per-subregion scratch
    (allocation-free after the first step); the accumulation order
    matches the classic form ``c + dt (-adv - press + visc + g)``.
    The caller (:meth:`FDMethod.compute_phase`) re-enforces no-slip
    afterwards — boundary rules stay backend-independent.
    """
    p = method.params
    region = sub.interior
    rho = sub.fields["rho"]
    vels = [sub.fields[n] for n in method.vel_names]
    vel_mid = [c[region] for c in vels]
    cs2 = p.cs * p.cs
    ishape = vel_mid[0].shape
    acc = sub.scratch("fd_acc", ishape)    # adv + press
    t1 = sub.scratch("fd_t1", ishape)
    t2 = sub.scratch("fd_t2", ishape)

    for d, name in enumerate(method.vel_names):
        c = vels[d]
        # advection: (V . grad) V_d
        central_diff(c, region, 0, p.dx, out=acc)
        acc *= vel_mid[0]
        for ax in range(1, method.ndim):
            central_diff(c, region, ax, p.dx, out=t1)
            t1 *= vel_mid[ax]
            acc += t1
        # pressure: (cs^2 / rho) d rho / d x_d
        central_diff(rho, region, d, p.dx, out=t1)
        np.divide(cs2, rho[region], out=t2)
        t1 *= t2
        acc += t1
        # viscosity: nu * laplacian(V_d)
        laplacian(c, region, p.dx, out=t1, scratch=t2)
        t1 *= p.nu
        # new = c + dt * (visc - (adv + press) + g)
        t1 -= acc
        if p.gravity[d] != 0.0:
            t1 += p.gravity[d]
        t1 *= p.dt
        new = sub.aux["new_" + name][region]
        np.add(c[region], t1, out=new)
    for name in method.vel_names:
        sub.fields[name][region] = sub.aux["new_" + name][region]


def fd_density(method, sub) -> None:
    """Continuity update (eq. 1) with time-(t+dt) velocities.

    The caller has already no-slip-enforced one ghost ring, so the mass
    fluxes below read clean wall velocities.
    """
    p = method.params
    region = sub.interior
    g1 = sub.grown_interior(1)
    rho = sub.fields["rho"]
    # Mass flux rho(t) * V(t+dt), formed over one ring beyond the
    # interior (all its centered difference reads) instead of the
    # whole padded array, into reusable scratch.
    flux = sub.scratch("fd_flux", region_shape(g1))
    inner = tuple(slice(1, 1 + n) for n in sub.block.shape)
    div = sub.scratch("fd_div", region_shape(region))
    term = sub.scratch("fd_term", region_shape(region))
    for d, name in enumerate(method.vel_names):
        np.multiply(rho[g1], sub.fields[name][g1], out=flux)
        target = div if d == 0 else term
        central_diff(flux, inner, d, p.dx, out=target)
        if d > 0:
            div += term
    div *= p.dt
    rho[region] -= div


class NumpyBackend(KernelBackend):
    """Fused, allocation-free NumPy array kernels (the default)."""

    name = "numpy"
    parallel = False

    def lb_relax(self, sub) -> None:
        lb_relax(self.method, sub)

    def lb_stream(self, sub, region) -> None:
        lb_stream(self.method, sub, region)

    def lb_moments(self, sub, region) -> None:
        lb_moments(self.method, sub, region)

    def fd_velocity(self, sub) -> None:
        fd_velocity(self.method, sub)

    def fd_density(self, sub) -> None:
        fd_density(self.method, sub)

    def filter_fields(self, flt, sub, names, region) -> None:
        flt.apply(sub, names, region)


register_backend("numpy", NumpyBackend)
