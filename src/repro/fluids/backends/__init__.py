"""Pluggable per-subregion kernel backends.

The numerical methods of :mod:`repro.fluids` express their hot kernels
(LB collision/streaming/moments, the FD velocity/density updates, the
fourth-order filter) against a narrow :class:`KernelBackend` interface,
so one subregion can integrate with fused NumPy array kernels while its
neighbour runs GIL-free compiled loops — the patch-based heterogeneity
of Feichtinger et al., applied to *backends* instead of hosts.  The
paper's load-balancing machinery treats a fast backend exactly like a
fast host: :func:`repro.cluster.calibration.calibrate_backends`
measures each backend's nodes/s and feeds the speeds into
:class:`~repro.balance.LoadEstimator` / ``Decomposition(weights=)``.

Three registered implementations:

``numpy``
    The fused allocation-free NumPy kernels (the default; bit-identical
    to the historical in-method kernels, which moved verbatim into
    :mod:`.numpy_backend`).
``numba``
    ``@njit(parallel=True, fastmath=True, cache=True)`` loop kernels
    that release the GIL and spread rows over cores with ``prange``.
``numba-serial``
    The same compiled kernels with ``parallel=False`` — deterministic
    single-thread execution (no thread-count dependence at all), for
    reproducibility-sensitive runs on numba hosts.

**Resolver contract**: :func:`resolve_backend` never raises on a
missing optional dependency.  Asking for ``numba`` on a host without
numba (or for a method shape the numba kernels do not cover) degrades
to the ``numpy`` backend with a one-time :class:`BackendFallbackWarning`
— ``pip install`` without numba must import, run and pass tests.

**Scratch ownership**: every backend allocates its work buffers through
:meth:`repro.core.subregion.SubregionState.scratch` under names
prefixed with the backend's own namespace (``lb_*``/``fd_*``/
``filter_*`` for numpy — the historical names, so the allocation-
freedom tests keep holding — and ``nb_*`` for the numba kernels).
Scratch lives in ``sub.aux``: never exchanged, never dumped, rebuilt on
first use after a restore, so switching a subregion's backend across a
checkpoint restart is safe.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...core.subregion import SubregionState

__all__ = [
    "KernelBackend",
    "BackendUnavailable",
    "BackendFallbackWarning",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "available_backends",
    "resolve_backend",
    "register_backend",
]

DEFAULT_BACKEND = "numpy"


class BackendUnavailable(RuntimeError):
    """A backend cannot serve this host or method (missing optional
    dependency, unsupported dimensionality, ...).  Raised by backend
    factories; :func:`resolve_backend` converts it into a one-time
    warning plus the ``numpy`` fallback."""


class BackendFallbackWarning(UserWarning):
    """Emitted once per (backend, reason) when the resolver degrades a
    requested backend to ``numpy``."""


class KernelBackend:
    """The per-subregion kernel interface a numerical method drives.

    One instance is bound to one method instance (it may precompute
    flattened constants from the method's parameters); the method calls
    the kernels below from its ``compute_phase``/``finalize_step``.
    Boundary-condition enforcement (bounce-back, wall rules, openings)
    stays in the methods — it is cheap, rarely hot, and keeping it
    shared guarantees every backend sees identical boundary data.

    Regions are tuples of explicit slices into the padded arrays (see
    :mod:`repro.fluids._kernels`); kernels must write only inside their
    region and may read up to the method's stencil reach outside it.
    """

    #: registry name of this backend
    name: str = "abstract"
    #: True when the kernels run multi-threaded / release the GIL
    parallel: bool = False

    def __init__(self, method) -> None:
        self.method = method

    # -- lattice Boltzmann --------------------------------------------
    def lb_relax(self, sub: "SubregionState") -> None:
        """BGK collision + Guo forcing on the interior, in place."""
        raise NotImplementedError

    def lb_stream(self, sub: "SubregionState", region) -> None:
        """Pull-form streaming ``F_i(x) <- F_i(x - e_i)`` on ``region``."""
        raise NotImplementedError

    def lb_moments(self, sub: "SubregionState", region) -> None:
        """Fluid variables from populations (plus Guo half-force)."""
        raise NotImplementedError

    # -- finite differences -------------------------------------------
    def fd_velocity(self, sub: "SubregionState") -> None:
        """Forward-Euler momentum update (eqs. 2-3) on the interior."""
        raise NotImplementedError

    def fd_density(self, sub: "SubregionState") -> None:
        """Continuity update (eq. 1) with time-(t+dt) velocities."""
        raise NotImplementedError

    # -- shared filter ------------------------------------------------
    def filter_fields(
        self, flt, sub: "SubregionState", names: Sequence[str], region
    ) -> None:
        """Apply the fourth-order filter ``flt`` to the named fields."""
        raise NotImplementedError


_REGISTRY: dict[str, Callable[[object], KernelBackend]] = {}
_WARNED: set[tuple[str, str]] = set()


def register_backend(
    name: str, factory: Callable[[object], KernelBackend]
) -> None:
    """Register a backend factory (``factory(method) -> KernelBackend``).

    The factory may raise :class:`BackendUnavailable` when the backend
    cannot serve the given method on this host.
    """
    _REGISTRY[name] = factory


def _builtin_factories() -> None:
    from . import numpy_backend  # noqa: F401  (registers itself)
    from . import numba_backend  # noqa: F401  (registers itself)


def backend_names() -> tuple[str, ...]:
    """All registered backend names (available on this host or not)."""
    _builtin_factories()
    return tuple(sorted(_REGISTRY))


#: public alias kept stable for docs/CLI choices
BACKEND_NAMES = ("numpy", "numba", "numba-serial")


def available_backends(ndim: int = 2) -> tuple[str, ...]:
    """Backend names that actually construct on this host.

    Probes each registered factory against a tiny throwaway method of
    the given dimensionality; backends that raise
    :class:`BackendUnavailable` (missing numba, unsupported shape) are
    left out — this is what the calibration micro-bench iterates.
    """
    _builtin_factories()
    from ..params import FluidParams
    from ..lbm import LBMethod

    probe = LBMethod(
        FluidParams.lattice(ndim, nu=0.05, gravity=(0.0,) * ndim), ndim
    )
    out = []
    for name in sorted(_REGISTRY):
        try:
            _REGISTRY[name](probe)
        except BackendUnavailable:
            continue
        out.append(name)
    return tuple(out)


def resolve_backend(name: str | None, method) -> KernelBackend:
    """Build the named backend for ``method``, degrading gracefully.

    ``None`` or ``""`` selects the default (``numpy``).  An unknown
    name raises :class:`ValueError` (a typo should not silently slow a
    run down); a *known but unavailable* backend falls back to
    ``numpy`` with a one-time :class:`BackendFallbackWarning` — never
    an import error.
    """
    _builtin_factories()
    if not name:
        name = DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(registered: {', '.join(sorted(_REGISTRY))})"
        )
    try:
        return _REGISTRY[name](method)
    except BackendUnavailable as why:
        key = (name, str(why))
        if key not in _WARNED:
            _WARNED.add(key)
            warnings.warn(
                f"kernel backend {name!r} unavailable ({why}); "
                f"falling back to {DEFAULT_BACKEND!r}",
                BackendFallbackWarning,
                stacklevel=2,
            )
        return _REGISTRY[DEFAULT_BACKEND](method)
