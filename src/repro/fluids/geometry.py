"""Problem geometries: flue pipes (figs. 1-2) and validation channels.

The flue-pipe geometry reproduces the structure of the paper's
simulations of wind musical instruments: a jet of air enters from an
opening in the left wall, impinges a sharp edge (the labium) in front of
it, and a resonant pipe sits below; the jet oscillations are reinforced
by acoustic feedback from the pipe.  Two variants match the two figures:

* ``"basic"`` (fig. 1): open mouth, outlet on the right wall.
* ``"channel"`` (fig. 2): the jet first passes through a long channel
  before impinging the edge, and the outlet is on the top wall; large
  solid regions make several subregions of a coarse decomposition
  entirely solid — the paper runs a (6 x 4) = 24 decomposition on only
  15 workstations because 9 subregions are inactive.

All geometry is expressed in fractions of the grid so any resolution
from quick tests (e.g. 96 x 60) to the paper's 800 x 500 production runs
produces a consistent shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .boundary import GlobalBox, PressureOutlet, VelocityInlet

__all__ = [
    "FluePipeSetup",
    "flue_pipe",
    "channel_geometry",
    "cylinder_channel",
    "lid_cavity",
]


@dataclass(frozen=True)
class FluePipeSetup:
    """Everything needed to simulate a flue pipe.

    Attributes
    ----------
    solid:
        Global solid-wall mask.
    inlet:
        The jet inlet (left-wall opening).
    outlet:
        The fixed-pressure outlet opening.
    mouth_probe:
        A small box at the pipe mouth where the acoustic response (the
        musical tone) is recorded.
    """

    solid: np.ndarray
    inlet: VelocityInlet
    outlet: PressureOutlet
    mouth_probe: GlobalBox


def _rect(mask: np.ndarray, x0: float, x1: float, y0: float, y1: float,
          value: bool = True) -> None:
    """Fill a fractional rectangle of a 2D mask."""
    nx, ny = mask.shape
    i0, i1 = int(round(x0 * nx)), int(round(x1 * nx))
    j0, j1 = int(round(y0 * ny)), int(round(y1 * ny))
    mask[max(i0, 0):min(i1, nx), max(j0, 0):min(j1, ny)] = value


def flue_pipe(
    shape: tuple[int, int],
    jet_speed: float = 0.1,
    variant: str = "basic",
    rho0: float = 1.0,
    ramp_steps: int = 50,
) -> FluePipeSetup:
    """Build a flue-pipe problem on a grid of the given shape.

    Parameters
    ----------
    shape:
        ``(nx, ny)`` grid nodes; the paper uses 800 x 500 (fig. 1) and
        1107 x 700 (fig. 2).
    jet_speed:
        Jet inflow speed (lattice units; keep well below ``c_s`` —
        the flow is subsonic).
    variant:
        ``"basic"`` (fig. 1) or ``"channel"`` (fig. 2).
    ramp_steps:
        The jet ramps up linearly over this many steps, avoiding an
        acoustically violent impulsive start.
    """
    nx, ny = shape
    if nx < 48 or ny < 32:
        raise ValueError(f"grid {shape} too coarse for the flue geometry")
    if variant not in ("basic", "channel"):
        raise ValueError(f"unknown variant {variant!r}")

    solid = np.zeros(shape, dtype=bool)
    th = max(2, nx // 64)  # wall thickness in nodes
    tx, ty = th / nx, th / ny

    # Enclosing walls.
    _rect(solid, 0.0, 1.0, 0.0, ty)          # bottom
    _rect(solid, 0.0, 1.0, 1.0 - ty, 1.0)    # top
    _rect(solid, 0.0, tx, 0.0, 1.0)          # left
    _rect(solid, 1.0 - tx, 1.0, 0.0, 1.0)    # right

    # Resonant pipe: a cavity in the lower half, open at its left end
    # (the mouth).  Pipe interior spans y in (0.26, 0.42); its top wall
    # starts right of the mouth, carrying the sharp edge (labium) at its
    # left tip.  (0.26 sits just above the 1/4-height block boundary of
    # the paper's x4 decompositions, so the fig. 2 variant's solid fill
    # below the pipe turns the whole bottom block row inactive.)
    pipe_bot = 0.26
    pipe_top_y0, pipe_top_y1 = 0.42, 0.42 + ty
    edge_x = 0.30
    _rect(solid, edge_x, 1.0 - tx, pipe_top_y0, pipe_top_y1)  # pipe top wall
    _rect(solid, 0.0, 1.0, pipe_bot - ty, pipe_bot)           # pipe bottom wall
    _rect(solid, 1.0 - 2 * tx, 1.0, pipe_bot, pipe_top_y1)    # pipe far end cap

    # The jet: an opening in the left wall just above the labium level.
    jet_y0, jet_y1 = 0.45, 0.49
    jet_j0 = int(round(jet_y0 * ny))
    jet_j1 = max(int(round(jet_y1 * ny)), jet_j0 + 2)

    if variant == "channel":
        # Fig. 2: a long channel guides the jet towards the edge, the
        # outlet moves to the top wall, and generous solid fills below
        # the pipe and in the upper left corner make whole subregions of
        # a coarse decomposition inactive.
        chan_x1 = 0.22
        _rect(solid, 0.0, chan_x1, jet_y1, jet_y1 + 2 * ty)   # channel top
        _rect(solid, 0.0, chan_x1, jet_y0 - 2 * ty, jet_y0)   # channel bottom
        _rect(solid, 0.0, 1.0, 0.0, pipe_bot)                 # solid below pipe
        _rect(solid, 0.0, chan_x1, 0.62, 1.0)                 # solid top-left
        out_i0, out_i1 = int(0.55 * nx), int(0.75 * nx)
        outlet_box = GlobalBox(
            (out_i0, ny - th), (out_i1, ny)
        )
    else:
        out_j0, out_j1 = int(0.60 * ny), int(0.85 * ny)
        outlet_box = GlobalBox(
            (nx - th, out_j0), (nx, out_j1)
        )

    # Carve the openings out of the walls.
    inlet_box = GlobalBox((0, jet_j0), (th, jet_j1))
    solid[inlet_box.lo[0]:inlet_box.hi[0], inlet_box.lo[1]:inlet_box.hi[1]] = False
    solid[outlet_box.lo[0]:outlet_box.hi[0], outlet_box.lo[1]:outlet_box.hi[1]] = False

    def jet_velocity(step: int) -> tuple[float, float]:
        ramp = min(1.0, (step + 1) / max(ramp_steps, 1))
        return (jet_speed * ramp, 0.0)

    mouth_i = int(edge_x * nx / 2)
    mouth_j = int(pipe_top_y0 * ny)
    mouth_probe = GlobalBox(
        (mouth_i, mouth_j - 2), (mouth_i + 2, mouth_j)
    )

    return FluePipeSetup(
        solid=solid,
        inlet=VelocityInlet(inlet_box, jet_velocity),
        outlet=PressureOutlet(outlet_box, rho=rho0),
        mouth_probe=mouth_probe,
    )


def cylinder_channel(
    shape: tuple[int, int],
    radius_frac: float = 0.08,
    center_frac: tuple[float, float] = (0.25, 0.5),
    wall_nodes: int = 1,
) -> np.ndarray:
    """A circular obstacle in a channel — the classic vortex-street flow.

    Not one of the paper's production geometries, but the same class of
    problem its introduction motivates (unsteady subsonic flow past
    obstacles, jets impinging edges) and a standard qualification case
    for both solvers: at sufficient Reynolds number the wake becomes
    periodic (a von Karman street), exercising exactly the
    hydrodynamics + acoustics interplay the flue pipe relies on.

    Returns a solid mask with channel walls along y and a cylinder of
    radius ``radius_frac * ny`` at ``center_frac`` (fractions of the
    grid); flow is driven along the periodic x axis.
    """
    nx, ny = shape
    solid = channel_geometry(shape, wall_nodes=wall_nodes)
    cx, cy = center_frac[0] * nx, center_frac[1] * ny
    r = radius_frac * ny
    if r < 2.0:
        raise ValueError(
            f"cylinder radius {r:.1f} nodes too small to resolve; "
            "use a finer grid or a larger radius_frac"
        )
    x = np.arange(nx)[:, None]
    y = np.arange(ny)[None, :]
    solid |= (x - cx) ** 2 + (y - cy) ** 2 <= r * r
    return solid


def lid_cavity(
    shape: tuple[int, int],
    lid_speed: float = 0.1,
    wall_nodes: int = 1,
    ramp_steps: int = 0,
) -> tuple[np.ndarray, VelocityInlet]:
    """Lid-driven cavity: enclosed box, top fluid row forced to slide.

    The reference problem of Hou et al. (PAPERS.md): fluid in a closed
    square cavity driven by a lid moving at constant speed develops a
    primary vortex whose center position is tabulated per Reynolds
    number.  Walls enclose all four sides; the "lid" is the topmost
    *fluid* row, held at ``(lid_speed, 0)`` by a :class:`VelocityInlet`
    (a sliding-velocity boundary row, the standard velocity-BC cavity
    construction).  The cavity proper is the fluid box below the lid
    row; with 1-node walls on an ``(n+2, n+2)`` grid the cavity is
    ``n x n`` including the lid row.

    Returns ``(solid, lid)``.
    """
    nx, ny = shape
    if nx < 16 or ny < 16:
        raise ValueError(f"grid {shape} too coarse for a cavity")
    w = wall_nodes
    solid = np.zeros(shape, dtype=bool)
    solid[:w, :] = True
    solid[nx - w:, :] = True
    solid[:, :w] = True
    solid[:, ny - w:] = True
    lid_box = GlobalBox((w, ny - w - 1), (nx - w, ny - w))

    if ramp_steps > 0:
        def lid_velocity(step: int) -> tuple[float, float]:
            ramp = min(1.0, (step + 1) / ramp_steps)
            return (lid_speed * ramp, 0.0)

        lid = VelocityInlet(lid_box, lid_velocity)
    else:
        lid = VelocityInlet(lid_box, (lid_speed, 0.0))
    return solid, lid


def channel_geometry(
    shape: tuple[int, int] | tuple[int, int, int],
    wall_nodes: int = 1,
) -> np.ndarray:
    """No-slip channel walls for the Hagen-Poiseuille validation flow.

    2D: solid rows at the bottom and top of the y-axis (flow along x,
    periodic).  3D: solid shells on both y and z faces (rectangular
    duct, flow along x, periodic).
    """
    solid = np.zeros(shape, dtype=bool)
    for axis in range(1, len(shape)):
        sl_lo = [slice(None)] * len(shape)
        sl_hi = [slice(None)] * len(shape)
        sl_lo[axis] = slice(0, wall_nodes)
        sl_hi[axis] = slice(shape[axis] - wall_nodes, None)
        solid[tuple(sl_lo)] = True
        solid[tuple(sl_hi)] = True
    return solid
