"""Boundary conditions: walls, inlet jets, pressure outlets (paper §2).

The paper's domains are enclosed by wall nodes ("gray areas are walls,
dark-gray areas are walls that enclose the simulated region and
demarcate the inlet and the outlet").  Walls are *solid nodes of the
grid*: no-slip velocity, zero-normal-gradient density, and (for the
lattice Boltzmann method) population bounce-back.  Openings in the walls
carry the driving conditions of the flue-pipe problem: a velocity inlet
(the jet of air) and a pressure outlet.

All conditions are local, node-wise rules, so they commute with the
decomposition: each subregion applies them over its own (grown) interior
using masks intersected with its block at initialization time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.subregion import SubregionState
from ._kernels import Region, shift_region

__all__ = [
    "GlobalBox",
    "VelocityInlet",
    "PressureOutlet",
    "build_wall_aux",
    "enforce_noslip",
    "enforce_wall_density",
]


@dataclass(frozen=True)
class GlobalBox:
    """A rectangular set of nodes in *global* grid coordinates.

    ``lo`` inclusive, ``hi`` exclusive, one entry per axis.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have equal length")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty box {self.lo}..{self.hi}")

    def local_mask(self, sub: SubregionState) -> np.ndarray:
        """Boolean mask over the subregion's padded shape.

        Includes ghost nodes: boundary rules are node-wise, so applying
        them on ghost copies of remote nodes is exactly what the owning
        subregion does to its interior originals.
        """
        mask = np.zeros(sub.padded_shape, dtype=bool)
        sl = []
        for d in range(sub.ndim):
            # Global -> padded-local: local = global - block.lo + pad.
            lo = self.lo[d] - sub.block.lo[d] + sub.pad
            hi = self.hi[d] - sub.block.lo[d] + sub.pad
            lo = max(lo, 0)
            hi = min(hi, sub.padded_shape[d])
            if hi <= lo:
                return mask
            sl.append(slice(lo, hi))
        mask[tuple(sl)] = True
        return mask


VelocityFn = Callable[[int], tuple[float, ...]]


@dataclass(frozen=True)
class VelocityInlet:
    """Prescribed-velocity opening (the jet of air entering the pipe).

    Parameters
    ----------
    box:
        The inlet nodes.
    velocity:
        Either a constant velocity tuple or a callable of the integration
        step (e.g. a ramped jet) returning the tuple.
    """

    box: GlobalBox
    velocity: tuple[float, ...] | VelocityFn

    def velocity_at(self, step: int) -> tuple[float, ...]:
        """Jet velocity at an integration step (ramps resolve here)."""
        v = self.velocity
        return v(step) if callable(v) else v


@dataclass(frozen=True)
class PressureOutlet:
    """Fixed-density (fixed-pressure) opening where the flow exits."""

    box: GlobalBox
    rho: float = 1.0


# ----------------------------------------------------------------------
# wall (solid-node) rules shared by both numerical methods
# ----------------------------------------------------------------------

def build_wall_aux(sub: SubregionState) -> None:
    """Precompute wall-rule masks into ``sub.aux``.

    ``solid_f``: solid mask as float64 (multiplies into kernels);
    ``fluid_f``: complement.  The density wall rule additionally needs,
    at every solid node, the number of star-adjacent fluid nodes; it is
    recomputed per region application because regions vary, but the
    float masks are shared.
    """
    sub.aux["solid_f"] = sub.solid.astype(np.float64)
    sub.aux["fluid_f"] = (~sub.solid).astype(np.float64)


def enforce_noslip(
    sub: SubregionState, names: Sequence[str], region: Region
) -> None:
    """Zero the named velocity components at solid nodes in ``region``."""
    fluid = sub.aux["fluid_f"][region]
    for name in names:
        sub.fields[name][region] *= fluid


def enforce_wall_density(
    sub: SubregionState, region: Region, rho_name: str = "rho"
) -> None:
    """Zero-normal-gradient density at walls.

    Every solid node with at least one star-adjacent fluid node takes the
    mean density of its fluid neighbours, which makes the discrete normal
    pressure gradient at the wall vanish; deeper solid nodes are left
    untouched (they keep their initial reference density).  The rule
    reads one ring beyond ``region``, which the callers' padding
    guarantees is valid.
    """
    rho = sub.fields[rho_name]
    fluid = sub.aux["fluid_f"]
    num = np.zeros_like(rho[region])
    den = np.zeros_like(rho[region])
    for axis in range(sub.ndim):
        for by in (-1, +1):
            shifted = shift_region(region, axis, by)
            num += rho[shifted] * fluid[shifted]
            den += fluid[shifted]
    solid = sub.solid[region]
    sel = solid & (den > 0.0)
    target = rho[region]
    # Out-of-place: compute the replacement values before assignment so
    # no solid node reads another solid node's freshly written value.
    with np.errstate(invalid="ignore", divide="ignore"):
        repl = num / den
    target[sel] = repl[sel]
