"""Lattice Boltzmann method (paper §6; Skordos, PRE 48:4823).

A relaxation algorithm carrying two kinds of variables: the traditional
fluid variables ``rho, Vx, Vy(,Vz)`` and the populations ``F_i``.  Each
cycle relaxes the populations towards the equilibrium built from the
fluid variables, shifts them to the nearest neighbours, and recomputes
the fluid variables — which are then filtered by the same fourth-order
filter as the finite-difference method.

Per-step sequence (paper §6)::

    Relax       F_i              (inner)
    Communicate F_i              (boundary)   <- one message per neighbour
    Shift       F_i              (inner)
    Calculate   rho, V  from F_i (inner)
    Filter      rho, V           (inner)

(The paper lists Shift before Communicate; shifting in pull form after
the exchange moves exactly the same populations across the subregion
boundary and keeps the run bit-identical to the serial program.)

The BGK collision relaxes with ``tau = 3 nu + 1/2`` (lattice units) and
body forces enter through the Guo forcing scheme, second-order accurate
so the Hagen-Poiseuille validation converges quadratically like the
paper reports for both methods.  Solid wall nodes do not collide; they
reflect every arriving population back along its incoming direction
(bounce-back), which places the no-slip wall halfway between the last
fluid node and the first solid node.

Ghost width is 3: streaming reaches 1, the macro fields behind the
filter reach 2 more; one exchanged message per step carries the
relaxed populations on a width-3 strip.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.subregion import SubregionState
from ._kernels import Region, shift_region
from .boundary import PressureOutlet, VelocityInlet, build_wall_aux
from .filters import FourthOrderFilter
from .lattices import Lattice, lattice_for
from .params import FluidParams

__all__ = ["LBMethod"]

_VEL_NAMES = ("u", "v", "w")


class LBMethod:
    """Lattice Boltzmann (D2Q9 / D3Q15) in 2 or 3 dimensions.

    Works in lattice units (``dx = dt = 1``, ``c_s^2 = 1/3``);
    construction enforces ``params.require_lattice_units()``.
    """

    #: ghost layers; see module docstring
    pad = 3

    def __init__(
        self,
        params: FluidParams,
        ndim: int = 2,
        inlets: Sequence[VelocityInlet] = (),
        outlets: Sequence[PressureOutlet] = (),
    ) -> None:
        if ndim not in (2, 3):
            raise ValueError(f"ndim must be 2 or 3, got {ndim}")
        if len(params.gravity) != ndim:
            raise ValueError(
                f"gravity {params.gravity} must have {ndim} components"
            )
        params.require_lattice_units()
        self.params = params
        self.ndim = ndim
        self.lattice: Lattice = lattice_for(ndim)
        self.tau = params.lb_tau
        if self.tau <= 0.5:
            raise ValueError(f"tau {self.tau} must exceed 1/2")
        self.vel_names: tuple[str, ...] = _VEL_NAMES[:ndim]
        self.field_names: tuple[str, ...] = ("rho",) + self.vel_names + ("f",)
        self.exchange_phases: tuple[tuple[str, ...], ...] = (("f",),)
        self.inlets = tuple(inlets)
        self.outlets = tuple(outlets)
        self.filter = FourthOrderFilter(params.filter_eps)

    # ------------------------------------------------------------------
    # equilibrium and forcing
    # ------------------------------------------------------------------
    def equilibrium(
        self, rho: np.ndarray, vels: Sequence[np.ndarray]
    ) -> np.ndarray:
        """BGK equilibrium ``f_eq_i = w_i rho (1 + 3 eu + 4.5 eu^2 - 1.5 u^2)``.

        Returns an array of shape ``(Q,) + rho.shape``.
        """
        lat = self.lattice
        usq = sum(c * c for c in vels)
        out = np.empty((lat.q,) + rho.shape, dtype=np.float64)
        for i in range(lat.q):
            eu = sum(float(lat.e[i, d]) * vels[d] for d in range(self.ndim))
            out[i] = lat.w[i] * rho * (
                1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq
            )
        return out

    def _force_term(
        self, rho: np.ndarray, vels: Sequence[np.ndarray], i: int
    ) -> np.ndarray:
        """Guo forcing contribution to population ``i``.

        ``S_i = (1 - 1/(2 tau)) w_i [3 (e - u) + 9 (e.u) e] . (rho g)``.
        """
        lat = self.lattice
        g = self.params.gravity
        eu = sum(float(lat.e[i, d]) * vels[d] for d in range(self.ndim))
        acc = None
        for d in range(self.ndim):
            if g[d] == 0.0:
                continue
            term = (
                3.0 * (float(lat.e[i, d]) - vels[d])
                + 9.0 * eu * float(lat.e[i, d])
            ) * g[d]
            acc = term if acc is None else acc + term
        if acc is None:
            return np.zeros_like(rho)
        return (1.0 - 0.5 / self.tau) * lat.w[i] * rho * acc

    @property
    def _has_force(self) -> bool:
        return any(g != 0.0 for g in self.params.gravity)

    # ------------------------------------------------------------------
    # ExplicitMethod protocol
    # ------------------------------------------------------------------
    def init_subregion(self, sub: SubregionState) -> None:
        """Allocate masks, scratch and (if absent) equilibrium populations."""
        if sub.ndim != self.ndim:
            raise ValueError(
                f"subregion is {sub.ndim}D but method is {self.ndim}D"
            )
        if sub.pad != self.pad:
            raise ValueError(f"subregion pad {sub.pad} != method pad {self.pad}")
        build_wall_aux(sub)
        self.filter.build_mask(sub)
        for i, inlet in enumerate(self.inlets):
            sub.aux[f"inlet{i}"] = inlet.box.local_mask(sub)
        for i, outlet in enumerate(self.outlets):
            sub.aux[f"outlet{i}"] = outlet.box.local_mask(sub)
        if "f" not in sub.fields:
            # Populations start at equilibrium with the decomposed
            # macroscopic state, evaluated over the whole padded array so
            # ghosts are exact from step zero.
            rho = sub.fields["rho"]
            vels = [sub.fields[n] for n in self.vel_names]
            sub.fields["f"] = self.equilibrium(rho, vels)
        sub.aux["f_scratch"] = np.empty_like(sub.fields["f"])

    def compute_phase(self, sub: SubregionState, phase: int) -> None:
        """BGK collision on the interior (the single compute phase)."""
        if phase != 0:  # pragma: no cover - protocol guard
            raise ValueError(f"LB has 1 compute phase, got {phase}")
        self._relax(sub)

    def finalize_step(self, sub: SubregionState) -> None:
        """Stream, bounce-back, moments, openings, filter."""
        g2 = sub.grown_interior(2)
        self._shift(sub, g2)
        self._bounce_back(sub, g2)
        self._macro(sub, g2)
        self._apply_openings(sub, g2)
        self.filter.apply(
            sub, ("rho",) + self.vel_names, sub.interior
        )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _relax(self, sub: SubregionState) -> None:
        """BGK collision on the interior; solid nodes do not collide."""
        region = sub.interior
        f = sub.fields["f"]
        rho = sub.fields["rho"][region]
        vels = [sub.fields[n][region] for n in self.vel_names]
        feq = self.equilibrium(rho, vels)
        fluid = sub.aux["fluid_f"][region]
        omega = 1.0 / self.tau
        for i in range(self.lattice.q):
            fi = f[(i,) + region]
            delta = (feq[i] - fi) * omega
            if self._has_force:
                delta += self._force_term(rho, vels, i)
            # Solid nodes keep their populations (no collision).
            fi += delta * fluid

    def _shift(self, sub: SubregionState, region: Region) -> None:
        """Streaming in pull form: ``F_i(x) <- F_i(x - e_i)``."""
        f = sub.fields["f"]
        scratch = sub.aux["f_scratch"]
        for i in range(self.lattice.q):
            src = region
            for d in range(self.ndim):
                e = int(self.lattice.e[i, d])
                if e:
                    src = shift_region(src, d, -e)
            scratch[(i,) + region] = f[(i,) + src]
        f[(slice(None),) + region] = scratch[(slice(None),) + region]

    def _bounce_back(self, sub: SubregionState, region: Region) -> None:
        """Reflect all populations at solid nodes (full bounce-back)."""
        f = sub.fields["f"]
        solid = sub.solid[region]
        if not solid.any():
            return
        view = f[(slice(None),) + region]
        arrived = view[:, solid]
        view[:, solid] = arrived[self.lattice.opposite]

    def _macro(self, sub: SubregionState, region: Region) -> None:
        """Fluid variables from populations (plus Guo half-force shift)."""
        f = sub.fields["f"]
        lat = self.lattice
        view = f[(slice(None),) + region]
        rho = view.sum(axis=0)
        sub.fields["rho"][region] = rho
        g = self.params.gravity
        fluid = sub.aux["fluid_f"][region]
        for d, name in enumerate(self.vel_names):
            mom = np.zeros_like(rho)
            for i in range(lat.q):
                e = float(lat.e[i, d])
                if e:
                    mom += e * view[i]
            vel = mom / rho
            if g[d] != 0.0:
                vel += 0.5 * g[d]
            # Walls are no-slip: solid nodes report zero velocity.
            sub.fields[name][region] = vel * fluid

    def _apply_openings(self, sub: SubregionState, region: Region) -> None:
        """Inlets force equilibrium at the jet velocity; outlets rescale
        populations to the reference density (node-wise rules)."""
        f = sub.fields["f"]
        rho = sub.fields["rho"]
        for i, inlet in enumerate(self.inlets):
            mask = sub.aux[f"inlet{i}"][region]
            if not mask.any():
                continue
            vel = inlet.velocity_at(sub.step)
            rho_sel = rho[region][mask]
            vel_arrays = [np.full_like(rho_sel, vel[d]) for d in range(self.ndim)]
            f[(slice(None),) + region][:, mask] = self.equilibrium(
                rho_sel, vel_arrays
            )
            for d, name in enumerate(self.vel_names):
                sub.fields[name][region][mask] = vel[d]
        for i, outlet in enumerate(self.outlets):
            mask = sub.aux[f"outlet{i}"][region]
            if not mask.any():
                continue
            rho_sel = rho[region][mask]
            scale = outlet.rho / rho_sel
            f[(slice(None),) + region][:, mask] *= scale
            rho[region][mask] = outlet.rho
