"""Lattice Boltzmann method (paper §6; Skordos, PRE 48:4823).

A relaxation algorithm carrying two kinds of variables: the traditional
fluid variables ``rho, Vx, Vy(,Vz)`` and the populations ``F_i``.  Each
cycle relaxes the populations towards the equilibrium built from the
fluid variables, shifts them to the nearest neighbours, and recomputes
the fluid variables — which are then filtered by the same fourth-order
filter as the finite-difference method.

Per-step sequence (paper §6)::

    Relax       F_i              (inner)
    Communicate F_i              (boundary)   <- one message per neighbour
    Shift       F_i              (inner)
    Calculate   rho, V  from F_i (inner)
    Filter      rho, V           (inner)

(The paper lists Shift before Communicate; shifting in pull form after
the exchange moves exactly the same populations across the subregion
boundary and keeps the run bit-identical to the serial program.)

The BGK collision relaxes with ``tau = 3 nu + 1/2`` (lattice units) and
body forces enter through the Guo forcing scheme, second-order accurate
so the Hagen-Poiseuille validation converges quadratically like the
paper reports for both methods.  Solid wall nodes do not collide; they
reflect every arriving population back along its incoming direction
(bounce-back), which places the no-slip wall halfway between the last
fluid node and the first solid node.

Ghost width is 3: streaming reaches 1, the macro fields behind the
filter reach 2 more; one exchanged message per step carries the
relaxed populations on a width-3 strip.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.subregion import SubregionState
from ._kernels import Region
from .backends import KernelBackend, resolve_backend
from .boundary import PressureOutlet, VelocityInlet, build_wall_aux
from .filters import FourthOrderFilter
from .lattices import Lattice, lattice_for
from .params import FluidParams

__all__ = ["LBMethod"]

_VEL_NAMES = ("u", "v", "w")


class LBMethod:
    """Lattice Boltzmann (D2Q9 / D3Q15) in 2 or 3 dimensions.

    Works in lattice units (``dx = dt = 1``, ``c_s^2 = 1/3``);
    construction enforces ``params.require_lattice_units()``.
    """

    #: ghost layers; see module docstring
    pad = 3
    #: canonical spec name (``ProblemSpec.method``)
    method_name = "lb"

    def __init__(
        self,
        params: FluidParams,
        ndim: int = 2,
        inlets: Sequence[VelocityInlet] = (),
        outlets: Sequence[PressureOutlet] = (),
        backend: str | KernelBackend | None = None,
        pad: int | None = None,
    ) -> None:
        if ndim not in (2, 3):
            raise ValueError(f"ndim must be 2 or 3, got {ndim}")
        if pad is not None:
            if pad < type(self).pad:
                raise ValueError(
                    f"pad {pad} below the method minimum {type(self).pad}"
                )
            self.pad = pad
        if len(params.gravity) != ndim:
            raise ValueError(
                f"gravity {params.gravity} must have {ndim} components"
            )
        params.require_lattice_units()
        self.params = params
        self.ndim = ndim
        self.lattice: Lattice = lattice_for(ndim)
        self.tau = params.lb_tau
        if self.tau <= 0.5:
            raise ValueError(f"tau {self.tau} must exceed 1/2")
        self.vel_names: tuple[str, ...] = _VEL_NAMES[:ndim]
        self.field_names: tuple[str, ...] = ("rho",) + self.vel_names + ("f",)
        self.exchange_phases: tuple[tuple[str, ...], ...] = (("f",),)
        self.inlets = tuple(inlets)
        self.outlets = tuple(outlets)
        self.filter = FourthOrderFilter(params.filter_eps)
        # Precomputed broadcast views of the velocity set, shaped
        # (Q, 1, ..., 1) so they multiply straight into (Q, ...) arrays:
        # the fused kernels below are whole-lattice expressions instead
        # of per-direction Python loops.
        lat = self.lattice
        ones = (1,) * ndim
        self._e_f = lat.e.astype(np.float64)
        self._e_b = tuple(
            self._e_f[:, d].reshape((lat.q,) + ones) for d in range(ndim)
        )
        self._w_b = lat.w.reshape((lat.q,) + ones)
        # Collision + Guo forcing collapse into one polynomial per
        # population (see _relax):
        #   delta_i = w_i rho [4.5 w eu^2 + A1_i eu + A0_i - s] - w f_i
        # with w = 1/tau, pref = 1 - 1/(2 tau), G_i = e_i . g:
        omega = 1.0 / self.tau
        pref = 1.0 - 0.5 / self.tau
        g_i = self._e_f @ np.asarray(params.gravity, dtype=np.float64)
        self._omega = omega
        self._pref = pref
        self._a1_b = (3.0 * omega + 9.0 * pref * g_i).reshape(
            (lat.q,) + ones
        )
        self._a0_b = (omega + 3.0 * pref * g_i).reshape((lat.q,) + ones)
        # Momentum accumulation index lists: every e component is -1/0/+1,
        # so the d-momentum is a signed sum of population planes — no
        # multiplies, no intermediate (Q, ...) products.
        self._mom_idx = tuple(
            (
                tuple(int(i) for i in np.flatnonzero(lat.e[:, d] > 0)),
                tuple(int(i) for i in np.flatnonzero(lat.e[:, d] < 0)),
            )
            for d in range(ndim)
        )
        self.backend: KernelBackend = None  # type: ignore[assignment]
        self.set_backend(backend)

    def set_backend(
        self, backend: str | KernelBackend | None = None
    ) -> KernelBackend:
        """Bind a kernel backend (name, instance, or None for default).

        Unavailable backends degrade to ``numpy`` with a one-time
        warning — see :func:`repro.fluids.backends.resolve_backend`.
        """
        if isinstance(backend, KernelBackend):
            self.backend = backend
        else:
            self.backend = resolve_backend(backend, self)
        return self.backend

    # ------------------------------------------------------------------
    # equilibrium and forcing
    # ------------------------------------------------------------------
    def equilibrium(
        self,
        rho: np.ndarray,
        vels: Sequence[np.ndarray],
        out: np.ndarray | None = None,
        eu: np.ndarray | None = None,
        usq: np.ndarray | None = None,
        tmp: np.ndarray | None = None,
    ) -> np.ndarray:
        """BGK equilibrium ``f_eq_i = w_i rho (1 + 3 eu + 4.5 eu^2 - 1.5 u^2)``.

        Returns an array of shape ``(Q,) + rho.shape`` — ``out`` when
        given.  The whole lattice is evaluated at once: ``eu`` is a
        ``(Q,) + rho.shape`` work buffer holding ``e_i . u`` on exit
        (the Guo forcing reuses it), ``usq``/``tmp`` are ``rho.shape``
        work buffers whose contents are clobbered.  All buffers are
        allocated when omitted; the results are identical either way.
        """
        q = self.lattice.q
        qshape = (q,) + rho.shape
        if out is None:
            out = np.empty(qshape, dtype=np.float64)
        if eu is None:
            eu = np.empty(qshape, dtype=np.float64)
        if usq is None:
            usq = np.empty(rho.shape, dtype=np.float64)
        if tmp is None:
            tmp = np.empty(rho.shape, dtype=np.float64)
        # The hot path passes ndim-dimensional views, but openings pass
        # flat masked selections: shape the broadcast constants to match.
        if rho.ndim == self.ndim:
            e_b, w_b = self._e_b, self._w_b
        else:
            ones = (q,) + (1,) * rho.ndim
            e_b = tuple(
                self._e_f[:, d].reshape(ones) for d in range(self.ndim)
            )
            w_b = self.lattice.w.reshape(ones)
        # usq <- 1.5 |u|^2
        np.multiply(vels[0], vels[0], out=usq)
        for d in range(1, self.ndim):
            np.multiply(vels[d], vels[d], out=tmp)
            usq += tmp
        usq *= 1.5
        # eu <- e_i . u for every direction at once (out doubles as the
        # per-axis accumulator scratch before the polynomial needs it).
        np.multiply(e_b[0], vels[0], out=eu)
        for d in range(1, self.ndim):
            np.multiply(e_b[d], vels[d], out=out)
            eu += out
        # out <- w_i rho ((4.5 eu + 3) eu + 1 - 1.5 u^2)   (Horner form)
        np.multiply(eu, 4.5, out=out)
        out += 3.0
        out *= eu
        out += 1.0
        out -= usq
        out *= w_b
        out *= rho
        return out

    # ------------------------------------------------------------------
    # ExplicitMethod protocol
    # ------------------------------------------------------------------
    def init_subregion(self, sub: SubregionState) -> None:
        """Allocate masks, scratch and (if absent) equilibrium populations."""
        if sub.ndim != self.ndim:
            raise ValueError(
                f"subregion is {sub.ndim}D but method is {self.ndim}D"
            )
        if sub.pad != self.pad:
            raise ValueError(f"subregion pad {sub.pad} != method pad {self.pad}")
        build_wall_aux(sub)
        self.filter.build_mask(sub)
        for i, inlet in enumerate(self.inlets):
            sub.aux[f"inlet{i}"] = inlet.box.local_mask(sub)
        for i, outlet in enumerate(self.outlets):
            sub.aux[f"outlet{i}"] = outlet.box.local_mask(sub)
        if "f" not in sub.fields:
            # Populations start at equilibrium with the decomposed
            # macroscopic state, evaluated over the whole padded array so
            # ghosts are exact from step zero.
            rho = sub.fields["rho"]
            vels = [sub.fields[n] for n in self.vel_names]
            sub.fields["f"] = self.equilibrium(rho, vels)
        sub.aux["f_scratch"] = np.empty_like(sub.fields["f"])

    def compute_phase(self, sub: SubregionState, phase: int) -> None:
        """BGK collision on the interior (the single compute phase)."""
        if phase != 0:  # pragma: no cover - protocol guard
            raise ValueError(f"LB has 1 compute phase, got {phase}")
        self._relax(sub)

    def finalize_step(self, sub: SubregionState) -> None:
        """Stream, bounce-back, moments, openings, filter."""
        g2 = sub.grown_interior(2)
        self._shift(sub, g2)
        self._bounce_back(sub, g2)
        self._macro(sub, g2)
        self._apply_openings(sub, g2)
        self.backend.filter_fields(
            self.filter, sub, ("rho",) + self.vel_names, sub.interior
        )

    # ------------------------------------------------------------------
    # kernels — hot paths delegate to the pluggable backend (see
    # repro.fluids.backends; the numpy implementation in
    # backends/numpy_backend.py is the historical fused kernel, moved
    # verbatim).  Bounce-back and openings stay here: boundary rules are
    # cheap and backend-independent.
    # ------------------------------------------------------------------
    def _relax(self, sub: SubregionState) -> None:
        """BGK collision + Guo forcing; solid nodes do not collide."""
        self.backend.lb_relax(sub)

    def _shift(self, sub: SubregionState, region: Region) -> None:
        """Streaming in pull form: ``F_i(x) <- F_i(x - e_i)``."""
        self.backend.lb_stream(sub, region)

    def _bounce_back(self, sub: SubregionState, region: Region) -> None:
        """Reflect all populations at solid nodes (full bounce-back)."""
        f = sub.fields["f"]
        solid = sub.solid[region]
        if not solid.any():
            return
        view = f[(slice(None),) + region]
        arrived = view[:, solid]
        view[:, solid] = arrived[self.lattice.opposite]

    def _macro(self, sub: SubregionState, region: Region) -> None:
        """Fluid variables from populations (plus Guo half-force shift)."""
        self.backend.lb_moments(sub, region)

    def _apply_openings(self, sub: SubregionState, region: Region) -> None:
        """Inlets force equilibrium at the jet velocity; outlets rescale
        populations to the reference density (node-wise rules)."""
        f = sub.fields["f"]
        rho = sub.fields["rho"]
        for i, inlet in enumerate(self.inlets):
            mask = sub.aux[f"inlet{i}"][region]
            if not mask.any():
                continue
            vel = inlet.velocity_at(sub.step)
            rho_sel = rho[region][mask]
            vel_arrays = [np.full_like(rho_sel, vel[d]) for d in range(self.ndim)]
            f[(slice(None),) + region][:, mask] = self.equilibrium(
                rho_sel, vel_arrays
            )
            for d, name in enumerate(self.vel_names):
                sub.fields[name][region][mask] = vel[d]
        for i, outlet in enumerate(self.outlets):
            mask = sub.aux[f"outlet{i}"][region]
            if not mask.any():
                continue
            rho_sel = rho[region][mask]
            scale = outlet.rho / rho_sel
            f[(slice(None),) + region][:, mask] *= scale
            rho[region][mask] = outlet.rho
