"""Diagnostics of the flow fields.

The paper's snapshots (figs. 1-2) plot equi-vorticity contours — the
curl of the fluid velocity; this module computes vorticity and the other
bulk diagnostics used by the validation tests (mass, momentum, kinetic
energy, divergence, acoustic energy).

All functions take *global* (unpadded) arrays, e.g. the output of
:meth:`repro.core.Simulation.global_field`, with axis 0 = x, axis 1 = y.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vorticity_2d",
    "vorticity_3d",
    "divergence",
    "total_mass",
    "total_momentum",
    "kinetic_energy",
    "acoustic_energy",
]


def _cdiff(a: np.ndarray, axis: int, dx: float) -> np.ndarray:
    """Centered difference with one-sided ends (display quality)."""
    out = np.gradient(a, dx, axis=axis)
    return out


def vorticity_2d(u: np.ndarray, v: np.ndarray, dx: float = 1.0) -> np.ndarray:
    """Scalar vorticity ``dV_y/dx - dV_x/dy`` (the quantity of fig. 1)."""
    return _cdiff(v, 0, dx) - _cdiff(u, 1, dx)


def vorticity_3d(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, dx: float = 1.0
) -> np.ndarray:
    """Vorticity vector, shape ``(3,) + grid``."""
    wx = _cdiff(w, 1, dx) - _cdiff(v, 2, dx)
    wy = _cdiff(u, 2, dx) - _cdiff(w, 0, dx)
    wz = _cdiff(v, 0, dx) - _cdiff(u, 1, dx)
    return np.stack([wx, wy, wz])


def divergence(vels: list[np.ndarray], dx: float = 1.0) -> np.ndarray:
    """``div V`` — near zero in incompressible regions of subsonic flow."""
    out = _cdiff(vels[0], 0, dx)
    for d in range(1, len(vels)):
        out += _cdiff(vels[d], d, dx)
    return out


def total_mass(rho: np.ndarray, dx: float = 1.0) -> float:
    """Integral of density over the grid."""
    return float(rho.sum() * dx**rho.ndim)


def total_momentum(
    rho: np.ndarray, vels: list[np.ndarray], dx: float = 1.0
) -> np.ndarray:
    """Integral of ``rho V`` per component."""
    return np.array(
        [float((rho * c).sum() * dx**rho.ndim) for c in vels]
    )


def kinetic_energy(
    rho: np.ndarray, vels: list[np.ndarray], dx: float = 1.0
) -> float:
    """``1/2 integral rho |V|^2``."""
    vsq = sum(c * c for c in vels)
    return float(0.5 * (rho * vsq).sum() * dx**rho.ndim)


def acoustic_energy(
    rho: np.ndarray,
    vels: list[np.ndarray],
    rho0: float,
    cs: float,
    dx: float = 1.0,
) -> float:
    """Small-signal acoustic energy of the deviation from rest.

    ``E = integral [ cs^2 (rho - rho0)^2 / (2 rho0) + rho0 |V|^2 / 2 ]``
    — conserved (up to viscosity and filtering) by propagating sound
    waves, used by the acoustic validation tests.
    """
    drho = rho - rho0
    vsq = sum(c * c for c in vels)
    e = cs * cs * drho * drho / (2.0 * rho0) + rho0 * vsq / 2.0
    return float(e.sum() * dx**rho.ndim)
