"""Diagnostics of the flow fields.

The paper's snapshots (figs. 1-2) plot equi-vorticity contours — the
curl of the fluid velocity; this module computes vorticity and the other
bulk diagnostics used by the validation tests (mass, momentum, kinetic
energy, divergence, acoustic energy).

All functions take *global* (unpadded) arrays, e.g. the output of
:meth:`repro.core.Simulation.global_field`, with axis 0 = x, axis 1 = y.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vorticity_2d",
    "vorticity_3d",
    "divergence",
    "total_mass",
    "total_momentum",
    "kinetic_energy",
    "acoustic_energy",
    "streamfunction_2d",
    "vortex_centers",
    "primary_vortex",
    "spectral_peak",
]


def _cdiff(a: np.ndarray, axis: int, dx: float) -> np.ndarray:
    """Centered difference with one-sided ends (display quality)."""
    out = np.gradient(a, dx, axis=axis)
    return out


def vorticity_2d(u: np.ndarray, v: np.ndarray, dx: float = 1.0) -> np.ndarray:
    """Scalar vorticity ``dV_y/dx - dV_x/dy`` (the quantity of fig. 1)."""
    return _cdiff(v, 0, dx) - _cdiff(u, 1, dx)


def vorticity_3d(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, dx: float = 1.0
) -> np.ndarray:
    """Vorticity vector, shape ``(3,) + grid``."""
    wx = _cdiff(w, 1, dx) - _cdiff(v, 2, dx)
    wy = _cdiff(u, 2, dx) - _cdiff(w, 0, dx)
    wz = _cdiff(v, 0, dx) - _cdiff(u, 1, dx)
    return np.stack([wx, wy, wz])


def divergence(vels: list[np.ndarray], dx: float = 1.0) -> np.ndarray:
    """``div V`` — near zero in incompressible regions of subsonic flow."""
    out = _cdiff(vels[0], 0, dx)
    for d in range(1, len(vels)):
        out += _cdiff(vels[d], d, dx)
    return out


def total_mass(rho: np.ndarray, dx: float = 1.0) -> float:
    """Integral of density over the grid."""
    return float(rho.sum() * dx**rho.ndim)


def total_momentum(
    rho: np.ndarray, vels: list[np.ndarray], dx: float = 1.0
) -> np.ndarray:
    """Integral of ``rho V`` per component."""
    return np.array(
        [float((rho * c).sum() * dx**rho.ndim) for c in vels]
    )


def kinetic_energy(
    rho: np.ndarray, vels: list[np.ndarray], dx: float = 1.0
) -> float:
    """``1/2 integral rho |V|^2``."""
    vsq = sum(c * c for c in vels)
    return float(0.5 * (rho * vsq).sum() * dx**rho.ndim)


def acoustic_energy(
    rho: np.ndarray,
    vels: list[np.ndarray],
    rho0: float,
    cs: float,
    dx: float = 1.0,
) -> float:
    """Small-signal acoustic energy of the deviation from rest.

    ``E = integral [ cs^2 (rho - rho0)^2 / (2 rho0) + rho0 |V|^2 / 2 ]``
    — conserved (up to viscosity and filtering) by propagating sound
    waves, used by the acoustic validation tests.
    """
    drho = rho - rho0
    vsq = sum(c * c for c in vels)
    e = cs * cs * drho * drho / (2.0 * rho0) + rho0 * vsq / 2.0
    return float(e.sum() * dx**rho.ndim)


def _cumtrapz(a: np.ndarray, axis: int, dx: float) -> np.ndarray:
    """Cumulative trapezoid integral along ``axis``, zero at index 0."""
    a = np.moveaxis(a, axis, -1)
    out = np.zeros_like(a)
    np.cumsum((a[..., :-1] + a[..., 1:]) * (0.5 * dx), axis=-1,
              out=out[..., 1:])
    return np.moveaxis(out, -1, axis)


def streamfunction_2d(u: np.ndarray, v: np.ndarray, dx: float = 1.0
                      ) -> np.ndarray:
    """Streamfunction ``psi`` with ``u = dpsi/dy``, ``v = -dpsi/dx``.

    Built by trapezoid integration: along ``x`` at ``y = 0`` for the
    anchor line, then along ``y`` at each ``x``.  ``psi`` is exact up to
    quadrature error for divergence-free fields; recirculating flows
    show up as closed level sets, and vortex centers as interior
    extrema (the quantity Hou et al. tabulate for the driven cavity).
    """
    psi = _cumtrapz(u, 1, dx)
    psi += -_cumtrapz(v[:, :1], 0, dx)
    return psi


def _local_extrema(psi: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    """Indices (k, 2) of strict interior 3x3 extrema of ``psi``."""
    c = psi[1:-1, 1:-1]
    hi = np.ones_like(c, dtype=bool)
    lo = np.ones_like(c, dtype=bool)
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            if di == 0 and dj == 0:
                continue
            nb = psi[1 + di:psi.shape[0] - 1 + di,
                     1 + dj:psi.shape[1] - 1 + dj]
            hi &= c > nb
            lo &= c < nb
    ext = hi | lo
    if mask is not None:
        # a valid extremum needs its full 3x3 stencil inside the fluid
        m = mask.astype(bool)
        ok = np.ones_like(c, dtype=bool)
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                ok &= m[1 + di:m.shape[0] - 1 + di,
                        1 + dj:m.shape[1] - 1 + dj]
        ext &= ok
    idx = np.argwhere(ext) + 1
    return idx


def _refine_center(u: np.ndarray, v: np.ndarray, i: int, j: int
                   ) -> tuple[float, float]:
    """Sub-node vortex center: Newton on bilinear ``(u, v) = 0``.

    A vortex center is a stagnation point of the recirculating flow;
    solving the interpolated velocity for its zero refines the node
    location to far below the grid spacing (the bilinear zero-crossing
    error is O(h^3) for smooth fields).  Falls back to the node itself
    if the iteration leaves a one-cell neighbourhood (sheared flows
    where the psi extremum is not a stagnation point).
    """
    nx, ny = u.shape
    x, y = float(i), float(j)
    for _ in range(20):
        i0 = min(max(int(np.floor(x)), 0), nx - 2)
        j0 = min(max(int(np.floor(y)), 0), ny - 2)
        fx, fy = x - i0, y - j0
        vals = []
        jac = []
        for f in (u, v):
            f00, f10 = f[i0, j0], f[i0 + 1, j0]
            f01, f11 = f[i0, j0 + 1], f[i0 + 1, j0 + 1]
            val = (f00 * (1 - fx) * (1 - fy) + f10 * fx * (1 - fy)
                   + f01 * (1 - fx) * fy + f11 * fx * fy)
            dfx = (f10 - f00) * (1 - fy) + (f11 - f01) * fy
            dfy = (f01 - f00) * (1 - fx) + (f11 - f10) * fx
            vals.append(val)
            jac.append((dfx, dfy))
        det = jac[0][0] * jac[1][1] - jac[0][1] * jac[1][0]
        if det == 0.0:
            break
        dx_ = (vals[0] * jac[1][1] - vals[1] * jac[0][1]) / det
        dy_ = (vals[1] * jac[0][0] - vals[0] * jac[1][0]) / det
        x, y = x - dx_, y - dy_
        if abs(x - i) > 1.5 or abs(y - j) > 1.5:
            return float(i), float(j)
        if abs(dx_) < 1e-13 and abs(dy_) < 1e-13:
            break
    return x, y


def vortex_centers(
    u: np.ndarray,
    v: np.ndarray,
    dx: float = 1.0,
    n: int = 1,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Locate the ``n`` strongest vortex centers of a 2D field.

    Candidates are strict 3x3 extrema of the streamfunction (interior
    nodes only; ``mask`` — True on fluid — further restricts the
    search), ranked by ``|psi - psi_boundary|``, then refined to
    sub-node accuracy by a Newton solve on the bilinearly interpolated
    velocity zero.  Returns an ``(n, 3)`` array of rows ``(x, y, psi)``
    in node coordinates times ``dx``; fewer rows if the flow has fewer
    extrema.
    """
    if u.ndim != 2:
        raise ValueError("vortex_centers expects 2D fields")
    psi = streamfunction_2d(u, v, 1.0)
    idx = _local_extrema(psi, mask)
    if idx.size == 0:
        return np.zeros((0, 3))
    border = np.concatenate(
        [psi[0, :], psi[-1, :], psi[:, 0], psi[:, -1]]
    )
    psi0 = float(np.median(border))
    strength = np.abs(psi[idx[:, 0], idx[:, 1]] - psi0)
    order = np.argsort(strength)[::-1][:n]
    rows = []
    for k in order:
        i, j = int(idx[k, 0]), int(idx[k, 1])
        x, y = _refine_center(u, v, i, j)
        rows.append((x * dx, y * dx, float(psi[i, j]) * dx))
    return np.asarray(rows)


def primary_vortex(
    u: np.ndarray,
    v: np.ndarray,
    dx: float = 1.0,
    mask: np.ndarray | None = None,
) -> tuple[float, float]:
    """Center ``(x, y)`` of the strongest vortex (node coords times
    ``dx``).  Raises if the flow has no interior streamfunction
    extremum (no recirculation)."""
    rows = vortex_centers(u, v, dx=dx, n=1, mask=mask)
    if rows.shape[0] == 0:
        raise ValueError("no vortex found (no streamfunction extremum)")
    return float(rows[0, 0]), float(rows[0, 1])


def spectral_peak(
    signal: np.ndarray,
    dt: float = 1.0,
    band: tuple[float, float] | None = None,
) -> tuple[float, float]:
    """Frequency and amplitude of the strongest non-DC spectral line.

    Thin observable wrapper over :func:`repro.fluids.probes.spectrum`
    (Hann window, linear detrend) with quadratic peak interpolation —
    the estimator the scored scenarios use on diagnostics time series
    (kinetic energy, total mass) to extract oscillation frequencies.
    ``band`` restricts the search to ``lo <= f <= hi``: global series
    carry a red drift continuum toward DC that would otherwise mask a
    physical tone (e.g. the flue pipe's quarter-wave line).
    """
    from .probes import spectrum

    freq, amp = spectrum(signal, dt)
    if len(amp) < 3:
        raise ValueError("signal too short")
    sel = amp.copy()
    sel[0] = 0.0
    if band is not None:
        sel[(freq < band[0]) | (freq > band[1])] = 0.0
        if not sel.any():
            raise ValueError(f"no spectral bins inside band {band}")
    k = int(np.argmax(sel[1:]) + 1)
    if 1 <= k < len(amp) - 1:
        a, b, c = amp[k - 1], amp[k], amp[k + 1]
        denom = a - 2 * b + c
        shift = 0.5 * (a - c) / denom if denom != 0 else 0.0
        shift = float(np.clip(shift, -0.5, 0.5))
    else:  # pragma: no cover - peak at the edge
        shift = 0.0
    df = freq[1] - freq[0]
    return float(freq[k] + shift * df), float(amp[k])
