"""Time-series probes and tone analysis.

The paper's application produces *audible musical tones*: "the jet
begins to oscillate strongly, and it produces audible musical tones
[...] reinforced by a nonlinear feedback from the acoustic waves to the
jet", with production runs long enough "to observe the initial response
of a flue pipe with a jet of air that oscillates at 1000 cycles per
second".  A probe records the density (pressure) signal at a point —
typically the pipe mouth — and the spectrum analysis extracts the
dominant oscillation frequency, the reproduction's stand-in for
listening to the pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.runner import Simulation
from .boundary import GlobalBox

__all__ = ["Probe", "dominant_frequency", "spectrum"]


@dataclass
class Probe:
    """Record the mean of a field over a box of nodes, every step.

    Parameters
    ----------
    box:
        Nodes to average over (e.g. ``FluePipeSetup.mouth_probe``).
    name:
        Field to record (density by default: the acoustic pressure is
        ``c_s^2 (rho - rho0)``).
    """

    box: GlobalBox
    name: str = "rho"
    steps: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def sample(self, sim: Simulation) -> float:
        """Record the probe value at the simulation's current step."""
        arr = sim.global_field(self.name)
        sl = tuple(slice(l, h) for l, h in zip(self.box.lo, self.box.hi))
        value = float(arr[sl].mean())
        self.steps.append(sim.step_count)
        self.values.append(value)
        return value

    def run(self, sim: Simulation, steps: int, every: int = 1) -> None:
        """Advance the simulation, sampling every ``every`` steps.

        Sampling stays uniform: if ``steps`` is not a multiple of
        ``every``, the final partial chunk is advanced without taking a
        sample (a trailing off-period sample would corrupt the spectrum).
        """
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        for _ in range(steps // every):
            sim.step(every)
            self.sample(sim)
        leftover = steps % every
        if leftover:
            sim.step(leftover)

    @property
    def signal(self) -> np.ndarray:
        return np.asarray(self.values)

    @property
    def sample_period(self) -> int:
        """Steps between samples (requires uniform sampling)."""
        if len(self.steps) < 2:
            raise ValueError("need at least two samples")
        diffs = np.diff(self.steps)
        if not (diffs == diffs[0]).all():
            raise ValueError("probe was sampled non-uniformly")
        return int(diffs[0])


def spectrum(
    signal: np.ndarray, dt: float = 1.0, detrend: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum of a probe signal.

    Returns ``(frequencies, amplitudes)`` with frequency in cycles per
    time unit (cycles per step for ``dt = 1``).  The mean (and,
    with ``detrend``, the linear drift of the pipe pressurizing) is
    removed so the tone dominates the zero bin.
    """
    x = np.asarray(signal, dtype=float)
    if x.size < 4:
        raise ValueError("signal too short for a spectrum")
    if detrend:
        t = np.arange(x.size)
        coeffs = np.polyfit(t, x, 1)
        x = x - np.polyval(coeffs, t)
    window = np.hanning(x.size)
    amp = np.abs(np.fft.rfft(x * window)) * 2.0 / window.sum()
    freq = np.fft.rfftfreq(x.size, d=dt)
    return freq, amp


def dominant_frequency(signal: np.ndarray, dt: float = 1.0) -> float:
    """Frequency of the strongest non-DC spectral line.

    Quadratic interpolation around the peak bin refines the estimate
    well below the bin spacing — enough to identify a pipe's speaking
    frequency from a few oscillation periods.
    """
    from .observables import spectral_peak

    return spectral_peak(signal, dt)[0]
