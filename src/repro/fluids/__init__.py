"""Numerical methods of fluid dynamics (paper §6).

Explicit finite differences and the lattice Boltzmann method on uniform
orthogonal grids, with the shared fourth-order numerical-viscosity
filter, wall/inlet/outlet boundary conditions, analytic reference
solutions and flow diagnostics.
"""

from .analytic import (
    acoustic_frequency,
    taylor_green,
    taylor_green_decay_rate,
    duct_profile,
    poiseuille_max_velocity,
    poiseuille_profile,
    standing_wave,
)
from .boundary import (
    GlobalBox,
    PressureOutlet,
    VelocityInlet,
)
from .coupling import (
    FDToLBConverter,
    LBToFDConverter,
    SeamConverter,
    build_converters,
    macro_from_populations,
    populations_from_macro,
    seam_wire_fields,
)
from .backends import (
    BackendFallbackWarning,
    BackendUnavailable,
    KernelBackend,
    available_backends,
    resolve_backend,
)
from .fd import FDMethod
from .filters import FourthOrderFilter
from .geometry import (
    FluePipeSetup,
    channel_geometry,
    cylinder_channel,
    flue_pipe,
)
from .lattices import D2Q9, D3Q15, Lattice, lattice_for
from .lbm import LBMethod
from .observables import (
    acoustic_energy,
    divergence,
    kinetic_energy,
    primary_vortex,
    spectral_peak,
    streamfunction_2d,
    total_mass,
    total_momentum,
    vortex_centers,
    vorticity_2d,
    vorticity_3d,
)
from .params import FluidParams
from .probes import Probe, dominant_frequency, spectrum

__all__ = [
    "FluidParams",
    "KernelBackend",
    "BackendUnavailable",
    "BackendFallbackWarning",
    "available_backends",
    "resolve_backend",
    "FDMethod",
    "LBMethod",
    "SeamConverter",
    "LBToFDConverter",
    "FDToLBConverter",
    "build_converters",
    "macro_from_populations",
    "populations_from_macro",
    "seam_wire_fields",
    "FourthOrderFilter",
    "GlobalBox",
    "VelocityInlet",
    "PressureOutlet",
    "FluePipeSetup",
    "flue_pipe",
    "channel_geometry",
    "cylinder_channel",
    "Lattice",
    "D2Q9",
    "D3Q15",
    "lattice_for",
    "poiseuille_profile",
    "poiseuille_max_velocity",
    "duct_profile",
    "standing_wave",
    "acoustic_frequency",
    "taylor_green",
    "taylor_green_decay_rate",
    "vorticity_2d",
    "vorticity_3d",
    "divergence",
    "total_mass",
    "total_momentum",
    "kinetic_energy",
    "acoustic_energy",
    "streamfunction_2d",
    "vortex_centers",
    "primary_vortex",
    "spectral_peak",
    "Probe",
    "spectrum",
    "dominant_frequency",
]
