"""Physical and numerical parameters of a subsonic flow simulation.

The paper's problems carry two time scales — slow hydrodynamic flow and
fast acoustic waves — and the acoustic scale dominates the choice of
integration time step: resolving wave propagation and reflection demands
``c_s * dt`` comparable to ``dx`` (eq. 4), which is why the large steps
of implicit methods buy nothing here and explicit, local methods win.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["FluidParams"]

#: Lattice speed of sound of the D2Q9 / D3Q15 lattices in lattice units.
LATTICE_CS = 1.0 / math.sqrt(3.0)


@dataclass(frozen=True)
class FluidParams:
    """Parameters shared by the FD and LB methods.

    Parameters
    ----------
    nu:
        Kinematic viscosity (the friction constant of eqs. 2-3).
    cs:
        Speed of sound (the stiffness constant of eqs. 2-3).
    dx, dt:
        Grid spacing and integration time step.  The defaults put the
        solver in lattice units (``dx = dt = 1``) with the lattice speed
        of sound, where FD and LB are directly comparable.
    rho0:
        Reference density (initial fill and outlet pressure datum).
    filter_eps:
        Strength of the fourth-order numerical-viscosity filter; 0
        disables it.  Stability of the filter itself requires
        ``filter_eps <= 1/16`` per axis.
    gravity:
        Body-force acceleration per axis (drives the Hagen-Poiseuille
        validation flow).
    """

    nu: float = 0.05
    cs: float = LATTICE_CS
    dx: float = 1.0
    dt: float = 1.0
    rho0: float = 1.0
    filter_eps: float = 0.02
    gravity: tuple[float, ...] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.nu <= 0:
            raise ValueError(f"viscosity must be positive, got {self.nu}")
        if self.cs <= 0 or self.dx <= 0 or self.dt <= 0:
            raise ValueError("cs, dx and dt must be positive")
        if not 0.0 <= self.filter_eps <= 1.0 / 16.0:
            raise ValueError(
                f"filter_eps {self.filter_eps} outside the stable "
                "range [0, 1/16]"
            )

    # ------------------------------------------------------------------
    # derived numbers
    # ------------------------------------------------------------------
    @property
    def acoustic_cfl(self) -> float:
        """``c_s dt / dx`` — must be O(1) or below (eq. 4 and stability)."""
        return self.cs * self.dt / self.dx

    @property
    def viscous_number(self) -> float:
        """``nu dt / dx^2`` — explicit diffusion stability number."""
        return self.nu * self.dt / (self.dx * self.dx)

    def check_stability(self, ndim: int = 2) -> None:
        """Raise if the explicit FD step sizes are clearly unstable.

        Conservative bounds: acoustic ``c_s dt / dx <= 1/sqrt(ndim)``
        and viscous ``nu dt / dx^2 <= 1/(2 ndim)``.
        """
        a_lim = 1.0 / math.sqrt(ndim)
        v_lim = 1.0 / (2.0 * ndim)
        if self.acoustic_cfl > a_lim + 1e-12:
            raise ValueError(
                f"acoustic CFL {self.acoustic_cfl:.3f} exceeds {a_lim:.3f}"
            )
        if self.viscous_number > v_lim + 1e-12:
            raise ValueError(
                f"viscous number {self.viscous_number:.3f} exceeds "
                f"{v_lim:.3f}"
            )

    # ------------------------------------------------------------------
    # lattice Boltzmann mapping
    # ------------------------------------------------------------------
    @property
    def lb_tau(self) -> float:
        """BGK relaxation time reproducing ``nu``: ``tau = 3 nu* + 1/2``.

        ``nu* = nu dt / dx^2`` is the viscosity in lattice units; the
        method is well-posed for ``tau > 1/2``.
        """
        return 3.0 * self.viscous_number + 0.5

    def require_lattice_units(self) -> None:
        """LB runs on the lattice: ``c_s`` must equal ``(dx/dt)/sqrt(3)``."""
        want = (self.dx / self.dt) * LATTICE_CS
        if not math.isclose(self.cs, want, rel_tol=1e-12):
            raise ValueError(
                f"lattice Boltzmann requires cs = (dx/dt)/sqrt(3) = "
                f"{want:.6g}, got {self.cs:.6g}; use "
                f"FluidParams.lattice(nu=...) or adjust dt"
            )

    @classmethod
    def lattice(cls, ndim: int = 2, **kw) -> "FluidParams":
        """Lattice-unit parameters (``dx = dt = 1``, lattice ``c_s``)."""
        g = kw.pop("gravity", (0.0,) * ndim)
        if len(g) != ndim:
            raise ValueError(f"gravity {g} must have {ndim} components")
        return cls(dx=1.0, dt=1.0, cs=LATTICE_CS, gravity=tuple(g), **kw)

    def with_(self, **kw) -> "FluidParams":
        """A copy with the given fields replaced."""
        return replace(self, **kw)
