"""FD <-> LB seam coupling (Latt-Chopard-Albuquerque spatial coupling).

A hybrid run assigns different numerical methods to different subregions
of one decomposition.  At a *seam* — a block face whose two sides run
different methods — the ghost strips cannot be copied verbatim: the FD
side evolves only the macroscopic fields ``rho, V`` while the LB side
also carries populations ``F_i``.  This module owns both translations:

* **populations -> rho, V** (:func:`macro_from_populations`): plain
  moments plus the Guo half-force shift, the same convention as the LB
  kernels' ``lb_moments`` so a seam against an LB region reads exactly
  the macroscopic state the LB region itself would report.
* **rho, V -> populations** (:func:`populations_from_macro`): the
  truncated Chapman-Enskog reconstruction ``f_i = f_eq_i(rho, u)
  + f_half_i + f_neq_i`` where ``f_half_i = -+(3/2) w_i rho (e_i . g)``
  is the half-force shift (zeroth moment 0, first moment ``-+rho g / 2``)
  and ``f_neq_i = -3 w_i tau rho Q_iab d_a u_b`` with ``Q_iab = e_ia
  e_ib - delta_ab / 3`` is the strain-rate non-equilibrium correction,
  evaluated with finite differences of the velocity field.  The ghost
  strip feeds the LB *streaming* step, which pulls **post-collision**
  populations: the Guo forcing has just deposited ``rho g`` of
  momentum, so the half-force shift enters with momentum ``+rho g / 2``
  (the ``-rho g / 2`` sign is the post-streaming state that inverts
  ``lb_moments``) and the non-equilibrium part carries the BGK
  post-collision factor ``(1 - 1/tau)``.

Both ``f_half`` and ``f_neq`` have vanishing zeroth and first moments,
so the round trip ``rho, V -> populations -> moments`` is exact to
rounding regardless of the velocity gradients (asserted at 1e-12 by the
seam unit tests), and a uniform flow reconstructs pure (shifted)
equilibrium.

The exchange layer stays physics-agnostic: :func:`build_converters`
returns per-edge :class:`SeamConverter` objects keyed by ``(dst_rank,
src_rank)`` which ``LocalExchanger`` / ``SocketExchanger`` invoke
whenever the two sides of an edge disagree on the method.  The seam
sweep runs once per step *before* the first compute phase, so both
sides translate time-``t`` state (first order in time at the seam,
exact at steady state — the regime the Poiseuille validation checks).
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

import numpy as np

from ..core.decomposition import Decomposition
from ..core.subregion import SubregionState

__all__ = [
    "SeamConverter",
    "LBToFDConverter",
    "FDToLBConverter",
    "macro_from_populations",
    "populations_from_macro",
    "strip_velocity_gradients",
    "seam_wire_fields",
    "build_converters",
]

Region = tuple  # tuple[slice, ...]


# ----------------------------------------------------------------------
# conversions
# ----------------------------------------------------------------------
def macro_from_populations(
    lb, f: np.ndarray
) -> tuple[np.ndarray, list[np.ndarray]]:
    """``(rho, [u, v(, w)])`` from a ``(Q,) + shape`` population array.

    Mirrors the LB kernels' ``lb_moments`` (signed index sums, then the
    Guo half-force shift ``u_d += g_d / 2``) so seam moments agree with
    the macroscopic fields the LB region itself maintains.  No solid
    masking: seam strips through walls keep the no-slip values the
    methods enforce locally.
    """
    rho = f.sum(axis=0)
    g = lb.params.gravity
    vels = []
    for d in range(lb.ndim):
        plus, minus = lb._mom_idx[d]
        vel = np.subtract(f[plus[0]], f[minus[0]])
        for i in plus[1:]:
            vel += f[i]
        for i in minus[1:]:
            vel -= f[i]
        vel /= rho
        if g[d] != 0.0:
            vel += 0.5 * g[d]
        vels.append(vel)
    return rho, vels


def populations_from_macro(
    lb,
    rho: np.ndarray,
    vels: Sequence[np.ndarray],
    grads: Sequence[Sequence[np.ndarray]] | None = None,
    post_collision: bool = True,
) -> np.ndarray:
    """Reconstruct populations from macroscopic fields (module docstring).

    ``grads[a][b]`` is ``d u_b / d x_a`` on ``rho``'s grid; ``None``
    drops the non-equilibrium correction (uniform flow needs none).

    ``post_collision`` selects which epoch of the LB cycle the
    populations represent.  ``False``: the post-streaming state whose
    moments :func:`macro_from_populations` inverts — first moment
    ``rho (u - g/2)``, full non-equilibrium part.  ``True`` (what seam
    ghosts need — streaming pulls post-collision populations): the Guo
    forcing just deposited ``rho g`` of momentum, so the first moment
    is ``rho (u + g/2)`` (half-force shift flips sign) and the
    non-equilibrium part carries the BGK factor ``(1 - 1/tau)``.
    """
    f = lb.equilibrium(rho, list(vels))
    ndim = lb.ndim
    w_b = lb._w_b if rho.ndim == ndim else lb.lattice.w.reshape(
        (lb.lattice.q,) + (1,) * rho.ndim
    )
    e_b = lb._e_b if rho.ndim == ndim else tuple(
        lb._e_f[:, d].reshape((lb.lattice.q,) + (1,) * rho.ndim)
        for d in range(ndim)
    )
    # Half-force shift: zeroth moment 0, first moment -+ rho g / 2
    # (docstring above — the sign tracks the epoch).
    g = lb.params.gravity
    if any(g):
        eg = e_b[0] * g[0]
        for d in range(1, ndim):
            eg = eg + e_b[d] * g[d]
        if post_collision:
            f += 1.5 * w_b * eg * rho
        else:
            f -= 1.5 * w_b * eg * rho
    if grads is not None:
        # Q_iab d_a u_b = (e_ia e_ib - delta_ab / 3) d_a u_b
        trace = grads[0][0].copy()
        for d in range(1, ndim):
            trace += grads[d][d]
        acc = None
        for a in range(ndim):
            for b in range(ndim):
                term = e_b[a] * e_b[b] * grads[a][b]
                acc = term if acc is None else acc + term
        acc -= trace / 3.0
        scale = 3.0 * (lb.tau - 1.0) if post_collision else 3.0 * lb.tau
        f -= scale * w_b * rho * acc
    return f


def strip_velocity_gradients(
    arrs: Sequence[np.ndarray], region: Region, dx: float = 1.0
) -> list[list[np.ndarray]]:
    """``grads[a][b] = d arrs[b] / d x_a`` over ``region`` of padded arrays.

    Grow the region by one cell per axis (clipped at the array bounds),
    take :func:`numpy.gradient` on the grown block, trim back: interior
    cells get centered differences that read one cell *outside* the
    strip when available; cells on the physical array edge fall back to
    the one-sided difference — deterministic and identical wherever the
    strip lives (serial, threaded, or a distributed receiver).
    """
    shape = arrs[0].shape
    grown: list[slice] = []
    trim: list[slice] = []
    for d, sl in enumerate(region):
        start, stop, _ = sl.indices(shape[d])
        gs, ge = max(start - 1, 0), min(stop + 1, shape[d])
        grown.append(slice(gs, ge))
        trim.append(slice(start - gs, (start - gs) + (stop - start)))
    grown_t, trim_t = tuple(grown), tuple(trim)
    ndim = len(shape)
    out: list[list[np.ndarray]] = []
    for a in range(ndim):
        row = []
        for b in range(ndim):
            g = np.gradient(arrs[b][grown_t], dx, axis=a)
            row.append(np.ascontiguousarray(g[trim_t]))
        out.append(row)
    return out


# ----------------------------------------------------------------------
# per-edge converters
# ----------------------------------------------------------------------
class SeamConverter(Protocol):
    """Translate a neighbour's seam payload into my ghost strip.

    ``wire_fields`` names the fields the *sender* ships (its own
    representation); ``convert`` writes the receiver's ghost strip.
    The payload arrays are read-only views or freshly unpacked buffers
    shaped exactly like the receiver's ghost strip.
    """

    wire_fields: tuple[str, ...]

    def convert(
        self,
        sub: SubregionState,
        recv_slices: Region,
        payload: Mapping[str, np.ndarray],
    ) -> None:
        """Translate the neighbour's ``payload`` strips (its own field
        representation, see :func:`seam_wire_fields`) into this
        subregion's fields over the ghost region ``recv_slices``."""
        ...


class LBToFDConverter:
    """LB neighbour -> FD ghost strip: moments of the shipped populations."""

    def __init__(self, lb) -> None:
        self.lb = lb
        self.wire_fields: tuple[str, ...] = ("f",)
        #: leading (component) dims per wire field, for receivers that
        #: do not hold the field themselves (transport deserialization)
        self.wire_leading = {"f": (lb.lattice.q,)}

    def convert(self, sub, recv_slices, payload) -> None:
        """Fill the FD ghost strip with the moments of the received
        LB populations."""
        rho, vels = macro_from_populations(self.lb, payload["f"])
        sub.fields["rho"][recv_slices] = rho
        for d, name in enumerate(self.lb.vel_names):
            sub.fields[name][recv_slices] = vels[d]


class FDToLBConverter:
    """FD neighbour -> LB ghost strip: macro copy + population rebuild.

    The shipped ``rho, V`` land in the ghost strip first; velocity
    gradients for the non-equilibrium correction are then taken on the
    receiver's own padded arrays (strip plus one adjacent ring), so the
    reconstruction is local, deterministic, and identical across the
    serial, threaded and distributed transports.
    """

    def __init__(self, lb) -> None:
        self.lb = lb
        self.wire_fields: tuple[str, ...] = ("rho",) + lb.vel_names
        self.wire_leading: dict[str, tuple[int, ...]] = {}

    def convert(self, sub, recv_slices, payload) -> None:
        """Adopt the received macro strips, then rebuild the LB ghost
        populations from them (equilibrium + half-force +
        non-equilibrium reconstruction)."""
        lb = self.lb
        sub.fields["rho"][recv_slices] = payload["rho"]
        for name in lb.vel_names:
            sub.fields[name][recv_slices] = payload[name]
        vel_arrs = [sub.fields[n] for n in lb.vel_names]
        grads = strip_velocity_gradients(
            vel_arrs, recv_slices, dx=lb.params.dx
        )
        rho = sub.fields["rho"][recv_slices]
        vels = [a[recv_slices] for a in vel_arrs]
        sub.fields["f"][(slice(None),) + recv_slices] = (
            populations_from_macro(lb, rho, vels, grads)
        )


def seam_wire_fields(method) -> tuple[str, ...]:
    """Fields a method ships across a seam (its own representation)."""
    return ("f",) if method.method_name == "lb" else (
        ("rho",) + method.vel_names
    )


def build_converters(
    decomp: Decomposition, methods_by_rank: Sequence
) -> dict[tuple[int, int], SeamConverter]:
    """Per-edge converters for every mixed-method face of a decomposition.

    ``methods_by_rank`` lists one method instance per dense active rank.
    Returns ``{(dst_rank, src_rank): converter}`` — empty for uniform
    runs, in which case the exchange layer behaves exactly as before.
    """
    out: dict[tuple[int, int], SeamConverter] = {}
    rank_of = {b.rank: b for b in decomp.active_blocks()}
    for dst_rank, blk in rank_of.items():
        dst = methods_by_rank[dst_rank]
        for axis in range(decomp.ndim):
            for side in (-1, +1):
                off = tuple(
                    side if d == axis else 0 for d in range(decomp.ndim)
                )
                nb_index = decomp.neighbor_index(blk.index, off)
                if nb_index is None:
                    continue
                nb = decomp[nb_index]
                if not nb.active:
                    continue
                src = methods_by_rank[nb.rank]
                if src.method_name == dst.method_name:
                    continue
                if dst.method_name == "lb":
                    out[(dst_rank, nb.rank)] = FDToLBConverter(dst)
                else:
                    out[(dst_rank, nb.rank)] = LBToFDConverter(src)
    return out
