"""Shared array kernels: shifted-slice stencil algebra on padded arrays.

All numerical kernels in :mod:`repro.fluids` are expressed as vectorized
NumPy operations over *regions* (tuples of slices) of padded arrays.
A centered difference at region ``R`` reads the regions shifted by one
node either way; because every field carries ``pad`` ghost layers, the
shifted reads never leave the array, and the very same kernel code runs
in the serial program and in every parallel transport (the separation of
computation from communication the paper builds on, §4.2).

Every derivative kernel takes optional ``out=`` (and, where an
intermediate is unavoidable, ``scratch=``) buffers of the region's
shape.  There is a single implementation path: when the buffers are
omitted they are allocated on the spot, so the allocating and the
buffered forms produce bitwise-identical results.  The hot paths in
:mod:`repro.fluids.fd` and :mod:`repro.fluids.filters` pass per-subregion
scratch registered in ``sub.aux`` (see
:meth:`repro.core.subregion.SubregionState.scratch`), which makes a
warmed-up integration step allocation-free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

Region = tuple[slice, ...]

__all__ = [
    "Region",
    "shift_region",
    "region_shape",
    "central_diff",
    "second_diff",
    "laplacian",
    "fourth_diff_sum",
    "dilate_star",
]


def shift_region(region: Region, axis: int, by: int) -> Region:
    """Shift a region of slices by ``by`` nodes along ``axis``.

    Only plain ``slice(start, stop)`` entries are supported (the padded
    regions used by the kernels), so the arithmetic is exact and cheap.
    """
    out = list(region)
    sl = region[axis]
    if sl.start is None or sl.stop is None or sl.step not in (None, 1):
        raise ValueError(f"region slice {sl} must be explicit with step 1")
    out[axis] = slice(sl.start + by, sl.stop + by)
    return tuple(out)


def region_shape(region: Region) -> tuple[int, ...]:
    """The array shape a region of explicit slices selects."""
    shape = []
    for sl in region:
        if sl.start is None or sl.stop is None or sl.step not in (None, 1):
            raise ValueError(f"region slice {sl} must be explicit with step 1")
        shape.append(sl.stop - sl.start)
    return tuple(shape)


def central_diff(
    a: np.ndarray,
    region: Region,
    axis: int,
    dx: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Second-order centered first derivative on ``region``.

    Writes into ``out`` (allocated when omitted) and returns it.
    """
    plus = a[shift_region(region, axis, +1)]
    minus = a[shift_region(region, axis, -1)]
    if out is None:
        out = np.empty(region_shape(region), dtype=a.dtype)
    np.subtract(plus, minus, out=out)
    out /= 2.0 * dx
    return out


def second_diff(
    a: np.ndarray,
    region: Region,
    axis: int,
    dx: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Second-order centered second derivative on ``region``."""
    plus = a[shift_region(region, axis, +1)]
    minus = a[shift_region(region, axis, -1)]
    mid = a[region]
    if out is None:
        out = np.empty(region_shape(region), dtype=a.dtype)
    np.multiply(mid, 2.0, out=out)
    np.subtract(plus, out, out=out)
    out += minus
    out /= dx * dx
    return out


def laplacian(
    a: np.ndarray,
    region: Region,
    dx: float,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Centered Laplacian (sum of per-axis second differences).

    ``scratch`` holds one per-axis second difference while it is added
    to the accumulating ``out``; both are allocated when omitted.
    """
    out = second_diff(a, region, 0, dx, out=out)
    if len(region) > 1 and scratch is None:
        scratch = np.empty_like(out)
    for axis in range(1, len(region)):
        out += second_diff(a, region, axis, dx, out=scratch)
    return out


def fourth_diff_sum(
    a: np.ndarray,
    region: Region,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Sum over axes of the undivided fourth difference.

    Per axis: ``a[i-2] - 4 a[i-1] + 6 a[i] - 4 a[i+1] + a[i+2]`` — the
    stencil of the fourth-order numerical-viscosity filter
    (Peyret & Taylor) the paper applies to ``rho, Vx, Vy(,Vz)`` every
    step to suppress node-to-node spatial frequencies (§6).

    The center coefficient is hoisted out of the axis loop
    (``6 * ndim * a``), so the whole stencil costs one fused pass per
    shifted read plus a single ``scratch`` buffer for the odd neighbours.
    """
    ndim = len(region)
    if out is None:
        out = np.empty(region_shape(region), dtype=a.dtype)
    if scratch is None:
        scratch = np.empty_like(out)
    np.multiply(a[region], 6.0 * ndim, out=out)
    for axis in range(ndim):
        out += a[shift_region(region, axis, -2)]
        out += a[shift_region(region, axis, +2)]
        np.add(
            a[shift_region(region, axis, -1)],
            a[shift_region(region, axis, +1)],
            out=scratch,
        )
        scratch *= 4.0
        out -= scratch
    return out


def dilate_star(mask: np.ndarray, reach: int) -> np.ndarray:
    """Dilate a boolean mask by ``reach`` nodes along each axis (star).

    ``dilate_star(solid, 2)`` marks every node whose filter stencil
    touches a solid node; the filter correction is zeroed there so that
    wall values stay pinned and no stencil ever reads across a wall.
    Edges are handled by clipping (no wraparound): the mask is padded by
    edge replication, matching the ghost-fill convention.
    """
    out = mask.copy()
    for axis in range(mask.ndim):
        acc = out.copy()
        for by in range(1, reach + 1):
            acc |= _shift_clip(out, axis, +by)
            acc |= _shift_clip(out, axis, -by)
        out = acc
    return out


def _shift_clip(mask: np.ndarray, axis: int, by: int) -> np.ndarray:
    """Shift a mask along ``axis``, replicating the trailing edge."""
    out = np.empty_like(mask)
    src: list[slice] = [slice(None)] * mask.ndim
    dst: list[slice] = [slice(None)] * mask.ndim
    edge: list[slice] = [slice(None)] * mask.ndim
    if by > 0:
        src[axis] = slice(0, mask.shape[axis] - by)
        dst[axis] = slice(by, None)
        edge[axis] = slice(0, by)
        edge_src = [slice(None)] * mask.ndim
        edge_src[axis] = slice(0, 1)
    else:
        src[axis] = slice(-by, None)
        dst[axis] = slice(0, mask.shape[axis] + by)
        edge[axis] = slice(mask.shape[axis] + by, None)
        edge_src = [slice(None)] * mask.ndim
        edge_src[axis] = slice(mask.shape[axis] - 1, None)
    out[tuple(dst)] = mask[tuple(src)]
    out[tuple(edge)] = mask[tuple(edge_src)]
    return out
