"""Dependency-driven compute-graph runs (ROADMAP item 5).

Plan first, execute second: :func:`plan_graph` walks a decomposition
plus its per-rank methods and emits the explicit task DAG one run
implies — per-subregion compute/finalize nodes, per-edge ghost-fill
and seam-conversion nodes, periodic collective and checkpoint nodes —
as a serializable :class:`TaskGraph` costed from the §7 calibration
(or live :class:`~repro.balance.LoadEstimator` speeds).
:class:`GraphExecutor` then solves that graph on the real in-process
runtime with a worker pool and a ready heap: no BSP barrier, a
subregion steps as soon as its own ghost strips are filled, and the
result is bit-for-bit the serial one.  :mod:`repro.graph.stalls`
turns the cost estimates into *named* slow-rank reports — in-process
via the executor's watchdog, distributed via worker heartbeats
replayed by the monitor.

The facade front door is ``RunSettings(execution="graph")`` with
``backend="threaded"`` (or ``"distributed"``, where workers consume
per-rank graph slices and the monitor reports graph stalls);
``repro bench --graph`` measures the overlap gain on an imbalanced
synthetic-delay cluster.
"""

from .executor import GraphExecutor
from .plan import GRAPH_SCHEMA_VERSION, TaskGraph, TaskNode, plan_graph
from .stalls import (
    HeartbeatStallDetector,
    StallDetector,
    StallEvent,
)

__all__ = [
    "plan_graph",
    "TaskGraph",
    "TaskNode",
    "GraphExecutor",
    "StallDetector",
    "HeartbeatStallDetector",
    "StallEvent",
    "GRAPH_SCHEMA_VERSION",
]
