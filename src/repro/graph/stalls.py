"""Graph stalls: slow work made visible by its own cost estimate.

Under a BSP barrier a slow rank is invisible — every other rank just
waits, and the wait is indistinguishable from load imbalance, network
loss or a wedged process.  A planned :class:`~repro.graph.TaskGraph`
changes that: every node carries the planner's cost estimate, so "this
node's dependencies have been satisfied for more than N× its estimated
cost and it has not finished" is a *named*, attributable event — a
**graph stall** — rather than a silent barrier wait.

Two consumers share the rule:

* the in-process :class:`~repro.graph.GraphExecutor` feeds ready/done
  timestamps per node and emits a ``graph:stall`` trace span per event;
* the distributed monitor replays worker heartbeats against per-rank
  graph slices (:class:`HeartbeatStallDetector`): once every dependency
  rank has reached step *t*, a rank still on *t* after N× its estimated
  per-step cost is reported by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StallEvent", "StallDetector", "HeartbeatStallDetector"]

#: Default multiple of the estimated cost before a node counts as
#: stalled, and the floor (seconds) that keeps sub-millisecond nodes
#: from flagging on scheduler noise.
STALL_FACTOR = 8.0
STALL_FLOOR = 0.05


@dataclass(frozen=True)
class StallEvent:
    """One detected stall: which node, whose rank, how late."""

    label: str
    rank: int
    step: int
    waited: float       # seconds since the node's deps were satisfied
    cost: float         # the planner's estimate for the node

    @property
    def factor(self) -> float:
        """How many estimated-cost multiples the node has been ready."""
        return self.waited / self.cost if self.cost > 0 else float("inf")


@dataclass
class StallDetector:
    """Node-granular stall rule over ready/done timestamps.

    ``node_ready`` marks the moment a node's last dependency completed;
    ``check(now)`` reports every ready-but-unfinished node older than
    ``factor × cost + floor`` (each node at most once); ``node_done``
    retires it.  Timestamps are whatever monotonic clock the caller
    uses — the detector only differences them.
    """

    factor: float = STALL_FACTOR
    floor: float = STALL_FLOOR
    events: list[StallEvent] = field(default_factory=list)
    _ready: dict[int, tuple[float, object]] = field(default_factory=dict)
    _flagged: set[int] = field(default_factory=set)

    def node_ready(self, node, now: float) -> None:
        """Mark ``node``'s last dependency as completed at ``now``."""
        self._ready[node.id] = (now, node)

    def node_done(self, node_id: int) -> None:
        """Retire a finished node from the watch set."""
        self._ready.pop(node_id, None)

    def check(self, now: float) -> list[StallEvent]:
        """All *new* stalls as of ``now``."""
        fresh: list[StallEvent] = []
        for nid, (t_ready, node) in self._ready.items():
            if nid in self._flagged:
                continue
            waited = now - t_ready
            if waited > self.factor * node.cost + self.floor:
                self._flagged.add(nid)
                event = StallEvent(
                    label=node.label, rank=node.rank, step=node.step,
                    waited=waited, cost=node.cost,
                )
                self.events.append(event)
                fresh.append(event)
        return fresh


class HeartbeatStallDetector:
    """The monitor-side stall rule over per-rank heartbeat steps.

    A worker consuming its slice of the graph cannot publish per-node
    timestamps cheaply, but its heartbeat step *is* the frontier of its
    slice.  Rank ``r`` is stalled at step ``t`` when every rank feeding
    ``r``'s step-``t`` nodes has reached ``t`` (``r``'s dependencies
    are ready) yet ``r`` has sat on ``t`` for more than ``factor``
    times its estimated per-step cost.
    """

    def __init__(self, graph, factor: float = STALL_FACTOR,
                 floor: float = STALL_FLOOR) -> None:
        self.graph = graph
        self.factor = factor
        self.floor = floor
        self.events: list[StallEvent] = []
        ranks = [int(r) for r in graph.meta.get("ranks", [])]
        self._step_cost = {r: graph.step_cost(r) for r in ranks}
        # ranks feeding each rank's nodes (its dependency neighbours)
        feeds: dict[int, set[int]] = {r: set() for r in ranks}
        for node in graph.nodes:
            if node.rank >= 0 and node.src >= 0 and node.src != node.rank:
                feeds[node.rank].add(node.src)
        self._feeds = feeds
        self._since: dict[int, tuple[int, float]] = {}
        self._flagged: set[tuple[int, int]] = set()

    def observe(self, steps: dict[int, int], now: float) -> list[StallEvent]:
        """Feed the latest heartbeat steps; return *new* stalls."""
        fresh: list[StallEvent] = []
        for rank, step in steps.items():
            if rank not in self._step_cost:
                continue
            seen = self._since.get(rank)
            if seen is None or seen[0] != step:
                self._since[rank] = (step, now)
                continue
            if (rank, step) in self._flagged:
                continue
            deps_ready = all(
                steps.get(nb, -1) >= step for nb in self._feeds[rank]
            )
            if not deps_ready:
                continue
            waited = now - seen[1]
            cost = self._step_cost[rank]
            if waited > self.factor * cost + self.floor:
                self._flagged.add((rank, step))
                event = StallEvent(
                    label=f"step:r{rank}:t{step}", rank=rank,
                    step=step, waited=waited, cost=cost,
                )
                self.events.append(event)
                fresh.append(event)
        return fresh
