"""Planning the explicit task DAG one decomposed run implies.

A compute/communicate run (paper §3) is usually *executed* — phases and
exchanges interleaved by a runner — but everything the runner will do is
known the moment the decomposition and the per-rank methods are fixed.
This module walks a :class:`~repro.core.decomposition.Decomposition`
plus its methods and emits that schedule as data: a
:class:`TaskGraph` of per-subregion compute/finalize nodes, per-edge
ghost-fill (and seam-conversion) nodes, and periodic collective /
checkpoint nodes, each carrying the dependency edges that make any
topological execution order produce *bit-for-bit* the serial result.

The dependency rules encode the read/write-hazard analysis of
:class:`~repro.core.exchange.LocalExchanger` at per-edge granularity:

* a ghost fill into ``dst`` at sweep position ``k`` waits for both
  endpoint computes of its phase and for every earlier-position
  operation *touching either endpoint* — the send strip spans the full
  padded extent of the other axes, so corner data propagates through
  consecutive axis passes exactly as in the serial sweep, and a later
  pass must not overwrite a strip a neighbour has yet to read;
* ``compute(t, p+1)`` waits for every stage-``p`` operation touching
  its subregion (fills into it *and* reads of its send strips);
* ``finalize(t)`` waits for every exchange of the step touching the
  subregion — the filter rewrites interior and ring-1 ghosts that
  neighbours read — and ``compute(t+1, 0)`` waits for ``finalize(t)``;
* seam conversions (hybrid runs) run before the step's first compute
  phase in the same axis-sweep order as
  :meth:`~repro.core.exchange.LocalExchanger.exchange_seam`;
* a diagnostics collective is a true barrier (it reduces over every
  subregion), and a checkpoint must complete before the next step's
  ghost writes land in the dump's padded arrays.

Nodes that only touch *different* subregions are left unordered: that
is the compute/communicate overlap a dependency-driven executor
(:mod:`repro.graph.executor`) harvests, while costs estimated from the
:mod:`repro.cluster.calibration` constants (or live
:class:`~repro.balance.LoadEstimator` speeds) give the stall detector
its per-node expectations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.decomposition import Decomposition
from ..core.exchange import build_plan, sweep_axes

__all__ = ["TaskNode", "TaskGraph", "plan_graph", "GRAPH_SCHEMA_VERSION"]

GRAPH_SCHEMA_VERSION = 1

#: Node kinds, in the order they appear within one step.
NODE_KINDS = (
    "seam", "compute", "exchange", "replicate", "finalize", "diag",
    "checkpoint",
)

#: Estimated checkpoint write rate (bytes/s) for costing dump nodes.
_CHECKPOINT_BYTES_PER_S = 50e6


@dataclass(frozen=True)
class TaskNode:
    """One unit of work in a planned run.

    ``rank`` is the owning subregion (the written one for ghost fills;
    ``-1`` for the global diagnostics collective), ``src`` the rank a
    fill or seam conversion reads from (``-1`` when not applicable).
    ``pos`` is the position in the per-phase axis sweep — two fills at
    the same position commute, fills at different positions touching a
    common rank do not.  ``cost`` is the planner's estimated seconds,
    the denominator of the stall detector's "N× estimate" rule.
    """

    id: int
    kind: str
    rank: int
    step: int
    phase: int = -1
    axis: int = -1
    side: int = 0
    pos: int = -1
    src: int = -1
    cost: float = 0.0
    deps: tuple[int, ...] = ()

    @property
    def label(self) -> str:
        """Stable human-readable name (``compute:r0:t3:p1`` etc.)."""
        bits = [self.kind, f"r{self.rank}", f"t{self.step}"]
        if self.phase >= 0:
            bits.append(f"p{self.phase}")
        if self.axis >= 0:
            side = "lo" if self.side < 0 else "hi"
            bits.append(f"a{self.axis}{side}")
        if self.src >= 0:
            bits.append(f"from{self.src}")
        return ":".join(bits)


@dataclass
class TaskGraph:
    """A serializable, validated task DAG for one run.

    ``meta`` records what was planned (steps, ranks, sweep, method
    names, periodic node cadences) so an executor — or a worker handed
    only its slice — can check it is marching the same problem.
    """

    nodes: list[TaskNode]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.nodes)

    def validate(self) -> None:
        """Check ids are dense and every dependency points backwards.

        Construction order is a topological order, so acyclicity
        reduces to ``dep < id``; a violated check means a hand-edited
        or corrupted graph.
        """
        for i, node in enumerate(self.nodes):
            if node.id != i:
                raise ValueError(f"node {i} carries id {node.id}")
            for dep in node.deps:
                if not 0 <= dep < node.id:
                    raise ValueError(
                        f"node {node.label} depends on {dep} (id {node.id})"
                    )

    def counts(self) -> dict[str, int]:
        """Node count per kind (reporting / sanity checks)."""
        out: dict[str, int] = {}
        for node in self.nodes:
            out[node.kind] = out.get(node.kind, 0) + 1
        return out

    def rank_slice(self, rank: int) -> list[TaskNode]:
        """The nodes a rank owns or feeds (its worker-visible slice)."""
        return [
            n for n in self.nodes if n.rank == rank or n.src == rank
        ]

    def step_cost(self, rank: int) -> float:
        """Estimated seconds per step of the nodes ``rank`` owns."""
        steps = max(1, int(self.meta.get("steps", 1)))
        total = sum(n.cost for n in self.nodes if n.rank == rank)
        return total / steps

    def critical_path(self) -> float:
        """Estimated seconds along the longest dependency chain —
        the dependency-driven lower bound the overlap bench compares
        against ``steps × max(per-rank step cost)`` (the BSP bound)."""
        finish = [0.0] * len(self.nodes)
        for node in self.nodes:
            start = max((finish[d] for d in node.deps), default=0.0)
            finish[node.id] = start + node.cost
        return max(finish, default=0.0)

    # ------------------------------------------------------------------
    # serialization (canonical: equal plans produce equal text)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical compact JSON: equal plans produce equal text."""
        payload = {
            "version": GRAPH_SCHEMA_VERSION,
            "meta": self.meta,
            "nodes": [
                [
                    n.id, n.kind, n.rank, n.step, n.phase, n.axis,
                    n.side, n.pos, n.src, round(n.cost, 12),
                    list(n.deps),
                ]
                for n in self.nodes
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TaskGraph":
        payload = json.loads(text)
        version = payload.get("version")
        if version != GRAPH_SCHEMA_VERSION:
            raise ValueError(
                f"task graph schema {version!r}, expected "
                f"{GRAPH_SCHEMA_VERSION}"
            )
        nodes = [
            TaskNode(
                id=row[0], kind=row[1], rank=row[2], step=row[3],
                phase=row[4], axis=row[5], side=row[6], pos=row[7],
                src=row[8], cost=row[9], deps=tuple(row[10]),
            )
            for row in payload["nodes"]
        ]
        graph = cls(nodes=nodes, meta=payload.get("meta", {}))
        graph.validate()
        return graph

    def save(self, path) -> None:
        """Write the canonical JSON form to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "TaskGraph":
        from pathlib import Path

        return cls.from_json(Path(path).read_text())


def _method_name(method) -> str:
    return getattr(method, "method_name", "fd")


def _default_rates(ranks, methods, ndim) -> dict[int, float]:
    from ..cluster.calibration import node_speed

    return {
        r: node_speed(_method_name(m), ndim)
        for r, m in zip(ranks, methods)
    }


def plan_graph(
    decomp: Decomposition,
    methods: Sequence,
    steps: int,
    *,
    converter_edges: Sequence[tuple[int, int]] = (),
    diag_every: int = 0,
    save_every: int = 0,
    rates: Mapping[int, float] | Sequence[float] | None = None,
    bandwidth: float | None = None,
    overhead: float | None = None,
) -> TaskGraph:
    """Plan the task DAG of ``steps`` steps of one decomposed run.

    Parameters
    ----------
    decomp, methods:
        The decomposition and the per-rank methods, exactly as a
        :class:`~repro.core.Simulation` would receive them (one method
        per active rank, shared ``pad``).
    converter_edges:
        The ``(dst_rank, src_rank)`` seam edges of a hybrid run (the
        keys of :func:`repro.fluids.coupling.build_converters`); these
        edges get per-step seam-conversion nodes and are skipped by the
        per-phase exchange, mirroring the runners.
    diag_every, save_every:
        Cadence of the global diagnostics collective and of per-rank
        checkpoint nodes (0 disables, matching
        :class:`~repro.distrib.RunSettings`).
    rates:
        Per-rank speeds in fluid nodes/second for cost estimation —
        pass ``LoadEstimator.speeds()`` when live heartbeat data
        exists; defaults to the §7 calibration table.
    bandwidth, overhead:
        Exchange cost model (bytes/s, seconds/message); defaults to
        the calibrated shared-Ethernet constants.
    """
    from ..cluster.calibration import (
        ETHERNET_BANDWIDTH,
        MESSAGE_OVERHEAD,
        bytes_per_boundary_node,
    )
    from ..cluster.simulator import phase_fractions

    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    blocks = sorted(decomp.active_blocks(), key=lambda b: b.rank)
    ranks = [b.rank for b in blocks]
    if len(methods) != len(ranks):
        raise ValueError(
            f"{len(methods)} methods for {len(ranks)} active ranks"
        )
    meth = dict(zip(ranks, methods))
    pad = methods[0].pad
    ndim = decomp.ndim
    plans = {r: build_plan(decomp, r, pad) for r in ranks}
    extended = decomp.n_active < decomp.n_blocks
    sweep = sweep_axes(ndim, extended)
    nphases = max(len(m.exchange_phases) for m in methods)
    conv = frozenset((int(a), int(b)) for a, b in converter_edges)
    bw = ETHERNET_BANDWIDTH if bandwidth is None else bandwidth
    ovh = MESSAGE_OVERHEAD if overhead is None else overhead

    if rates is None:
        speed = _default_rates(ranks, methods, ndim)
    elif isinstance(rates, Mapping):
        speed = {r: float(rates[r]) for r in ranks}
    else:
        speed = {r: float(v) for r, v in zip(ranks, rates)}
    n_nodes = {r: b.n_nodes for r, b in zip(ranks, blocks)}
    padded = {
        r: tuple(s + 2 * pad for s in b.shape)
        for r, b in zip(ranks, blocks)
    }
    fractions = {r: phase_fractions(_method_name(m)) for r, m in meth.items()}
    wire = {r: bytes_per_boundary_node(_method_name(m), ndim)
            for r, m in meth.items()}
    n_fields = {r: len(m.field_names) for r, m in meth.items()}

    def compute_cost(r: int, p: int) -> float:
        return fractions[r][p] * n_nodes[r] / speed[r]

    def finalize_cost(r: int) -> float:
        rest = max(0.0, 1.0 - sum(fractions[r]))
        return rest * n_nodes[r] / speed[r]

    def fill_cost(r: int, op, n_vals: int) -> float:
        strip = op.strip_nodes(padded[r])
        if op.kind == "recv":
            return ovh + strip * n_vals * 8 / bw
        return strip * n_vals / speed[r]  # local edge replication

    nodes: list[TaskNode] = []

    def add(kind, rank, step, *, phase=-1, axis=-1, side=0, pos=-1,
            src=-1, cost=0.0, deps=()) -> int:
        nid = len(nodes)
        nodes.append(TaskNode(
            id=nid, kind=kind, rank=rank, step=step, phase=phase,
            axis=axis, side=side, pos=pos, src=src, cost=float(cost),
            deps=tuple(sorted(set(int(d) for d in deps))),
        ))
        return nid

    prev_finalize: dict[int, int] = {}
    prev_diag: int | None = None
    prev_ckpt: dict[int, int] = {}

    for t in range(steps):
        # --- seam conversions (hybrid): before the first compute phase,
        #     in axis-sweep order, both sides converting time-t state.
        seam_all: dict[int, list[int]] = {r: [] for r in ranks}
        if conv:
            touch = {r: [[] for _ in sweep] for r in ranks}
            for pos, axis in enumerate(sweep):
                for r in ranks:
                    for op in plans[r].ops_for_axis(axis):
                        if op.kind != "recv":
                            continue
                        nb = op.neighbor_rank
                        if (r, nb) not in conv:
                            continue
                        deps = []
                        if t > 0:
                            deps += [prev_finalize[r], prev_finalize[nb]]
                        if prev_diag is not None:
                            deps.append(prev_diag)
                        if r in prev_ckpt:
                            deps.append(prev_ckpt[r])
                        for k in range(pos):
                            deps += touch[r][k] + touch[nb][k]
                        cost = (
                            ovh
                            + op.strip_nodes(padded[r]) * wire[nb] / bw
                            + op.strip_nodes(padded[r]) / speed[r]
                        )
                        nid = add(
                            "seam", r, t, axis=axis, side=op.side,
                            pos=pos, src=nb, cost=cost, deps=deps,
                        )
                        touch[r][pos].append(nid)
                        touch[nb][pos].append(nid)
                        seam_all[r].append(nid)
                        seam_all[nb].append(nid)

        compute_id: dict[tuple[int, int], int] = {}
        prev_stage_all: dict[int, list[int]] = {}
        fin_deps: dict[int, list[int]] = {r: [] for r in ranks}

        for p in range(nphases):
            # --- compute phase p on every rank whose method has it
            for r in ranks:
                if p >= len(meth[r].exchange_phases):
                    continue
                deps: list[int] = []
                if p == 0:
                    if t > 0:
                        deps.append(prev_finalize[r])
                    if prev_diag is not None:
                        deps.append(prev_diag)
                    if r in prev_ckpt:
                        deps.append(prev_ckpt[r])
                    deps += seam_all[r]
                else:
                    if (r, p - 1) in compute_id:
                        deps.append(compute_id[(r, p - 1)])
                    deps += prev_stage_all.get(r, [])
                compute_id[(r, p)] = add(
                    "compute", r, t, phase=p,
                    cost=compute_cost(r, p), deps=deps,
                )

            # --- ghost fills of phase p, axis by axis
            touch = {r: [[] for _ in sweep] for r in ranks}
            stage_all: dict[int, list[int]] = {r: [] for r in ranks}
            for pos, axis in enumerate(sweep):
                for r in ranks:
                    m = meth[r]
                    fields = (
                        m.exchange_phases[p]
                        if p < len(m.exchange_phases) else ()
                    )
                    if not fields:
                        continue
                    for op in plans[r].ops_for_axis(axis):
                        if op.kind == "hold":
                            continue
                        if (
                            op.kind == "recv"
                            and (r, op.neighbor_rank) in conv
                        ):
                            continue
                        deps = [compute_id[(r, p)]]
                        for k in range(pos):
                            deps += touch[r][k]
                        if op.kind == "recv":
                            nb = op.neighbor_rank
                            if (nb, p) in compute_id:
                                deps.append(compute_id[(nb, p)])
                            for k in range(pos):
                                deps += touch[nb][k]
                            nid = add(
                                "exchange", r, t, phase=p, axis=axis,
                                side=op.side, pos=pos, src=nb,
                                cost=fill_cost(r, op, len(fields)),
                                deps=deps,
                            )
                            if nb != r:
                                touch[nb][pos].append(nid)
                                stage_all[nb].append(nid)
                        else:
                            nid = add(
                                "replicate", r, t, phase=p, axis=axis,
                                side=op.side, pos=pos,
                                cost=fill_cost(r, op, len(fields)),
                                deps=deps,
                            )
                        touch[r][pos].append(nid)
                        stage_all[r].append(nid)
            prev_stage_all = stage_all
            for r in ranks:
                fin_deps[r] += stage_all[r]

        # --- finalize: after the rank's last own phase and after every
        #     exchange of the step that read or wrote its arrays (the
        #     filter rewrites interior + ring-1 ghosts neighbours read).
        finalize_id: dict[int, int] = {}
        for r in ranks:
            lastp = len(meth[r].exchange_phases) - 1
            finalize_id[r] = add(
                "finalize", r, t,
                cost=finalize_cost(r),
                deps=[compute_id[(r, lastp)]] + fin_deps[r],
            )
        prev_finalize = finalize_id

        # --- periodic global collective: a true barrier
        prev_diag = None
        if diag_every > 0 and (t + 1) % diag_every == 0:
            prev_diag = add(
                "diag", -1, t,
                cost=2 * ovh * max(1, len(ranks) - 1),
                deps=list(finalize_id.values()),
            )

        # --- periodic checkpoints: dumps include ghosts, so the next
        #     step's ghost writes (seam / compute→fills) wait on them.
        prev_ckpt = {}
        if save_every > 0 and (t + 1) % save_every == 0:
            for r in ranks:
                size = n_nodes[r] * n_fields[r] * 8
                prev_ckpt[r] = add(
                    "checkpoint", r, t,
                    cost=size / _CHECKPOINT_BYTES_PER_S,
                    deps=[finalize_id[r]] + (
                        [prev_diag] if prev_diag is not None else []
                    ),
                )

    graph = TaskGraph(
        nodes=nodes,
        meta={
            "steps": int(steps),
            "ranks": ranks,
            "ndim": ndim,
            "blocks": list(decomp.blocks),
            "grid": list(decomp.grid_shape),
            "pad": pad,
            "nphases": nphases,
            "sweep": list(sweep),
            "methods": {str(r): _method_name(m) for r, m in meth.items()},
            "converter_edges": sorted(list(e) for e in conv),
            "diag_every": int(diag_every),
            "save_every": int(save_every),
        },
    )
    graph.validate()
    return graph
