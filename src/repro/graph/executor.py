"""Dependency-driven execution of a planned :class:`TaskGraph`.

The BSP runners advance every subregion in lockstep: compute, barrier,
exchange, barrier — so one slow rank stalls the whole step.  This
executor instead walks the planned DAG with a pool of worker threads
and a ready heap: a node runs the moment its dependencies are done, so
a subregion steps as soon as *its own* ghost strips for step ``t`` are
filled (the paper's first-come-first-served ``select`` loop, taken to
its limit), and fast ranks run ahead of slow ones by however much the
neighbour-only dependency structure allows (one phase of lag per hop).

Because the planner's dependency edges encode the complete read/write
hazard analysis of the axis-sweep exchange, *any* execution order the
heap produces performs the identical floating-point operations on the
identical data — runs are bit-for-bit equal to the serial
:class:`~repro.core.Simulation`, which the test suite asserts for FD,
LB and hybrid seam problems at 1–4 ranks.

The executor doubles as the in-process half of the stall story: a
watchdog thread applies the :class:`~repro.graph.stalls.StallDetector`
rule (ready for > N× estimated cost and unfinished) and emits one
``graph:stall:<label>`` trace span per event, so a deliberately slowed
rank shows up by name in the Chrome trace instead of as anonymous
barrier waits.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable, Sequence

from .plan import TaskGraph
from .stalls import STALL_FACTOR, STALL_FLOOR, StallDetector, StallEvent

__all__ = ["GraphExecutor"]

_WATCHDOG_POLL = 0.01


class GraphExecutor:
    """Run a planned graph on a serial :class:`~repro.core.Simulation`.

    Parameters
    ----------
    sim:
        A freshly built (or checkpoint-resumed) serial
        :class:`~repro.core.Simulation`; the executor mutates its
        subregions in place and leaves it in exactly the state the
        same number of ``sim.step()`` calls would have produced.
    graph:
        The plan for this decomposition/method set, from
        :func:`repro.graph.plan_graph`.
    n_workers:
        Worker threads; defaults to one per subregion (like the
        threaded runner — NumPy kernels release the GIL, so threads
        genuinely overlap).
    delay_fn, step_delays:
        Synthetic-load injection, applied at each rank's first compute
        phase of each step: ``step_delays[rank]`` seconds every step
        (the distributed runtime's imbalance knob) plus
        ``delay_fn(rank, step)`` seconds (the overlap bench's jitter
        schedule).  Delays burn wall time only — results are
        unaffected.
    stall_factor, stall_floor:
        The stall rule: a node ready for more than
        ``factor × cost + floor`` seconds without finishing is
        reported (and traced as ``graph:stall:<label>``).
    checkpoint_dir:
        Where ``checkpoint`` nodes write their per-rank dumps; when
        ``None`` checkpoint nodes are no-ops (the in-process runners
        never checkpoint mid-run either).
    """

    def __init__(
        self,
        sim,
        graph: TaskGraph,
        *,
        n_workers: int | None = None,
        tracer=None,
        delay_fn: Callable[[int, int], float] | None = None,
        step_delays: Sequence[float] | None = None,
        stall_factor: float = STALL_FACTOR,
        stall_floor: float = STALL_FLOOR,
        diag_algorithm: str = "tree",
        checkpoint_dir=None,
    ) -> None:
        graph.validate()
        self.sim = sim
        self.graph = graph
        self.tracer = sim.tracer if tracer is None else tracer
        self.delay_fn = delay_fn
        self.step_delays = list(step_delays or [])
        self.diag_algorithm = diag_algorithm
        self.checkpoint_dir = checkpoint_dir
        self.diagnostics: list = []
        self.stalls: list[StallEvent] = []
        self._detector = StallDetector(factor=stall_factor,
                                       floor=stall_floor)
        subs = sim.subs
        self._sub = {s.block.rank: s for s in subs}
        self._method = {
            s.block.rank: m for s, m in zip(subs, sim.methods)
        }
        self._tid = {s.block.rank: i for i, s in enumerate(subs)}
        ranks = graph.meta.get("ranks", [])
        if list(self._sub) != [int(r) for r in ranks]:
            raise ValueError(
                f"graph planned for ranks {ranks}, simulation has "
                f"{list(self._sub)}"
            )
        if int(graph.meta.get("nphases", -1)) != sim._nphases:
            raise ValueError("graph phase count does not match methods")
        # (rank, axis, side) -> EdgeOp, for fill/seam node lookup
        self._ops = {
            (rank, op.axis, op.side): op
            for rank, plan in sim.exchanger.plans.items()
            for op in plan.ops
        }
        self._fields = sim._phase_fields  # per-phase {rank: fields}
        self.n_workers = (
            max(1, int(n_workers)) if n_workers else len(subs)
        )
        # precomputed span names (allocation-free traced hot path)
        nphases = sim._nphases
        self._span = {
            "compute": tuple(f"compute:{p}" for p in range(nphases)),
            "exchange": tuple(f"exchange:{p}" for p in range(nphases)),
        }

    # ------------------------------------------------------------------
    # node execution (called from worker threads; the planner's deps
    # guarantee exclusive access to everything each node writes)
    # ------------------------------------------------------------------
    def _execute(self, node) -> None:
        kind = node.kind
        tracer = self.tracer
        if kind == "compute":
            rank = node.rank
            if node.phase == 0:
                delay = (
                    self.step_delays[rank]
                    if rank < len(self.step_delays) else 0.0
                )
                if self.delay_fn is not None:
                    delay += self.delay_fn(rank, node.step)
                if delay > 0:
                    time.sleep(delay)
            t0 = tracer.begin()
            self._method[rank].compute_phase(self._sub[rank], node.phase)
            tracer.end(self._span["compute"][node.phase], t0,
                       step=node.step, tid=self._tid[rank])
        elif kind in ("exchange", "replicate"):
            rank = node.rank
            op = self._ops[(rank, node.axis, node.side)]
            t0 = tracer.begin()
            self.sim.exchanger.apply_op(
                rank, op, self._fields[node.phase][rank]
            )
            tracer.end(self._span["exchange"][node.phase], t0,
                       step=node.step, tid=self._tid[rank])
        elif kind == "seam":
            rank = node.rank
            op = self._ops[(rank, node.axis, node.side)]
            t0 = tracer.begin()
            self.sim.exchanger.apply_seam(rank, op)
            tracer.end("seam:0", t0, step=node.step,
                       tid=self._tid[rank])
        elif kind == "finalize":
            rank = node.rank
            sub = self._sub[rank]
            t0 = tracer.begin()
            self._method[rank].finalize_step(sub)
            tracer.end("finalize:0", t0, step=node.step,
                       tid=self._tid[rank])
            sub.step += 1
        elif kind == "diag":
            from ..distrib.diagnostics import serial_diagnostics

            t0 = tracer.begin()
            rec = serial_diagnostics(
                self.sim.subs, algorithm=self.diag_algorithm
            )
            tracer.end("collective:diag", t0, step=node.step)
            self.diagnostics.append(rec)
        elif kind == "checkpoint":
            if self.checkpoint_dir is not None:
                from ..distrib.dumpfile import dump_path, save_dump

                t0 = tracer.begin()
                save_dump(
                    self._sub[node.rank],
                    dump_path(self.checkpoint_dir, node.rank),
                )
                tracer.end("checkpoint:0", t0, step=node.step,
                           tid=self._tid[node.rank])
        else:  # pragma: no cover - planner and executor share NODE_KINDS
            raise ValueError(f"unknown node kind {kind!r}")

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute every node; returns when the graph is drained.

        Raises the first node error (remaining work is abandoned, like
        the threaded runner's error path).
        """
        nodes = self.graph.nodes
        if not nodes:
            return
        indeg = [len(n.deps) for n in nodes]
        dependents: list[list[int]] = [[] for _ in nodes]
        for n in nodes:
            for d in n.deps:
                dependents[d].append(n.id)
        lock = threading.Lock()
        cond = threading.Condition(lock)
        ready: list[int] = []
        now = time.monotonic()
        for n in nodes:
            if indeg[n.id] == 0:
                heapq.heappush(ready, n.id)
                self._detector.node_ready(n, now)
        state = {"left": len(nodes), "error": None}

        def worker() -> None:
            while True:
                with cond:
                    while not ready and state["left"] > 0 \
                            and state["error"] is None:
                        cond.wait()
                    if state["left"] <= 0 or state["error"] is not None:
                        cond.notify_all()
                        return
                    nid = heapq.heappop(ready)
                try:
                    self._execute(nodes[nid])
                except BaseException as exc:  # propagate to run()
                    with cond:
                        if state["error"] is None:
                            state["error"] = exc
                        cond.notify_all()
                    return
                with cond:
                    self._detector.node_done(nid)
                    state["left"] -= 1
                    t_now = time.monotonic()
                    for dep_id in dependents[nid]:
                        indeg[dep_id] -= 1
                        if indeg[dep_id] == 0:
                            heapq.heappush(ready, dep_id)
                            self._detector.node_ready(nodes[dep_id], t_now)
                    cond.notify_all()

        def watchdog() -> None:
            while True:
                with cond:
                    if state["left"] <= 0 or state["error"] is not None:
                        return
                    fresh = self._detector.check(time.monotonic())
                    for event in fresh:
                        self.stalls.append(event)
                        if self.tracer.enabled:
                            self.tracer.add_span(
                                f"graph:stall:{event.label}",
                                self.tracer.begin(), 0.0,
                                step=event.step,
                                tid=self._tid.get(event.rank, 0),
                            )
                    cond.wait(timeout=_WATCHDOG_POLL)

        threads = [
            threading.Thread(target=worker, name=f"repro-graph{i}",
                             daemon=True)
            for i in range(self.n_workers)
        ]
        dog = threading.Thread(target=watchdog, name="repro-graph-dog",
                               daemon=True)
        for t in threads:
            t.start()
        dog.start()
        for t in threads:
            t.join()
        dog.join()
        if state["error"] is not None:
            raise state["error"]
