"""Wire protocol for boundary exchange over TCP/IP (paper §4.2).

The paper's processes communicate padded areas through sockets with the
TCP/IP protocol, which "behaves as if there are two first-in-first-out
channels for writing data in each direction between two processes".
Messages are length-prefixed frames: a fixed header identifying the
sender, integration step, exchange phase, axis and side, followed by the
raw bytes of the strip arrays (all fields of the phase concatenated in
declaration order).  The receiver knows every strip's shape from its own
exchange plan, so no shape metadata travels.

Because communication only loosely synchronizes neighbours (App. A),
frames for a *future* step can arrive before the receiver needs them;
the receive side therefore tags frames with ``(step, phase, axis)`` and
buffers out-of-order arrivals.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass

__all__ = [
    "MAGIC",
    "MSG_HELLO",
    "MSG_DATA",
    "Header",
    "pack_frame",
    "recv_frame",
    "send_all",
    "ProtocolError",
]

MAGIC = b"SKRD"
MSG_HELLO = 1  # handshake: "I am rank R" (paper's port-file handshake)
MSG_DATA = 2   # boundary strip payload

#: magic, version, msg_type, sender_rank, step, phase, axis, side, payload_len
_HEADER = struct.Struct(">4sBBiqBBbQ")
HEADER_SIZE = _HEADER.size
PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """Malformed or unexpected frame."""


@dataclass(frozen=True)
class Header:
    """Decoded frame header."""

    msg_type: int
    sender: int
    step: int
    phase: int
    axis: int
    side: int
    payload_len: int

    def key(self) -> tuple[int, int, int, int, int]:
        """Buffering key for out-of-order delivery."""
        return (self.step, self.phase, self.axis, self.side, self.sender)


def pack_frame(
    msg_type: int,
    sender: int,
    payload: bytes = b"",
    step: int = 0,
    phase: int = 0,
    axis: int = 0,
    side: int = 0,
) -> bytes:
    """Serialize a frame (header + payload) to bytes."""
    header = _HEADER.pack(
        MAGIC,
        PROTOCOL_VERSION,
        msg_type,
        sender,
        step,
        phase,
        axis,
        side,
        len(payload),
    )
    return header + payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise on EOF."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[Header, bytes]:
    """Blocking read of one complete frame from a socket."""
    raw = _recv_exact(sock, HEADER_SIZE)
    magic, version, msg_type, sender, step, phase, axis, side, plen = (
        _HEADER.unpack(raw)
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version} != {PROTOCOL_VERSION}")
    payload = _recv_exact(sock, plen) if plen else b""
    return (
        Header(msg_type, sender, step, phase, axis, side, plen),
        payload,
    )


def send_all(sock: socket.socket, data: bytes) -> None:
    """Send a complete buffer (TCP guarantees ordering and delivery)."""
    sock.sendall(data)
