"""TCP channel management between parallel processes (paper §4.2, App. C).

Opening a channel follows the paper's handshake: every process first
binds a listening socket, writes its port into the shared file, then
reads the file to find its neighbours.  For each neighbour pair the
lower rank accepts and the higher rank connects (TCP's listen backlog
makes this deadlock-free in any order); the connector identifies itself
with a HELLO frame.  Channels stay open for the whole computation except
during migration, when they are closed and re-opened under the next
registry generation (§5).

Receiving is **first-come-first-served** using ``select`` exactly as
App. C recommends: frames are consumed from whichever neighbour has data
ready and buffered by ``(step, phase, axis, side, sender)`` until the
caller needs them — this is what lets computation proceed in processes
that are not delayed.  A ``strict_order`` mode implements the
alternative the appendix analyses (drain neighbours in a fixed order)
so its inferior behaviour can be demonstrated.

**Fault hardening.**  Connection-level failures surface as a typed
:class:`ChannelError` carrying rank, peer and generation — never a raw
``ConnectionError``/``BrokenPipeError`` without context.  Before one is
raised, the channel set tries to *recover* the link with bounded
exponential backoff, keeping the original handshake roles: the higher
rank re-connects through the registry, the lower rank re-accepts on its
still-open listener (which is why ``recv_data`` keeps the listener in
its ``select`` set).  An optional fault injector
(:mod:`repro.chaos.inject`) hooks the send path to drop, duplicate,
delay or truncate frames, or break links outright — the failure modes
the recovery paths are tested against.
"""

from __future__ import annotations

import select
import socket
import time
from typing import Iterable, Mapping

from ..trace import NULL_TRACER
from .portfile import PortRegistry
from .protocol import (
    MSG_DATA,
    MSG_HELLO,
    Header,
    ProtocolError,
    pack_frame,
    recv_frame,
    send_all,
)

__all__ = ["ChannelSet", "ChannelError"]

_SNDBUF = 1 << 20  # generous kernel buffers keep small-strip sends non-blocking


class ChannelError(ConnectionError):
    """A channel to a peer failed beyond recovery.

    Wraps the raw ``ConnectionError``/``BrokenPipeError``/``OSError``
    the socket layer raises, adding the context a monitor log needs to
    be actionable: *whose* channel, to *which* peer, under *which*
    registry generation.
    """

    def __init__(self, rank: int, peer: int, generation: int, detail: str):
        self.rank = rank
        self.peer = peer
        self.generation = generation
        super().__init__(
            f"rank {rank}: channel to peer {peer} "
            f"(generation {generation}): {detail}"
        )


class ChannelSet:
    """All TCP channels of one parallel process."""

    def __init__(
        self,
        rank: int,
        neighbor_ranks: Iterable[int],
        registry: PortRegistry,
        host: str = "127.0.0.1",
        reconnect_attempts: int = 5,
        reconnect_base: float = 0.05,
        hangup_grace: float = 2.0,
    ) -> None:
        self.rank = rank
        self.neighbors = sorted(set(neighbor_ranks))
        if rank in self.neighbors:
            raise ValueError(f"rank {rank} cannot neighbour itself over TCP")
        self.registry = registry
        self.host = host
        self.generation = -1
        #: bounded exponential backoff for link recovery: attempt ``k``
        #: waits ``reconnect_base * 2**k`` seconds, ``reconnect_attempts``
        #: attempts total before a :class:`ChannelError` is raised.
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_base = reconnect_base
        #: how long a receiver waits for a hung-up peer that still owes
        #: data to re-connect before giving up with a ChannelError.
        self.hangup_grace = hangup_grace
        #: successful link recoveries (visible in worker logs/benches)
        self.reconnects = 0
        #: optional :class:`repro.chaos.ChannelFaultInjector` hook
        self.injector = None
        self._socks: dict[int, socket.socket] = {}
        self._listener: socket.socket | None = None
        self._inbox: dict[tuple, bytes] = {}
        self._hung_up: set[int] = set()
        self._hung_at: dict[int, float] = {}
        self._attempts: dict[int, int] = {}
        self._next_try: dict[int, float] = {}
        #: per-peer byte/message accounting (assign a live
        #: :class:`repro.trace.Tracer` to record channel traffic)
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, generation: int, timeout: float = 30.0) -> None:
        """Open channels to every neighbour under ``generation``."""
        if self._socks:
            raise RuntimeError("channels already open")
        self.generation = generation
        listener = socket.create_server((self.host, 0), backlog=16)
        self._listener = listener
        port = listener.getsockname()[1]
        self.registry.register(generation, self.rank, self.host, port)

        lower = [n for n in self.neighbors if n < self.rank]
        higher = [n for n in self.neighbors if n > self.rank]

        # Connect to lower-ranked neighbours (their listeners are bound
        # before they register, so the connect cannot race the bind).
        if lower:
            addrs = self.registry.wait_for(
                generation, set(lower), timeout=timeout
            )
            for n in lower:
                try:
                    s = socket.create_connection(addrs[n], timeout=timeout)
                    self._setup(s)
                    send_all(s, pack_frame(MSG_HELLO, self.rank))
                except OSError as exc:
                    raise ChannelError(
                        self.rank, n, generation, f"connect failed: {exc}"
                    ) from exc
                self._socks[n] = s

        # Accept connections from higher-ranked neighbours.
        deadline = time.monotonic() + timeout
        pending = set(higher)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: neighbours {sorted(pending)} never "
                    f"connected (generation {generation})"
                )
            ready, _, _ = select.select([listener], [], [], remaining)
            if not ready:
                continue
            s, _ = listener.accept()
            self._setup(s)
            header, _ = recv_frame(s)
            if header.msg_type != MSG_HELLO:
                raise ProtocolError(
                    f"expected HELLO, got type {header.msg_type}"
                )
            if header.sender not in pending and header.sender in self._socks:
                raise ProtocolError(
                    f"duplicate connection from rank {header.sender}"
                )
            # A sender outside ``pending`` is a fast peer establishing a
            # collective (non-axis) link early — keep it (see
            # ``ensure_links``).
            pending.discard(header.sender)
            self._socks[header.sender] = s

    # ------------------------------------------------------------------
    # on-demand links (collective topology)
    # ------------------------------------------------------------------
    def has_link(self, rank: int) -> bool:
        """Whether a channel to ``rank`` is currently open."""
        return rank in self._socks

    def ensure_links(self, peers: Iterable[int], timeout: float = 30.0) -> None:
        """Open channels to non-neighbour peers on demand.

        The collective layer talks along tree or ring edges that the
        grid decomposition never created.  The handshake is the same as
        :meth:`open` — the higher rank connects, the lower rank accepts
        on its (still listening) socket — against the *current*
        registry generation, so links re-establish lazily after a
        migration re-open.  Link sets are symmetric: both ends of an
        edge call this at the same point of the same collective
        schedule, so the pairing cannot deadlock.  While accepting, a
        HELLO from any other early peer is kept, not rejected.
        """
        missing = [p for p in set(peers) if p not in self._socks]
        if not missing:
            return
        if self._listener is None:
            raise RuntimeError("channels are closed")
        if any(p == self.rank for p in missing):
            raise ValueError(f"rank {self.rank} cannot link to itself")
        lower = [p for p in missing if p < self.rank]
        if lower:
            addrs = self.registry.wait_for(
                self.generation, set(lower), timeout=timeout
            )
            for p in lower:
                s = socket.create_connection(addrs[p], timeout=timeout)
                self._setup(s)
                send_all(s, pack_frame(MSG_HELLO, self.rank))
                self._socks[p] = s
        pending = {p for p in missing if p > self.rank}
        deadline = time.monotonic() + timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: peers {sorted(pending)} never "
                    f"connected (generation {self.generation})"
                )
            ready, _, _ = select.select([self._listener], [], [], remaining)
            if not ready:
                continue
            s, _ = self._listener.accept()
            self._setup(s)
            header, _ = recv_frame(s)
            if header.msg_type != MSG_HELLO:
                raise ProtocolError(
                    f"expected HELLO, got type {header.msg_type}"
                )
            if header.sender in self._socks:
                raise ProtocolError(
                    f"duplicate connection from rank {header.sender}"
                )
            self._socks[header.sender] = s
            pending.discard(header.sender)

    @staticmethod
    def _setup(s: socket.socket) -> None:
        s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, _SNDBUF)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _SNDBUF)

    def close(self) -> None:
        """Close every channel (done before a migration pause, §5.1)."""
        for s in self._socks.values():
            try:
                s.close()
            except OSError:  # pragma: no cover - best effort
                pass
        self._socks.clear()
        self._hung_up.clear()
        self._hung_at.clear()
        self._attempts.clear()
        self._next_try.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        # Buffered future-step frames remain valid across a re-open: the
        # sender will not retransmit them.

    # ------------------------------------------------------------------
    # link recovery (bounded exponential backoff, roles preserved)
    # ------------------------------------------------------------------
    def break_link(self, peer: int, drain: bool = True) -> None:
        """Close the channel to ``peer`` (fault injection / dead link).

        ``drain`` first moves any frames already queued on our side of
        the socket into the out-of-order inbox, so an *orderly* break
        loses no data — the paths that close a socket the OS already
        broke pass ``drain=False``.
        """
        sock = self._socks.pop(peer, None)
        if sock is None:
            return
        if drain:
            self._drain(sock)
        try:
            sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def _drain(self, sock: socket.socket) -> None:
        """Buffer every frame already readable on a socket."""
        try:
            while True:
                ready, _, _ = select.select([sock], [], [], 0.05)
                if not ready:
                    return
                header, payload = recv_frame(sock)
                if header.msg_type != MSG_DATA:
                    continue
                self._inbox[header.key()] = payload
                self.tracer.count(header.sender, len(payload), sent=False)
        except (ProtocolError, OSError):
            return

    def _adopt(self, peer: int, sock: socket.socket) -> None:
        """Install a freshly established socket as the live link."""
        old = self._socks.pop(peer, None)
        if old is not None:
            self._drain(old)
            try:
                old.close()
            except OSError:  # pragma: no cover - best effort
                pass
        self._socks[peer] = sock
        self._hung_up.discard(peer)
        self._hung_at.pop(peer, None)
        self._attempts.pop(peer, None)
        self._next_try.pop(peer, None)

    def _connect_to(self, peer: int, timeout: float) -> None:
        """Re-connect to a lower-ranked peer (we keep the connector role)."""
        addrs = self.registry.wait_for(
            self.generation, {peer}, timeout=timeout
        )
        s = socket.create_connection(addrs[peer], timeout=max(timeout, 0.1))
        self._setup(s)
        send_all(s, pack_frame(MSG_HELLO, self.rank))
        self._adopt(peer, s)
        self.reconnects += 1

    def _accept_reconnect(self) -> int | None:
        """Accept one pending connection on the listener (any peer)."""
        assert self._listener is not None
        s, _ = self._listener.accept()
        self._setup(s)
        try:
            header, _ = recv_frame(s)
        except (ProtocolError, OSError):
            s.close()
            return None
        if header.msg_type != MSG_HELLO:
            s.close()
            return None
        self._adopt(header.sender, s)
        return header.sender

    def _await_reconnect(self, peer: int, wait: float) -> None:
        """Wait for a higher-ranked peer to re-connect (acceptor role)."""
        assert self._listener is not None
        deadline = time.monotonic() + wait
        while peer not in self._socks:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"peer {peer} did not reconnect")
            ready, _, _ = select.select([self._listener], [], [], remaining)
            if ready:
                self._accept_reconnect()

    def _send_frame(self, to: int, data: bytes) -> None:
        """Transmit one packed frame, recovering the link if needed."""
        sock = self._socks.get(to)
        last: Exception | None = None
        if sock is not None:
            try:
                send_all(sock, data)
                return
            except OSError as exc:
                last = exc
                self.break_link(to, drain=False)
        delay = self.reconnect_base
        for _ in range(self.reconnect_attempts):
            try:
                if to < self.rank:
                    self._connect_to(to, timeout=delay)
                else:
                    self._await_reconnect(to, wait=delay)
                send_all(self._socks[to], data)
                return
            except (OSError, TimeoutError) as exc:
                last = exc
                self.break_link(to, drain=False)
                time.sleep(delay)
                delay *= 2
        raise ChannelError(
            self.rank, to, self.generation,
            f"send failed after {self.reconnect_attempts} reconnect "
            f"attempts: {last!r}",
        ) from last

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send_data(
        self,
        to: int,
        payload: bytes,
        step: int,
        phase: int,
        axis: int,
        side: int,
    ) -> None:
        """Send one boundary-strip frame to a neighbour."""
        frames: Iterable[tuple] = ((to, payload, step, phase, axis, side),)
        if self.injector is not None and self.injector.enabled:
            frames, breaks = self.injector.filter_send(
                (to, payload, step, phase, axis, side)
            )
            for peer in breaks:
                self.break_link(peer)
        for t, pl, st, ph, ax, sd in frames:
            frame = pack_frame(
                MSG_DATA, self.rank, pl,
                step=st, phase=ph, axis=ax, side=sd,
            )
            self._send_frame(t, frame)
            self.tracer.count(t, len(pl))

    def recv_data(
        self,
        keys: set[tuple[int, int, int, int, int]],
        timeout: float = 60.0,
        strict_order: bool = False,
    ) -> dict[tuple, bytes]:
        """Collect the payloads for every requested key.

        ``keys`` are ``(step, phase, axis, side, sender)`` tuples.  In the
        default first-come-first-served mode, ``select`` picks whichever
        neighbour has data; in ``strict_order`` mode neighbours are
        drained in ascending rank order (the App. C ablation).

        A peer that hangs up while still owing data is given a chance to
        re-establish the link (it may have broken the connection on
        purpose — see :meth:`break_link` — or be re-connecting after a
        transient error): lower-ranked peers are re-dialled with backoff,
        higher-ranked peers are awaited on the listener, bounded by
        ``hangup_grace``; then a :class:`ChannelError` names the peer.
        """
        out: dict[tuple, bytes] = {}
        for key in list(keys):
            if key in self._inbox:
                out[key] = self._inbox.pop(key)
        missing = keys - out.keys()
        deadline = time.monotonic() + timeout
        while missing:
            # A peer that has finished its run closes its end; that is
            # only an error if we still expect data from it (all frames
            # sent before the close are delivered first by TCP).
            self._recover_hung_up({k[4] for k in missing})
            if strict_order:
                want = sorted(k[4] for k in missing)[0]
                socks = (
                    [self._socks[want]] if want in self._socks else []
                )
            else:
                socks = [
                    s for r, s in self._socks.items()
                    if r not in self._hung_up
                ]
            # The listener stays in the select set so a peer
            # re-connecting after a link break is accepted mid-receive.
            if self._listener is not None:
                socks.append(self._listener)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: still waiting for {sorted(missing)}"
                )
            ready, _, _ = select.select(socks, [], [], min(remaining, 0.25))
            by_rank = {s: r for r, s in self._socks.items()}
            for s in ready:
                if s is self._listener:
                    self._accept_reconnect()
                    continue
                try:
                    header, payload = recv_frame(s)
                except ProtocolError:
                    peer = by_rank[s]
                    self._hung_up.add(peer)
                    self._hung_at.setdefault(peer, time.monotonic())
                    continue
                if header.msg_type != MSG_DATA:
                    raise ProtocolError(
                        f"unexpected mid-run frame type {header.msg_type}"
                    )
                self.tracer.count(header.sender, len(payload), sent=False)
                key = header.key()
                if key in missing:
                    out[key] = payload
                    missing.discard(key)
                else:
                    # A neighbour running ahead (App. A) — buffer it.
                    self._inbox[key] = payload
            for key in list(missing):
                if key in self._inbox:
                    out[key] = self._inbox.pop(key)
                    missing.discard(key)
        return out

    def _recover_hung_up(self, owed: set[int]) -> None:
        """Try to restore hung-up links we still expect data from."""
        now = time.monotonic()
        for peer in sorted(self._hung_up & owed):
            since = self._hung_at.setdefault(peer, now)
            if peer < self.rank:
                # Connector role: re-dial with bounded backoff.
                if now < self._next_try.get(peer, 0.0):
                    continue
                tries = self._attempts.get(peer, 0)
                if tries >= self.reconnect_attempts:
                    raise ChannelError(
                        self.rank, peer, self.generation,
                        f"peer hung up and {tries} reconnect attempts "
                        f"failed while data is still outstanding",
                    )
                self._attempts[peer] = tries + 1
                self._next_try[peer] = (
                    now + self.reconnect_base * (2 ** tries)
                )
                try:
                    self._connect_to(peer, timeout=0.5)
                except (OSError, TimeoutError):
                    continue
            elif now - since > self.hangup_grace:
                # Acceptor role: the listener sits in the select set;
                # all we can do is bound the wait.
                raise ChannelError(
                    self.rank, peer, self.generation,
                    f"peer hung up and never reconnected within "
                    f"{self.hangup_grace:.1f}s while data is still "
                    f"outstanding",
                )
