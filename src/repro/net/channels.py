"""TCP channel management between parallel processes (paper §4.2, App. C).

Opening a channel follows the paper's handshake: every process first
binds a listening socket, writes its port into the shared file, then
reads the file to find its neighbours.  For each neighbour pair the
lower rank accepts and the higher rank connects (TCP's listen backlog
makes this deadlock-free in any order); the connector identifies itself
with a HELLO frame.  Channels stay open for the whole computation except
during migration, when they are closed and re-opened under the next
registry generation (§5).

Receiving is **first-come-first-served** using ``select`` exactly as
App. C recommends: frames are consumed from whichever neighbour has data
ready and buffered by ``(step, phase, axis, side, sender)`` until the
caller needs them — this is what lets computation proceed in processes
that are not delayed.  A ``strict_order`` mode implements the
alternative the appendix analyses (drain neighbours in a fixed order)
so its inferior behaviour can be demonstrated.
"""

from __future__ import annotations

import select
import socket
import time
from typing import Iterable, Mapping

from ..trace import NULL_TRACER
from .portfile import PortRegistry
from .protocol import (
    MSG_DATA,
    MSG_HELLO,
    Header,
    ProtocolError,
    pack_frame,
    recv_frame,
    send_all,
)

__all__ = ["ChannelSet"]

_SNDBUF = 1 << 20  # generous kernel buffers keep small-strip sends non-blocking


class ChannelSet:
    """All TCP channels of one parallel process."""

    def __init__(
        self,
        rank: int,
        neighbor_ranks: Iterable[int],
        registry: PortRegistry,
        host: str = "127.0.0.1",
    ) -> None:
        self.rank = rank
        self.neighbors = sorted(set(neighbor_ranks))
        if rank in self.neighbors:
            raise ValueError(f"rank {rank} cannot neighbour itself over TCP")
        self.registry = registry
        self.host = host
        self.generation = -1
        self._socks: dict[int, socket.socket] = {}
        self._listener: socket.socket | None = None
        self._inbox: dict[tuple, bytes] = {}
        self._hung_up: set[int] = set()
        #: per-peer byte/message accounting (assign a live
        #: :class:`repro.trace.Tracer` to record channel traffic)
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, generation: int, timeout: float = 30.0) -> None:
        """Open channels to every neighbour under ``generation``."""
        if self._socks:
            raise RuntimeError("channels already open")
        self.generation = generation
        listener = socket.create_server((self.host, 0), backlog=16)
        self._listener = listener
        port = listener.getsockname()[1]
        self.registry.register(generation, self.rank, self.host, port)

        lower = [n for n in self.neighbors if n < self.rank]
        higher = [n for n in self.neighbors if n > self.rank]

        # Connect to lower-ranked neighbours (their listeners are bound
        # before they register, so the connect cannot race the bind).
        if lower:
            addrs = self.registry.wait_for(
                generation, set(lower), timeout=timeout
            )
            for n in lower:
                s = socket.create_connection(addrs[n], timeout=timeout)
                self._setup(s)
                send_all(s, pack_frame(MSG_HELLO, self.rank))
                self._socks[n] = s

        # Accept connections from higher-ranked neighbours.
        deadline = time.monotonic() + timeout
        pending = set(higher)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: neighbours {sorted(pending)} never "
                    f"connected (generation {generation})"
                )
            ready, _, _ = select.select([listener], [], [], remaining)
            if not ready:
                continue
            s, _ = listener.accept()
            self._setup(s)
            header, _ = recv_frame(s)
            if header.msg_type != MSG_HELLO:
                raise ProtocolError(
                    f"expected HELLO, got type {header.msg_type}"
                )
            if header.sender not in pending and header.sender in self._socks:
                raise ProtocolError(
                    f"duplicate connection from rank {header.sender}"
                )
            # A sender outside ``pending`` is a fast peer establishing a
            # collective (non-axis) link early — keep it (see
            # ``ensure_links``).
            pending.discard(header.sender)
            self._socks[header.sender] = s

    # ------------------------------------------------------------------
    # on-demand links (collective topology)
    # ------------------------------------------------------------------
    def has_link(self, rank: int) -> bool:
        """Whether a channel to ``rank`` is currently open."""
        return rank in self._socks

    def ensure_links(self, peers: Iterable[int], timeout: float = 30.0) -> None:
        """Open channels to non-neighbour peers on demand.

        The collective layer talks along tree or ring edges that the
        grid decomposition never created.  The handshake is the same as
        :meth:`open` — the higher rank connects, the lower rank accepts
        on its (still listening) socket — against the *current*
        registry generation, so links re-establish lazily after a
        migration re-open.  Link sets are symmetric: both ends of an
        edge call this at the same point of the same collective
        schedule, so the pairing cannot deadlock.  While accepting, a
        HELLO from any other early peer is kept, not rejected.
        """
        missing = [p for p in set(peers) if p not in self._socks]
        if not missing:
            return
        if self._listener is None:
            raise RuntimeError("channels are closed")
        if any(p == self.rank for p in missing):
            raise ValueError(f"rank {self.rank} cannot link to itself")
        lower = [p for p in missing if p < self.rank]
        if lower:
            addrs = self.registry.wait_for(
                self.generation, set(lower), timeout=timeout
            )
            for p in lower:
                s = socket.create_connection(addrs[p], timeout=timeout)
                self._setup(s)
                send_all(s, pack_frame(MSG_HELLO, self.rank))
                self._socks[p] = s
        pending = {p for p in missing if p > self.rank}
        deadline = time.monotonic() + timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: peers {sorted(pending)} never "
                    f"connected (generation {self.generation})"
                )
            ready, _, _ = select.select([self._listener], [], [], remaining)
            if not ready:
                continue
            s, _ = self._listener.accept()
            self._setup(s)
            header, _ = recv_frame(s)
            if header.msg_type != MSG_HELLO:
                raise ProtocolError(
                    f"expected HELLO, got type {header.msg_type}"
                )
            if header.sender in self._socks:
                raise ProtocolError(
                    f"duplicate connection from rank {header.sender}"
                )
            self._socks[header.sender] = s
            pending.discard(header.sender)

    @staticmethod
    def _setup(s: socket.socket) -> None:
        s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, _SNDBUF)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _SNDBUF)

    def close(self) -> None:
        """Close every channel (done before a migration pause, §5.1)."""
        for s in self._socks.values():
            try:
                s.close()
            except OSError:  # pragma: no cover - best effort
                pass
        self._socks.clear()
        self._hung_up.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        # Buffered future-step frames remain valid across a re-open: the
        # sender will not retransmit them.

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send_data(
        self,
        to: int,
        payload: bytes,
        step: int,
        phase: int,
        axis: int,
        side: int,
    ) -> None:
        """Send one boundary-strip frame to a neighbour."""
        frame = pack_frame(
            MSG_DATA,
            self.rank,
            payload,
            step=step,
            phase=phase,
            axis=axis,
            side=side,
        )
        send_all(self._socks[to], frame)
        self.tracer.count(to, len(payload))

    def recv_data(
        self,
        keys: set[tuple[int, int, int, int, int]],
        timeout: float = 60.0,
        strict_order: bool = False,
    ) -> dict[tuple, bytes]:
        """Collect the payloads for every requested key.

        ``keys`` are ``(step, phase, axis, side, sender)`` tuples.  In the
        default first-come-first-served mode, ``select`` picks whichever
        neighbour has data; in ``strict_order`` mode neighbours are
        drained in ascending rank order (the App. C ablation).
        """
        out: dict[tuple, bytes] = {}
        for key in list(keys):
            if key in self._inbox:
                out[key] = self._inbox.pop(key)
        missing = keys - out.keys()
        deadline = time.monotonic() + timeout
        by_rank = {s: r for r, s in self._socks.items()}
        while missing:
            # A peer that has finished its run closes its end; that is
            # only an error if we still expect data from it (all frames
            # sent before the close are delivered first by TCP).
            dead = self._hung_up & {k[4] for k in missing}
            if dead:
                raise ProtocolError(
                    f"rank {self.rank}: neighbours {sorted(dead)} hung up "
                    f"while {sorted(missing)} still outstanding"
                )
            if strict_order:
                want = sorted(k[4] for k in missing)[0]
                socks = [self._socks[want]]
            else:
                socks = [
                    s for r, s in self._socks.items()
                    if r not in self._hung_up
                ]
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: still waiting for {sorted(missing)}"
                )
            ready, _, _ = select.select(socks, [], [], remaining)
            for s in ready:
                try:
                    header, payload = recv_frame(s)
                except ProtocolError:
                    self._hung_up.add(by_rank[s])
                    continue
                if header.msg_type != MSG_DATA:
                    raise ProtocolError(
                        f"unexpected mid-run frame type {header.msg_type}"
                    )
                self.tracer.count(header.sender, len(payload), sent=False)
                key = header.key()
                if key in missing:
                    out[key] = payload
                    missing.discard(key)
                else:
                    # A neighbour running ahead (App. A) — buffer it.
                    self._inbox[key] = payload
        return out
