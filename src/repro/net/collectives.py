"""Collective communication over the point-to-point machinery.

The paper's processes only ever talk to their grid neighbours; any
cluster-wide quantity (total mass, a NaN blow-up) is invisible until the
dumps are reassembled after the run.  This module adds the primitive
every modern distributed stack is built on: ``barrier``, ``broadcast``,
``reduce``/``allreduce`` (sum/min/max) and ``allgather``, with both
binomial-tree and ring algorithms.

Every collective is expressed exactly once, as a *schedule generator*
yielding ``("send", peer, tag, payload)`` and ``("recv", peer, tag)``
effects.  The same schedules are executed by three different drivers:

* :class:`Communicator` blocks on a channel set — TCP
  (:class:`~repro.net.channels.ChannelSet`), UDP
  (:class:`~repro.net.udp.UdpChannelSet`) or the in-process
  :class:`~repro.net.local.LocalChannelSet` — one driver per rank.
  Links to non-neighbour peers are established on demand through the
  shared-file :class:`~repro.net.portfile.PortRegistry` (the paper's
  handshake, reused for the collective topology).
* :func:`drive_all` co-operatively interleaves all ranks' schedules in
  a single thread — the backend of the serial runner's in-run
  diagnostics.
* :func:`collective_pattern` replays the schedules against a recording
  driver, producing the exact ``(src, dst, nbytes)`` message list the
  cluster simulator charges to its simulated Ethernet bus, extending
  the paper's §6 communication accounting to collective traffic.

Reductions of small payloads are an allgather followed by a
*rank-ordered* local fold, which makes the result bit-for-bit equal to
the serial reduction and identical on every rank regardless of
algorithm and transport.  Payloads larger than ``chunk_bytes`` switch
to combining algorithms (binomial-tree combine, ring
reduce-scatter/allgather) and travel in bounded chunks.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Mapping

import numpy as np

from ..trace import NULL_TRACER

__all__ = [
    "COLLECTIVE_PHASE",
    "TOKEN_PHASE",
    "DEFAULT_CHUNK_BYTES",
    "REDUCE_OPS",
    "Communicator",
    "build_schedule",
    "drive_all",
    "collective_pattern",
]

#: Wire ``phase`` tag of collective frames — far outside the exchange
#: phases (0..1) and the folded pass/axis tags of the ghost exchanger,
#: so collective traffic can never collide with boundary strips in the
#: receivers' out-of-order buffers.
COLLECTIVE_PHASE = 251

#: Wire ``phase`` tag of point-to-point tokens (the message-based
#: save-turn path); keyed by integration step, so no counter state has
#: to survive a migration.
TOKEN_PHASE = 250

#: Payload bytes above which reductions/broadcasts switch to chunked
#: combining transfers.
DEFAULT_CHUNK_BYTES = 1 << 18

#: Reduction operators (applied element-wise, folded in rank order for
#: small payloads).
REDUCE_OPS: Mapping[str, Callable] = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}

_LEN = struct.Struct(">Q")


def _pack_blocks(blocks: Iterable[bytes]) -> bytes:
    """Concatenate length-prefixed byte blocks into one frame."""
    return b"".join(_LEN.pack(len(b)) + b for b in blocks)


def _unpack_blocks(data: bytes) -> list[bytes]:
    """Inverse of :func:`_pack_blocks`."""
    out = []
    off = 0
    while off < len(data):
        (n,) = _LEN.unpack_from(data, off)
        off += _LEN.size
        out.append(data[off : off + n])
        off += n
    return out


# ----------------------------------------------------------------------
# schedule generators
#
# Effects: yield ("send", peer, tag, payload) to transmit, and
# payload = yield ("recv", peer, tag) to receive.  ``tag`` is a small
# integer disambiguating repeated messages between the same pair within
# one operation (ring rounds); peers are absolute ranks.
# ----------------------------------------------------------------------

def _gather_tree(rank: int, n: int, root: int, payload: bytes):
    """Binomial-tree gather of (possibly unequal) payloads to ``root``.

    Returns the list of payloads indexed by rank at the root, ``None``
    elsewhere.  Subtree contributions travel length-prefixed so the
    assembly is unambiguous for variable sizes.
    """
    v = (rank - root) % n
    blocks: dict[int, bytes] = {v: payload}
    mask = 1
    while mask < n:
        if v & mask:
            parent = ((v ^ mask) + root) % n
            data = _pack_blocks(blocks[k] for k in sorted(blocks))
            yield ("send", parent, 0, data)
            return None
        child = v | mask
        if child < n:
            size = min(mask, n - child)
            data = yield ("recv", (child + root) % n, 0)
            parts = _unpack_blocks(data)
            if len(parts) != size:  # pragma: no cover - protocol guard
                raise RuntimeError(
                    f"gather subtree of {child} sent {len(parts)} blocks, "
                    f"expected {size}"
                )
            for i, part in enumerate(parts):
                blocks[child + i] = part
        mask <<= 1
    return [blocks[(r - root) % n] for r in range(n)]


def _bcast_tree(rank: int, n: int, root: int, payload: bytes | None):
    """Binomial-tree broadcast from ``root``; returns the payload."""
    v = (rank - root) % n
    if v:
        low = v & -v
        payload = yield ("recv", ((v - low) + root) % n, 0)
    else:
        low = 1 << n.bit_length()
    mask = low >> 1
    while mask:
        child = v | mask
        if child != v and child < n:
            yield ("send", (child + root) % n, 0, payload)
        mask >>= 1
    return payload


def _allgather_tree(rank: int, n: int, root: int, payload: bytes):
    """Gather to the root, then broadcast the packed result."""
    blocks = yield from _gather_tree(rank, n, root, payload)
    packed = _pack_blocks(blocks) if blocks is not None else None
    packed = yield from _bcast_tree(rank, n, root, packed)
    return _unpack_blocks(packed)


def _allgather_ring(rank: int, n: int, root: int, payload: bytes):
    """Ring allgather: circulate every block ``n - 1`` hops."""
    del root  # the ring has no distinguished rank
    right = (rank + 1) % n
    left = (rank - 1) % n
    blocks: list[bytes | None] = [None] * n
    blocks[rank] = payload
    cur = payload
    for k in range(n - 1):
        yield ("send", right, k, cur)
        cur = yield ("recv", left, k)
        blocks[(rank - 1 - k) % n] = cur
    return blocks


def _bcast_ring(rank: int, n: int, root: int, payload: bytes | None):
    """Chain broadcast around the ring (root -> root+1 -> ...)."""
    v = (rank - root) % n
    if v:
        payload = yield ("recv", (rank - 1) % n, 0)
    if v != n - 1:
        yield ("send", (rank + 1) % n, 0, payload)
    return payload


def _reduce_tree_array(rank, n, root, arr: np.ndarray, op):
    """Combining binomial-tree reduce of equal-shape float arrays.

    Children are combined in ascending-offset order at every node; the
    association differs from the serial fold, so results agree with it
    only to rounding (the chunked-array tolerance).
    """
    v = (rank - root) % n
    acc = arr
    mask = 1
    while mask < n:
        if v & mask:
            yield ("send", ((v ^ mask) + root) % n, 0,
                   np.ascontiguousarray(acc).tobytes())
            return None
        child = v | mask
        if child < n:
            data = yield ("recv", (child + root) % n, 0)
            other = np.frombuffer(data, arr.dtype).reshape(arr.shape)
            acc = op(acc, other)
        mask <<= 1
    return np.asarray(acc, dtype=arr.dtype)


def _allreduce_tree_array(rank, n, root, arr, op):
    """Tree combine to the root, then tree broadcast of the result."""
    acc = yield from _reduce_tree_array(rank, n, root, arr, op)
    data = acc.tobytes() if acc is not None else None
    data = yield from _bcast_tree(rank, n, root, data)
    return np.frombuffer(data, arr.dtype).reshape(arr.shape)


def _allreduce_ring_array(rank, n, root, arr: np.ndarray, op):
    """Ring allreduce: reduce-scatter then allgather over n partitions."""
    del root
    flat = np.ascontiguousarray(arr).ravel()
    bounds = np.linspace(0, flat.size, n + 1).astype(int)
    part = lambda i: slice(bounds[i % n], bounds[i % n + 1])  # noqa: E731
    buf = flat.copy()
    right = (rank + 1) % n
    left = (rank - 1) % n
    for k in range(n - 1):
        yield ("send", right, k, buf[part(rank - k)].tobytes())
        data = yield ("recv", left, k)
        sl = part(rank - 1 - k)
        buf[sl] = op(buf[sl], np.frombuffer(data, flat.dtype))
    for k in range(n - 1):
        yield ("send", right, (n - 1) + k, buf[part(rank + 1 - k)].tobytes())
        data = yield ("recv", left, (n - 1) + k)
        buf[part(rank - k)] = np.frombuffer(data, flat.dtype)
    return buf.reshape(arr.shape)


_SCHEDULES = {
    ("allgather", "tree"): _allgather_tree,
    ("allgather", "ring"): _allgather_ring,
    ("broadcast", "tree"): _bcast_tree,
    ("broadcast", "ring"): _bcast_ring,
    ("gather", "tree"): _gather_tree,
    ("reduce_array", "tree"): _reduce_tree_array,
    ("allreduce_array", "tree"): _allreduce_tree_array,
    ("allreduce_array", "ring"): _allreduce_ring_array,
}


def build_schedule(
    kind: str,
    algorithm: str,
    rank: int,
    n: int,
    payload,
    root: int = 0,
    op: Callable | None = None,
):
    """Build one rank's schedule generator for a collective.

    ``kind`` is one of ``allgather``, ``broadcast``, ``gather``,
    ``barrier``, ``reduce_array`` or ``allreduce_array``; ``algorithm``
    is ``"tree"`` or ``"ring"``.  Array kinds take an ndarray payload
    and a combining ``op``; the others take bytes.  ``barrier`` is an
    allgather of empty payloads (every rank provably entered before any
    rank leaves).  The ring has no gather/reduce-to-root form here —
    small ring reductions go through allgather + local fold instead
    (see :class:`Communicator`).
    """
    if kind == "barrier":
        return _SCHEDULES[("allgather", algorithm)](rank, n, root, b"")
    try:
        fn = _SCHEDULES[(kind, algorithm)]
    except KeyError:
        raise ValueError(
            f"no {algorithm!r} schedule for collective {kind!r}"
        ) from None
    if kind.endswith("_array"):
        return fn(rank, n, root, payload, op)
    return fn(rank, n, root, payload)


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------

def drive_all(gens: Mapping[int, object], on_message=None) -> dict:
    """Run the per-rank schedules of one collective in a single thread.

    Co-operative round-robin: each rank's generator advances until it
    blocks on a receive whose message has not been sent yet, at which
    point the next rank runs.  Messages move through in-memory
    mailboxes; ``on_message(src, dst, nbytes)`` observes each send in
    causal order (the hook behind the cluster simulator's collective
    traffic accounting).  Returns ``{rank: result}``.
    """
    mail: dict[int, dict] = {r: {} for r in gens}
    waiting: dict[int, tuple] = {}
    results: dict[int, object] = {}
    live = dict(gens)
    started: set[int] = set()
    while live:
        progressed = False
        for rank in sorted(live):
            gen = live[rank]
            while True:
                value = None
                if rank in waiting:
                    key = waiting[rank]
                    if key not in mail[rank]:
                        break  # blocked: let another rank run
                    value = mail[rank].pop(key)
                    del waiting[rank]
                try:
                    if rank in started:
                        eff = gen.send(value)
                    else:
                        started.add(rank)
                        eff = next(gen)
                except StopIteration as stop:
                    results[rank] = stop.value
                    del live[rank]
                    progressed = True
                    break
                if eff[0] == "send":
                    _, peer, tag, data = eff
                    mail[peer][(rank, tag)] = data
                    if on_message is not None:
                        on_message(rank, peer, len(data))
                    progressed = True
                else:
                    _, peer, tag = eff
                    waiting[rank] = (peer, tag)
                    progressed = True
        if not progressed:
            blocked = {r: waiting.get(r) for r in live}
            raise RuntimeError(
                f"collective schedule deadlocked; blocked on {blocked}"
            )
    return results


def collective_pattern(
    kind: str,
    algorithm: str,
    n_ranks: int,
    nbytes: int,
    root: int = 0,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> list[tuple[int, int, int]]:
    """Exact message list ``(src, dst, nbytes)`` of one collective.

    Replays the same schedule generators the live :class:`Communicator`
    executes against a recording driver, in causal order — this is what
    the cluster simulator charges to its simulated Ethernet bus.
    ``reduce``/``allreduce`` of payloads up to ``chunk_bytes`` follow
    the allgather-and-fold path; larger payloads follow the chunked
    combining path.
    """
    if n_ranks == 1:
        return []
    msgs: list[tuple[int, int, int]] = []
    record = lambda s, d, nb: msgs.append((s, d, nb))  # noqa: E731

    def run(kind_, payloads, op=None):
        gens = {
            r: build_schedule(kind_, algorithm, r, n_ranks, payloads[r],
                              root=root, op=op)
            for r in range(n_ranks)
        }
        drive_all(gens, on_message=record)

    if kind == "barrier":
        run("barrier", [b""] * n_ranks)
    elif kind == "allgather":
        run("allgather", [b"\0" * nbytes] * n_ranks)
    elif kind in ("broadcast", "reduce", "allreduce"):
        n_el = max(1, nbytes // 8)
        arr = np.zeros(n_el)
        for lo in range(0, n_el, max(1, chunk_bytes // 8)):
            seg = arr[lo : lo + max(1, chunk_bytes // 8)]
            if kind == "broadcast":
                run("broadcast", [
                    seg.tobytes() if r == root else None
                    for r in range(n_ranks)
                ])
            elif nbytes <= chunk_bytes:
                # allgather + local fold (no further messages)
                sched = "allgather" if (kind == "allreduce"
                                        or algorithm == "ring") else "gather"
                run(sched, [seg.tobytes()] * n_ranks)
            else:
                sched = ("allreduce_array" if kind == "allreduce"
                         or algorithm == "ring" else "reduce_array")
                run(sched, [seg.copy() for _ in range(n_ranks)], op=np.add)
    else:
        raise ValueError(f"unknown collective kind {kind!r}")
    return msgs


# ----------------------------------------------------------------------
# the blocking per-rank driver
# ----------------------------------------------------------------------

class Communicator:
    """Collectives for one rank over a point-to-point channel set.

    ``channels`` is anything with the ``send_data``/``recv_data``/
    ``has_link``/``ensure_links`` interface (TCP, UDP, or in-process).
    Every rank of the group must execute the same sequence of
    collective operations; frames are keyed by an operation sequence
    number carried in the wire header's ``step`` field.  Workers that
    can migrate pin ``seq`` to a function of the integration step (see
    :mod:`repro.distrib.diagnostics`) so a restarted rank stays in
    lockstep with the survivors.
    """

    def __init__(
        self,
        channels,
        rank: int,
        n_ranks: int,
        algorithm: str = "tree",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        timeout: float = 60.0,
        link_timeout: float = 30.0,
        tracer=NULL_TRACER,
    ) -> None:
        if algorithm not in ("tree", "ring"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if not 0 <= rank < n_ranks:
            raise ValueError(f"rank {rank} outside group of {n_ranks}")
        self.channels = channels
        self.rank = rank
        self.n = n_ranks
        self.algorithm = algorithm
        self.chunk_bytes = chunk_bytes
        self.timeout = timeout
        self.link_timeout = link_timeout
        #: span tracer; each public collective records one
        #: ``collective:<kind>`` span per schedule driven
        self.tracer = tracer
        #: sequence number of the next collective operation; assignable
        #: (workers pin it to the integration step before each sync
        #: point so it survives migration).
        self.seq = 0

    # -- plumbing ------------------------------------------------------
    def _ensure(self, peer: int) -> None:
        if not self.channels.has_link(peer):
            self.channels.ensure_links({peer}, timeout=self.link_timeout)

    def _drive(self, gen, name: str = "collective:op"):
        """Execute one schedule generator against the channel set."""
        seq = self.seq
        self.seq += 1
        t0 = self.tracer.begin()
        try:
            eff = next(gen)
            while True:
                if eff[0] == "send":
                    _, peer, tag, data = eff
                    self._ensure(peer)
                    self.channels.send_data(
                        peer, data, step=seq, phase=COLLECTIVE_PHASE,
                        axis=tag, side=0,
                    )
                    eff = gen.send(None)
                else:
                    _, peer, tag = eff
                    self._ensure(peer)
                    key = (seq, COLLECTIVE_PHASE, tag, 0, peer)
                    got = self.channels.recv_data(
                        {key}, timeout=self.timeout
                    )
                    eff = gen.send(got[key])
        except StopIteration as stop:
            return stop.value
        finally:
            self.tracer.end(name, t0)

    def _schedule(self, kind, payload, root=0, op=None):
        return build_schedule(
            kind, self.algorithm, self.rank, self.n, payload,
            root=root, op=op,
        )

    @staticmethod
    def _fold(parts: list[np.ndarray], op: Callable) -> np.ndarray:
        """Rank-ordered serial fold — the bit-for-bit reference order."""
        out = parts[0]
        for p in parts[1:]:
            out = op(out, p)
        return out

    def _segments(self, flat: np.ndarray):
        step = max(1, self.chunk_bytes // flat.itemsize)
        for lo in range(0, flat.size, step):
            yield flat[lo : lo + step]

    # -- collectives ---------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank of the group has entered."""
        if self.n == 1:
            return
        self._drive(self._schedule("barrier", b""), "barrier:all")

    def broadcast(self, value=None, root: int = 0) -> np.ndarray:
        """Distribute the root's float64 array to every rank.

        Non-root ranks pass ``None`` (any value they pass is ignored)
        and receive an array shaped like the root's.  Large arrays are
        chunked; the shape travels ahead of the data.
        """
        if self.rank == root:
            arr = np.asarray(value, dtype=np.float64)
            header = _pack_blocks(
                [np.asarray(arr.shape, dtype=np.int64).tobytes()]
            )
        else:
            arr = None
            header = None
        header = self._drive(self._schedule("broadcast", header, root=root),
                             "collective:broadcast")
        shape = tuple(np.frombuffer(_unpack_blocks(header)[0], np.int64))
        if arr is None:
            arr = np.empty(shape)
        flat = arr.ravel()
        out = []
        for seg in self._segments(flat):
            data = seg.tobytes() if self.rank == root else None
            data = self._drive(self._schedule("broadcast", data, root=root),
                               "collective:broadcast")
            out.append(np.frombuffer(data, np.float64))
        if not out:
            return np.empty(shape)
        return np.concatenate(out).reshape(shape)

    def allgather(self, value) -> list[np.ndarray]:
        """Every rank's float64 array, as a list indexed by rank.

        Contributions may differ in size; each comes back 1-D unless
        all ranks contributed the local shape (scalars stay scalars).
        """
        arr = np.asarray(value, dtype=np.float64)
        if self.n == 1:
            return [arr.copy()]
        blocks = self._drive(self._schedule("allgather", arr.tobytes()),
                             "collective:allgather")
        out = []
        for b in blocks:
            a = np.frombuffer(b, np.float64)
            out.append(a.reshape(arr.shape) if a.size == arr.size else a)
        return out

    def reduce(self, value, op: str = "sum", root: int = 0):
        """Element-wise reduction to the root; ``None`` elsewhere.

        Small payloads are gathered (tree) or allgathered (ring) and
        folded in rank order at the root — bit-for-bit the serial
        reduction.  Large arrays use the combining algorithms.
        """
        ufunc = REDUCE_OPS[op]
        arr = np.asarray(value, dtype=np.float64)
        scalar = np.ndim(value) == 0
        if self.n == 1:
            out = arr.copy()
            return float(out) if scalar else out
        if arr.nbytes <= self.chunk_bytes:
            if self.algorithm == "tree":
                blocks = self._drive(
                    self._schedule("gather", arr.tobytes(), root=root),
                    "collective:reduce",
                )
            else:
                blocks = self._drive(
                    self._schedule("allgather", arr.tobytes()),
                    "collective:reduce",
                )
                if self.rank != root:
                    return None
            if blocks is None:
                return None
            parts = [np.frombuffer(b, np.float64).reshape(arr.shape)
                     for b in blocks]
            out = self._fold(parts, ufunc)
            return float(out) if scalar else out
        pieces = []
        for seg in self._segments(arr.ravel()):
            kind = ("reduce_array" if self.algorithm == "tree"
                    else "allreduce_array")
            res = self._drive(self._schedule(kind, seg, root=root, op=ufunc),
                              "collective:reduce")
            if self.rank == root:
                pieces.append(np.asarray(res).ravel())
        if self.rank != root:
            return None
        return np.concatenate(pieces).reshape(arr.shape)

    def allreduce(self, value, op: str = "sum"):
        """Element-wise reduction, result on every rank.

        Small payloads: allgather + rank-ordered fold — bit-for-bit the
        serial reduction, identical on every rank under either
        algorithm and any transport.  Large arrays: chunked combining
        (tree combine + broadcast, or ring reduce-scatter/allgather),
        equal across ranks but only rounding-close to the serial fold.
        """
        ufunc = REDUCE_OPS[op]
        arr = np.asarray(value, dtype=np.float64)
        scalar = np.ndim(value) == 0
        if self.n == 1:
            out = arr.copy()
            return float(out) if scalar else out
        if arr.nbytes <= self.chunk_bytes:
            blocks = self._drive(self._schedule("allgather", arr.tobytes()),
                                 "collective:allreduce")
            parts = [np.frombuffer(b, np.float64).reshape(arr.shape)
                     for b in blocks]
            out = self._fold(parts, ufunc)
            return float(out) if scalar else out
        pieces = [
            np.asarray(
                self._drive(self._schedule("allreduce_array", seg,
                                           op=ufunc),
                            "collective:allreduce")
            ).ravel()
            for seg in self._segments(arr.ravel())
        ]
        return np.concatenate(pieces).reshape(arr.shape)

    # -- point-to-point tokens (message-based save turns) --------------
    def send_token(self, to: int, step: int, payload: bytes = b"") -> None:
        """Send a step-keyed token to one peer (no sequence state)."""
        t0 = self.tracer.begin()
        self._ensure(to)
        self.channels.send_data(
            to, payload, step=step, phase=TOKEN_PHASE, axis=0, side=0
        )
        self.tracer.end("token:send", t0, step=step)

    def recv_token(self, frm: int, step: int) -> bytes:
        """Receive the step-keyed token from one peer."""
        t0 = self.tracer.begin()
        self._ensure(frm)
        key = (step, TOKEN_PHASE, 0, 0, frm)
        out = self.channels.recv_data({key}, timeout=self.timeout)[key]
        self.tracer.end("token:recv", t0, step=step)
        return out
