"""Boundary exchange over TCP channels (the distributed data plane).

Executes the same :class:`~repro.core.exchange.ExchangePlan` as the
in-process :class:`~repro.core.exchange.LocalExchanger`, but each strip
travels as one frame over a TCP channel.  Axis passes are sequential —
axis-``d+1`` strips include the ghost columns freshly received in axis
``d`` — which is what propagates corner data without diagonal messages.

With the numbers of the paper's methods this produces exactly the
message pattern §6 counts: FD calls :meth:`SocketExchanger.exchange`
twice per step (velocities, then density) and LB once (populations), so
each neighbour pair sees 2 or 1 messages per step per axis direction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.exchange import EdgeOp, ExchangePlan, _replicate_edge, sweep_axes
from ..core.subregion import SubregionState
from .channels import ChannelSet

__all__ = ["SocketExchanger"]


class SocketExchanger:
    """Exchange ghost strips of one subregion over TCP.

    ``extended_sweep`` selects the longer axis order of
    :func:`repro.core.exchange.sweep_axes`, required when the
    decomposition has inactive blocks (corner data must route around
    them); the wire frames of the extra passes are disambiguated by
    folding the pass index into the frame's axis tag.
    """

    def __init__(
        self,
        sub: SubregionState,
        plan: ExchangePlan,
        channels: ChannelSet,
        strict_order: bool = False,
        timeout: float = 60.0,
        extended_sweep: bool = False,
    ) -> None:
        self.sub = sub
        self.plan = plan
        self.channels = channels
        self.strict_order = strict_order
        self.timeout = timeout
        self.extended_sweep = extended_sweep
        self.bytes_sent = 0
        self.messages_sent = 0

    def exchange(self, field_names: Sequence[str], phase: int) -> None:
        """One ghost exchange of the named fields at the given phase."""
        sub = self.sub
        step = sub.step
        axes = sweep_axes(sub.ndim, self.extended_sweep)
        for pass_idx, axis in enumerate(axes):
            ops = self.plan.ops_for_axis(axis)
            # Distinct wire tag per pass so repeated axes cannot collide
            # in the receiver's out-of-order buffer.
            tag = pass_idx * 4 + axis
            # Send all strips of this axis first, then collect the
            # expected receives from whichever neighbour is ready.
            for op in ops:
                if op.kind != "recv":
                    continue
                assert op.send_slices is not None
                payload = self._pack(field_names, op.send_slices)
                self.channels.send_data(
                    op.neighbor_rank,
                    payload,
                    step=step,
                    phase=phase,
                    axis=tag,
                    side=op.side,
                )
                self.bytes_sent += len(payload)
                self.messages_sent += 1
            keys = {}
            for op in ops:
                if op.kind == "recv":
                    # The frame filling my side-s ghost was sent across
                    # the neighbour's opposite face, so it carries -s.
                    keys[(step, phase, tag, -op.side, op.neighbor_rank)] = op
            if keys:
                payloads = self.channels.recv_data(
                    set(keys),
                    timeout=self.timeout,
                    strict_order=self.strict_order,
                )
                for key, op in keys.items():
                    self._unpack(field_names, op, payloads[key])
            for op in ops:
                if op.kind == "replicate":
                    extent = sub.block.shape[op.axis]
                    for name in field_names:
                        _replicate_edge(
                            sub.fields[name], op, sub.pad, extent
                        )
                # "hold" faces (inactive solid blocks) need nothing.

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def _pack(
        self, field_names: Sequence[str], slices: tuple[slice, ...]
    ) -> bytes:
        parts = []
        for name in field_names:
            arr = self.sub.fields[name]
            parts.append(
                np.ascontiguousarray(arr[(...,) + slices]).tobytes()
            )
        return b"".join(parts)

    def _unpack(
        self,
        field_names: Sequence[str],
        op: EdgeOp,
        payload: bytes,
    ) -> None:
        offset = 0
        for name in field_names:
            arr = self.sub.fields[name]
            target = arr[(...,) + op.recv_slices]
            nbytes = target.size * target.itemsize
            chunk = payload[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise ValueError(
                    f"strip for field {name!r} from rank "
                    f"{op.neighbor_rank} at step {self.sub.step} "
                    f"truncated: {len(chunk)}/{nbytes} bytes"
                )
            target[...] = np.frombuffer(chunk, dtype=arr.dtype).reshape(
                target.shape
            )
            offset += nbytes
        if offset != len(payload):
            raise ValueError(
                f"frame from rank {op.neighbor_rank} at step "
                f"{self.sub.step} has {len(payload) - offset} "
                f"unexpected trailing bytes"
            )
