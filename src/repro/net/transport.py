"""Boundary exchange over TCP channels (the distributed data plane).

Executes the same :class:`~repro.core.exchange.ExchangePlan` as the
in-process :class:`~repro.core.exchange.LocalExchanger`, but each strip
travels as one frame over a TCP channel.  Axis passes are sequential —
axis-``d+1`` strips include the ghost columns freshly received in axis
``d`` — which is what propagates corner data without diagonal messages.

With the numbers of the paper's methods this produces exactly the
message pattern §6 counts: FD calls :meth:`SocketExchanger.exchange`
twice per step (velocities, then density) and LB once (populations), so
each neighbour pair sees 2 or 1 messages per step per axis direction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.exchange import EdgeOp, ExchangePlan, _replicate_edge, sweep_axes
from ..core.subregion import SubregionState
from .channels import ChannelSet

__all__ = ["SocketExchanger", "SEAM_PHASE"]

#: wire phase tag of the once-per-step seam translation exchange; far
#: above any compute phase index so frame keys ``(step, phase, tag,
#: side)`` can never collide with a regular phase exchange
SEAM_PHASE = 15


class SocketExchanger:
    """Exchange ghost strips of one subregion over TCP.

    ``extended_sweep`` selects the longer axis order of
    :func:`repro.core.exchange.sweep_axes`, required when the
    decomposition has inactive blocks (corner data must route around
    them); the wire frames of the extra passes are disambiguated by
    folding the pass index into the frame's axis tag.
    """

    def __init__(
        self,
        sub: SubregionState,
        plan: ExchangePlan,
        channels: ChannelSet,
        strict_order: bool = False,
        timeout: float = 60.0,
        extended_sweep: bool = False,
        converters=None,
        wire_fields: Sequence[str] = (),
    ) -> None:
        self.sub = sub
        self.plan = plan
        self.channels = channels
        self.strict_order = strict_order
        self.timeout = timeout
        self.extended_sweep = extended_sweep
        #: seam converters keyed by neighbour rank (this worker is the
        #: destination); those edges are skipped by :meth:`exchange` and
        #: translated by :meth:`exchange_seam` instead
        self.converters = dict(converters or {})
        #: the fields *this* rank's method ships across a seam (its own
        #: representation — the neighbour's converter translates them)
        self.wire_fields = tuple(wire_fields)
        self.bytes_sent = 0
        self.messages_sent = 0

    def exchange(self, field_names: Sequence[str], phase: int) -> None:
        """One ghost exchange of the named fields at the given phase."""
        sub = self.sub
        step = sub.step
        converters = self.converters
        axes = sweep_axes(sub.ndim, self.extended_sweep)
        for pass_idx, axis in enumerate(axes):
            ops = self.plan.ops_for_axis(axis)
            # Distinct wire tag per pass so repeated axes cannot collide
            # in the receiver's out-of-order buffer.
            tag = pass_idx * 4 + axis
            # Send all strips of this axis first, then collect the
            # expected receives from whichever neighbour is ready.
            for op in ops:
                if op.kind != "recv" or op.neighbor_rank in converters:
                    continue
                assert op.send_slices is not None
                payload = self._pack(field_names, op.send_slices)
                self.channels.send_data(
                    op.neighbor_rank,
                    payload,
                    step=step,
                    phase=phase,
                    axis=tag,
                    side=op.side,
                )
                self.bytes_sent += len(payload)
                self.messages_sent += 1
            keys = {}
            for op in ops:
                if op.kind == "recv" and op.neighbor_rank not in converters:
                    # The frame filling my side-s ghost was sent across
                    # the neighbour's opposite face, so it carries -s.
                    keys[(step, phase, tag, -op.side, op.neighbor_rank)] = op
            if keys:
                payloads = self.channels.recv_data(
                    set(keys),
                    timeout=self.timeout,
                    strict_order=self.strict_order,
                )
                for key, op in keys.items():
                    self._unpack(field_names, op, payloads[key])
            for op in ops:
                if op.kind == "replicate":
                    extent = sub.block.shape[op.axis]
                    for name in field_names:
                        _replicate_edge(
                            sub.fields[name], op, sub.pad, extent
                        )
                # "hold" faces (inactive solid blocks) need nothing.

    def exchange_seam(self) -> None:
        """Translate mixed-method ghost strips (once per step, pre-phase).

        The distributed face of ``LocalExchanger.exchange_seam``: per
        axis pass, this rank ships the seam strips of its *own*
        representation (:attr:`wire_fields`) and converts whatever the
        mixed-method neighbour shipped into its ghost strips.  Axis
        passes are sequential, so a later axis ships ghost corners
        already translated by an earlier axis — the same corner
        propagation (and therefore bit-identical results) as the
        in-process runners.
        """
        if not self.converters:
            return
        sub = self.sub
        step = sub.step
        axes = sweep_axes(sub.ndim, self.extended_sweep)
        for pass_idx, axis in enumerate(axes):
            ops = self.plan.ops_for_axis(axis)
            tag = pass_idx * 4 + axis
            seam_ops = [
                op
                for op in ops
                if op.kind == "recv" and op.neighbor_rank in self.converters
            ]
            for op in seam_ops:
                assert op.send_slices is not None
                payload = self._pack(self.wire_fields, op.send_slices)
                self.channels.send_data(
                    op.neighbor_rank,
                    payload,
                    step=step,
                    phase=SEAM_PHASE,
                    axis=tag,
                    side=op.side,
                )
                self.bytes_sent += len(payload)
                self.messages_sent += 1
            keys = {
                (step, SEAM_PHASE, tag, -op.side, op.neighbor_rank): op
                for op in seam_ops
            }
            if not keys:
                continue
            payloads = self.channels.recv_data(
                set(keys),
                timeout=self.timeout,
                strict_order=self.strict_order,
            )
            for key, op in keys.items():
                conv = self.converters[op.neighbor_rank]
                arrays = self._unpack_seam(conv, op, payloads[key])
                conv.convert(sub, op.recv_slices, arrays)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def _pack(
        self, field_names: Sequence[str], slices: tuple[slice, ...]
    ) -> bytes:
        parts = []
        for name in field_names:
            arr = self.sub.fields[name]
            parts.append(
                np.ascontiguousarray(arr[(...,) + slices]).tobytes()
            )
        return b"".join(parts)

    def _unpack(
        self,
        field_names: Sequence[str],
        op: EdgeOp,
        payload: bytes,
    ) -> None:
        offset = 0
        for name in field_names:
            arr = self.sub.fields[name]
            target = arr[(...,) + op.recv_slices]
            nbytes = target.size * target.itemsize
            chunk = payload[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise ValueError(
                    f"strip for field {name!r} from rank "
                    f"{op.neighbor_rank} at step {self.sub.step} "
                    f"truncated: {len(chunk)}/{nbytes} bytes"
                )
            target[...] = np.frombuffer(chunk, dtype=arr.dtype).reshape(
                target.shape
            )
            offset += nbytes
        if offset != len(payload):
            raise ValueError(
                f"frame from rank {op.neighbor_rank} at step "
                f"{self.sub.step} has {len(payload) - offset} "
                f"unexpected trailing bytes"
            )

    def _unpack_seam(self, conv, op: EdgeOp, payload: bytes):
        """Decode a seam frame into arrays of the neighbour's fields.

        The receiver may not hold the shipped fields at all (an FD rank
        has no populations), so shapes come from the strip geometry:
        neighbouring blocks agree on every non-seam extent, making my
        ghost strip exactly the shape of the neighbour's send strip.
        Leading component dimensions (the ``(Q,)`` of a population
        array) come from the converter's ``wire_leading`` map.
        """
        strip_shape = tuple(
            len(range(*sl.indices(self.sub.padded_shape[d])))
            for d, sl in enumerate(op.recv_slices)
        )
        leading = getattr(conv, "wire_leading", {})
        arrays = {}
        offset = 0
        for name in conv.wire_fields:
            shape = tuple(leading.get(name, ())) + strip_shape
            count = int(np.prod(shape))
            nbytes = count * 8
            chunk = payload[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise ValueError(
                    f"seam strip for field {name!r} from rank "
                    f"{op.neighbor_rank} at step {self.sub.step} "
                    f"truncated: {len(chunk)}/{nbytes} bytes"
                )
            arrays[name] = np.frombuffer(chunk, dtype=np.float64).reshape(
                shape
            )
            offset += nbytes
        if offset != len(payload):
            raise ValueError(
                f"seam frame from rank {op.neighbor_rank} at step "
                f"{self.sub.step} has {len(payload) - offset} "
                f"unexpected trailing bytes"
            )
        return arrays
