"""UNIX/TCP-IP communication substrate (paper §4.2, App. C-D).

Length-prefixed socket frames, the shared-file port registry with flock
(the paper's handshake), channel management with first-come-first-served
``select`` receives, and the socket-backed ghost exchanger.
"""

from .channels import ChannelSet
from .portfile import PortRegistry
from .protocol import (
    MSG_DATA,
    MSG_HELLO,
    Header,
    ProtocolError,
    pack_frame,
    recv_frame,
)
from .transport import SocketExchanger
from .udp import UdpChannelSet

__all__ = [
    "ChannelSet",
    "UdpChannelSet",
    "PortRegistry",
    "SocketExchanger",
    "Header",
    "ProtocolError",
    "pack_frame",
    "recv_frame",
    "MSG_DATA",
    "MSG_HELLO",
]
