"""UNIX/TCP-IP communication substrate (paper §4.2, App. C-D).

Length-prefixed socket frames, the shared-file port registry with flock
(the paper's handshake), channel management with first-come-first-served
``select`` receives, the socket-backed ghost exchanger, and the
collective layer (barrier / broadcast / reduce / allreduce / allgather
with tree and ring algorithms) that runs identically over TCP, UDP and
the in-process fabric.
"""

from .channels import ChannelError, ChannelSet
from .collectives import (
    COLLECTIVE_PHASE,
    DEFAULT_CHUNK_BYTES,
    REDUCE_OPS,
    TOKEN_PHASE,
    Communicator,
    build_schedule,
    collective_pattern,
    drive_all,
)
from .local import LocalChannelSet, LocalFabric
from .portfile import PortRegistry
from .protocol import (
    MSG_DATA,
    MSG_HELLO,
    Header,
    ProtocolError,
    pack_frame,
    recv_frame,
)
from .transport import SocketExchanger
from .udp import UdpChannelSet

__all__ = [
    "ChannelSet",
    "ChannelError",
    "UdpChannelSet",
    "LocalFabric",
    "LocalChannelSet",
    "Communicator",
    "build_schedule",
    "drive_all",
    "collective_pattern",
    "COLLECTIVE_PHASE",
    "TOKEN_PHASE",
    "DEFAULT_CHUNK_BYTES",
    "REDUCE_OPS",
    "PortRegistry",
    "SocketExchanger",
    "Header",
    "ProtocolError",
    "pack_frame",
    "recv_frame",
    "MSG_DATA",
    "MSG_HELLO",
]
