"""UDP/IP (datagram) transport — the App. D alternative, implemented.

"Apart from the TCP/IP protocol, another protocol that is popular in
distributed systems is the UDP/IP protocol, also known as datagrams
[...] with one major difference: there is no guaranteed delivery of
messages.  Thus, the distributed program must check that messages are
delivered, and resend messages if necessary, which is a considerable
effort.  However, the benefit is that the distributed program has more
control of the communication [and] robustness in the case of network
errors that occur under very high network traffic: when TCP/IP fails it
is hard to know which messages need to be resent; in UDP/IP the
distributed program controls precisely which data is sent and when, so
that the failure problem is handled directly."

The paper chose TCP for simplicity; this module builds the UDP path it
describes so the trade-off can be exercised: per-datagram sequence
numbers, positive acknowledgments, timer-driven retransmission,
duplicate suppression, and fragmentation of boundary strips into
MTU-sized datagrams.  A deterministic loss-injection knob emulates the
overloaded-Ethernet packet loss of §7, and the test suite shows the
exchange stays bit-exact under heavy loss — the robustness App. D
advertises.

:class:`UdpChannelSet` is call-compatible with
:class:`repro.net.channels.ChannelSet`, so the same
:class:`~repro.net.transport.SocketExchanger` and worker drive either
protocol.
"""

from __future__ import annotations

import select
import socket
import struct
import time
from typing import Iterable

import numpy as np

from ..trace import NULL_TRACER
from .channels import ChannelError
from .portfile import PortRegistry
from .protocol import ProtocolError

__all__ = ["UdpChannelSet"]

_MAGIC = b"SKRU"
_VERSION = 1
_PKT_DATA = 1
_PKT_ACK = 2

#: magic, version, ptype, sender, step, phase, axis, side, seq,
#: frag_idx, nfrags, payload_len
_HEADER = struct.Struct(">4sBBiqBBbIHHI")
HEADER_SIZE = _HEADER.size

#: payload bytes per datagram — well under the 64 KiB UDP limit, large
#: enough that a 300-node strip fits in a handful of fragments
_MTU_PAYLOAD = 32768


class UdpChannelSet:
    """Reliable boundary exchange over unreliable datagrams (App. D)."""

    def __init__(
        self,
        rank: int,
        neighbor_ranks: Iterable[int],
        registry: PortRegistry,
        host: str = "127.0.0.1",
        rto: float = 0.05,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        self.rank = rank
        self.neighbors = sorted(set(neighbor_ranks))
        if rank in self.neighbors:
            raise ValueError(f"rank {rank} cannot neighbour itself")
        self.registry = registry
        self.host = host
        self.rto = rto
        self.loss_rate = loss_rate
        self._loss_rng = np.random.default_rng(loss_seed + 7919 * rank)
        self.generation = -1
        self._sock: socket.socket | None = None
        self._addrs: dict[int, tuple[str, int]] = {}
        self._seq = 0
        # reliability state
        self._unacked: dict[int, tuple[bytes, tuple[str, int], float]] = {}
        self._seen: set[tuple[int, int]] = set()  # (sender, seq)
        self._frags: dict[tuple, dict[int, bytes]] = {}
        self._nfrags: dict[tuple, int] = {}
        self._inbox: dict[tuple, bytes] = {}
        # statistics (the "considerable effort" made visible)
        self.datagrams_sent = 0
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.datagrams_lost = 0  # injected losses
        self.conn_breaks = 0     # injected conn_break faults honoured
        # conn_break aftermath: ignore this many incoming ACKs, modeling
        # the burst of acknowledgments a dying link eats (the sender
        # must retransmit; the receiver's duplicate suppression absorbs
        # the replays)
        self._ack_ignore = 0
        #: per-peer byte/message accounting (assign a live
        #: :class:`repro.trace.Tracer` to record channel traffic)
        self.tracer = NULL_TRACER
        #: optional :class:`repro.chaos.ChannelFaultInjector` hook.
        #: Datagrams have no connection to reset, so a ``conn_break``
        #: here models what a broken link costs a connectionless
        #: transport: the peer's resolved address is dropped (forcing a
        #: registry re-handshake before the next send) and a burst of
        #: ACKs is discarded (forcing the retransmit timer to re-earn
        #: delivery) — see :meth:`_break_link`.
        self.injector = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, generation: int, timeout: float = 30.0) -> None:
        """Bind, register in the port file, and resolve the neighbours."""
        if self._sock is not None:
            raise RuntimeError("channels already open")
        self.generation = generation
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind((self.host, 0))
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 21)
        self._sock = sock
        port = sock.getsockname()[1]
        self.registry.register(generation, self.rank, self.host, port)
        self._addrs = self.registry.wait_for(
            generation, set(self.neighbors), timeout=timeout
        )

    def close(self, flush_timeout: float = 10.0) -> None:
        """Flush outstanding retransmissions, then close the socket."""
        if self._sock is None:
            return
        deadline = time.monotonic() + flush_timeout
        while self._unacked and time.monotonic() < deadline:
            self._pump(0.01)
        self._sock.close()
        self._sock = None
        self._seen.clear()
        self._frags.clear()
        self._nfrags.clear()
        self._unacked.clear()

    # ------------------------------------------------------------------
    # on-demand links (collective topology)
    # ------------------------------------------------------------------
    def has_link(self, rank: int) -> bool:
        """Whether ``rank``'s datagram address is already resolved."""
        return rank in self._addrs

    def ensure_links(self, peers: Iterable[int], timeout: float = 30.0) -> None:
        """Resolve non-neighbour peers' addresses from the registry.

        Datagrams are connectionless, so a "link" is just a registry
        lookup under the current generation — after a migration re-open
        the stale address is simply re-resolved.
        """
        missing = {p for p in set(peers) if p not in self._addrs}
        if not missing:
            return
        if self._sock is None:
            raise RuntimeError("channels are closed")
        self._addrs.update(
            self.registry.wait_for(self.generation, missing, timeout=timeout)
        )

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def _raw_send(self, packet: bytes, addr: tuple[str, int]) -> None:
        assert self._sock is not None
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.datagrams_lost += 1
            return  # the network ate it; the retransmit timer will act
        self._sock.sendto(packet, addr)

    def send_data(
        self,
        to: int,
        payload: bytes,
        step: int,
        phase: int,
        axis: int,
        side: int,
    ) -> None:
        """Fragment, sequence and transmit one boundary-strip frame."""
        frames: tuple = ((to, payload, step, phase, axis, side),)
        if self.injector is not None and self.injector.enabled:
            frames, breaks = self.injector.filter_send(
                (to, payload, step, phase, axis, side)
            )
            for peer in breaks:
                self._break_link(peer)
        for t, pl, st, ph, ax, sd in frames:
            self._send_frame(t, pl, st, ph, ax, sd)

    def _break_link(self, peer: int) -> None:
        """Honour an injected ``conn_break`` on a connectionless link.

        There is no TCP stream to reset, so the fault becomes the two
        costs a broken link imposes on a datagram protocol: the peer's
        resolved address is forgotten (the next send must re-handshake
        through the port registry, exactly like a post-migration
        re-open) and the next few ACKs are discarded as if the dying
        link ate them, forcing the retransmit timer to deliver the
        in-flight data again.
        """
        self.conn_breaks += 1
        self._addrs.pop(peer, None)
        self._ack_ignore += 4

    def _send_frame(
        self, to: int, payload: bytes,
        step: int, phase: int, axis: int, side: int,
    ) -> None:
        if to not in self._addrs:  # broken link: registry re-handshake
            self.ensure_links((to,))
        addr = self._addrs[to]
        self.tracer.count(to, len(payload))
        nfrags = max(1, -(-len(payload) // _MTU_PAYLOAD))
        if nfrags > 0xFFFF:
            raise ValueError(f"payload of {len(payload)} bytes too large")
        for idx in range(nfrags):
            chunk = payload[idx * _MTU_PAYLOAD : (idx + 1) * _MTU_PAYLOAD]
            seq = self._seq
            self._seq += 1
            packet = _HEADER.pack(
                _MAGIC, _VERSION, _PKT_DATA, self.rank, step, phase,
                axis, side, seq, idx, nfrags, len(chunk),
            ) + chunk
            self._unacked[seq] = (packet, addr, time.monotonic())
            try:
                self._raw_send(packet, addr)
            except OSError as exc:
                raise ChannelError(
                    self.rank, to, self.generation,
                    f"datagram send failed: {exc}",
                ) from exc
            self.datagrams_sent += 1

    def _retransmit_due(self) -> None:
        now = time.monotonic()
        for seq, (packet, addr, last) in list(self._unacked.items()):
            if now - last >= self.rto:
                self._unacked[seq] = (packet, addr, now)
                self._raw_send(packet, addr)
                self.retransmissions += 1

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def _handle_packet(self, data: bytes, addr: tuple[str, int]) -> None:
        if len(data) < HEADER_SIZE:
            raise ProtocolError(f"short datagram ({len(data)} bytes)")
        (magic, version, ptype, sender, step, phase, axis, side, seq,
         frag_idx, nfrags, plen) = _HEADER.unpack(data[:HEADER_SIZE])
        if magic != _MAGIC:
            raise ProtocolError(f"bad datagram magic {magic!r}")
        if version != _VERSION:
            raise ProtocolError(f"datagram version {version}")
        if ptype == _PKT_ACK:
            if self._ack_ignore > 0:  # conn_break ate this ACK
                self._ack_ignore -= 1
                return
            self._unacked.pop(seq, None)
            return
        if ptype != _PKT_DATA:
            raise ProtocolError(f"unknown datagram type {ptype}")
        # Always acknowledge, even duplicates (the first ACK may have
        # been lost — exactly the failure UDP makes us own).
        ack = _HEADER.pack(
            _MAGIC, _VERSION, _PKT_ACK, self.rank, 0, 0, 0, 0, seq, 0,
            0, 0,
        )
        self._raw_send(ack, addr)
        if (sender, seq) in self._seen:
            self.duplicates_dropped += 1
            return
        self._seen.add((sender, seq))
        chunk = data[HEADER_SIZE : HEADER_SIZE + plen]
        if len(chunk) != plen:
            raise ProtocolError("truncated datagram payload")
        key = (step, phase, axis, side, sender)
        frags = self._frags.setdefault(key, {})
        frags[frag_idx] = chunk
        self._nfrags[key] = nfrags
        if len(frags) == nfrags:
            whole = b"".join(frags[i] for i in range(nfrags))
            self._inbox[key] = whole
            self.tracer.count(sender, len(whole), sent=False)
            del self._frags[key]
            del self._nfrags[key]

    def _pump(self, wait: float) -> None:
        """Service the socket for up to ``wait`` seconds and retransmit."""
        assert self._sock is not None
        ready, _, _ = select.select([self._sock], [], [], wait)
        while ready:
            data, addr = self._sock.recvfrom(1 << 16)
            self._handle_packet(data, addr)
            ready, _, _ = select.select([self._sock], [], [], 0.0)
        self._retransmit_due()

    def recv_data(
        self,
        keys: set[tuple[int, int, int, int, int]],
        timeout: float = 60.0,
        strict_order: bool = False,  # noqa: ARG002 - datagrams have no
        # per-channel order to be strict about; accepted for interface
        # compatibility with the TCP ChannelSet
    ) -> dict[tuple, bytes]:
        """Collect the payloads for every requested key."""
        out: dict[tuple, bytes] = {}
        deadline = time.monotonic() + timeout
        while True:
            for key in list(keys - out.keys()):
                if key in self._inbox:
                    out[key] = self._inbox.pop(key)
            if len(out) == len(keys):
                return out
            if time.monotonic() > deadline:
                missing = sorted(keys - out.keys())
                raise TimeoutError(
                    f"rank {self.rank}: still waiting for {missing}"
                )
            self._pump(min(self.rto, 0.02))
