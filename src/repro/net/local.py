"""In-process message fabric with the channel-set interface.

The serial and threaded runners have no sockets, yet the collective
schedules (:mod:`repro.net.collectives`) want something that looks like
a :class:`~repro.net.channels.ChannelSet`.  :class:`LocalFabric` is a
set of per-rank mailboxes behind one lock; :class:`LocalChannelSet` is
one rank's blocking view of it, call-compatible with the TCP and UDP
channel sets for everything the collectives need (``send_data`` /
``recv_data`` / ``has_link`` / ``ensure_links``).  The threaded runner
gives each worker thread its own :class:`LocalChannelSet`; the serial
runner bypasses blocking entirely and interleaves schedules with
:func:`~repro.net.collectives.drive_all`.
"""

from __future__ import annotations

import threading

from ..trace import NULL_TRACER

__all__ = ["LocalFabric", "LocalChannelSet"]


class LocalFabric:
    """Shared mailboxes for a group of in-process ranks.

    Messages are keyed exactly like the socket transports key their
    out-of-order buffers — ``(step, phase, axis, side, sender)`` — so
    the same collective driver runs unchanged on top.
    """

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self._boxes: list[dict] = [{} for _ in range(n_ranks)]
        self._cond = threading.Condition()

    def channel_set(self, rank: int) -> "LocalChannelSet":
        """The given rank's view of the fabric."""
        return LocalChannelSet(self, rank)

    def put(self, to: int, key: tuple, payload: bytes) -> None:
        """Deposit a message and wake any waiting receivers."""
        with self._cond:
            self._boxes[to][key] = payload
            self._cond.notify_all()

    def take(self, rank: int, keys: set, timeout: float) -> dict:
        """Block until every key is present in ``rank``'s mailbox."""
        box = self._boxes[rank]
        with self._cond:
            ok = self._cond.wait_for(
                lambda: all(k in box for k in keys), timeout=timeout
            )
            if not ok:
                missing = sorted(k for k in keys if k not in box)
                raise TimeoutError(
                    f"local rank {rank}: no message for {missing} "
                    f"after {timeout:.1f}s"
                )
            return {k: box.pop(k) for k in keys}


class LocalChannelSet:
    """One rank's blocking channel-set view of a :class:`LocalFabric`.

    Every rank is always linked to every other — ``ensure_links`` is a
    no-op — which is exactly the property the collective layer has to
    *build* on the socket transports.
    """

    def __init__(self, fabric: LocalFabric, rank: int) -> None:
        if not 0 <= rank < fabric.n_ranks:
            raise ValueError(f"rank {rank} outside fabric of "
                             f"{fabric.n_ranks}")
        self.fabric = fabric
        self.rank = rank
        #: per-peer byte/message accounting (assign a live
        #: :class:`repro.trace.Tracer` to record fabric traffic)
        self.tracer = NULL_TRACER

    def has_link(self, rank: int) -> bool:
        """All in-process ranks are reachable."""
        return 0 <= rank < self.fabric.n_ranks

    def ensure_links(self, peers, timeout: float = 0.0) -> None:
        """No-op: the fabric is fully connected by construction."""
        for p in peers:
            if not self.has_link(p):
                raise ValueError(f"rank {p} outside fabric")

    def send_data(self, to: int, payload: bytes, step: int, phase: int,
                  axis: int, side: int) -> None:
        """Deposit ``payload`` in ``to``'s mailbox under the wire key."""
        self.tracer.count(to, len(payload))
        self.fabric.put(to, (step, phase, axis, side, self.rank),
                        bytes(payload))

    def recv_data(self, keys, timeout: float = 30.0, **_ignored) -> dict:
        """Block until all ``(step, phase, axis, side, sender)`` keys arrive."""
        out = self.fabric.take(self.rank, set(keys), timeout)
        tracer = self.tracer
        if tracer.enabled:
            for key, payload in out.items():
                tracer.count(key[4], len(payload), sent=False)
        return out

    def close(self) -> None:
        """Nothing to release (interface parity with the socket sets)."""
