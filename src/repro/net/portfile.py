"""Shared-file port registry (paper §4.2).

"The port numbers must be known in advance before the TCP/IP channel is
opened.  Thus, each process must first allocate its port numbers for
listening to its neighbors, and then write the port numbers into a
shared file.  The neighbors must read the shared file before they can
connect" — the workstations share a common file system, and so do the
worker processes here.  Writes are serialized with ``flock`` in append
mode, the same file-locking-semaphore technique the synchronization
algorithm of App. B uses.

A *generation* number partitions registrations across channel re-opens:
channels are closed during a migration and every process re-registers
under the next generation when the computation resumes (§5).
"""

from __future__ import annotations

import fcntl
import os
import time
from pathlib import Path

__all__ = ["PortRegistry"]


class PortRegistry:
    """Append-only rank -> (host, port) registry backed by a shared file."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def register(
        self, generation: int, rank: int, host: str, port: int
    ) -> None:
        """Record that ``rank`` listens at ``host:port`` in ``generation``."""
        line = f"{generation} {rank} {host} {port}\n"
        # Append under an exclusive lock so concurrent registrations from
        # different processes never interleave within a line.
        with open(self.path, "a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def read(self, generation: int) -> dict[int, tuple[str, int]]:
        """All registrations of a generation (last write per rank wins)."""
        out: dict[int, tuple[str, int]] = {}
        if not self.path.exists():
            return out
        with open(self.path, "r") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_SH)
            try:
                lines = fh.readlines()
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        for line in lines:
            parts = line.split()
            if len(parts) != 4:
                continue
            gen, rank, host, port = parts
            if int(gen) == generation:
                out[int(rank)] = (host, int(port))
        return out

    def wait_for(
        self,
        generation: int,
        ranks: set[int],
        timeout: float = 30.0,
        poll: float = 0.01,
    ) -> dict[int, tuple[str, int]]:
        """Block until every rank in ``ranks`` has registered.

        This is the "read the shared file before they can connect" side
        of the paper's handshake.
        """
        deadline = time.monotonic() + timeout
        while True:
            entries = self.read(generation)
            if ranks <= entries.keys():
                return {r: entries[r] for r in ranks}
            if time.monotonic() > deadline:
                missing = sorted(ranks - entries.keys())
                raise TimeoutError(
                    f"ranks {missing} never registered ports for "
                    f"generation {generation}"
                )
            time.sleep(poll)
