"""Legacy-editable-install shim (offline environment lacks the wheel package)."""
from setuptools import setup

setup()
