#!/usr/bin/env python
"""Three-dimensional duct flow — the problem class behind figs. 9-11.

The paper's 3D experiments integrate grids of 10^3..44^3 nodes per
workstation; 40^3 is the memory ceiling of a 32 MB machine.  This
example runs a rectangular duct (3D Hagen-Poiseuille) with both
methods, validates the velocity profile against the exact Fourier-series
solution, and reports the measured nodes/second — the quantity whose
ratio to the network speed decides whether 3D is viable (it wasn't, on
shared 10 Mbps Ethernet; see the fig. 9-11 benchmarks).

Run:  python examples/duct_flow_3d.py [--n 13] [--steps 3000]
"""

import argparse

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FDMethod,
    FluidParams,
    LBMethod,
    channel_geometry,
    duct_profile,
)
from repro.harness import measure_node_speed


def run_duct(method_cls, n, steps, nu, g):
    shape = (8, n, n)
    solid = channel_geometry(shape)
    params = FluidParams.lattice(3, nu=nu, gravity=(g, 0.0, 0.0))
    fields = {
        "rho": np.ones(shape),
        "u": np.zeros(shape),
        "v": np.zeros(shape),
        "w": np.zeros(shape),
    }
    sim = Simulation(
        method_cls(params, 3),
        Decomposition(shape, (2, 1, 1), periodic=(True, False, False),
                      solid=solid),
        fields,
        solid,
    )
    sim.step(steps)
    return sim, solid


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=13,
                    help="duct cross-section nodes")
    ap.add_argument("--steps", type=int, default=3000)
    ap.add_argument("--nu", type=float, default=0.08)
    ap.add_argument("--force", type=float, default=1e-6)
    args = ap.parse_args()

    n = args.n
    for method_cls, name, wall_offset in (
        (FDMethod, "finite differences", 0.0),
        (LBMethod, "lattice Boltzmann", 0.5),
    ):
        sim, solid = run_duct(method_cls, n, args.steps, args.nu,
                              args.force)
        u = sim.global_field("u")[4]

        # analytic duct profile with the method's wall placement
        j = np.arange(n, dtype=float)
        y = (j - wall_offset)[:, None]
        z = (j - wall_offset)[None, :]
        span = (n - 1.0) if wall_offset == 0.0 else (n - 2.0)
        exact = duct_profile(y, z, span, span, args.force, args.nu)
        fl = ~solid[4]
        err = np.abs(u[fl] - exact[fl]).max() / exact.max()

        speed = measure_node_speed(sim, n_nodes=8 * n * n, steps=10)
        print(f"{name}:")
        print(f"  max velocity   {u.max():.3e}  (exact {exact.max():.3e})")
        print(f"  max rel error  {err:.2e}")
        print(f"  this machine   {speed:,.0f} nodes/s "
              f"(the 715/50 did ~{20000 if method_cls is LBMethod else 39000:,} in 3D)")
        mid = u[:, n // 2] / max(u.max(), 1e-30)
        print("  mid profile    " + " ".join(f"{v:.2f}" for v in mid))
        print()


if __name__ == "__main__":
    main()
