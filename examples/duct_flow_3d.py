#!/usr/bin/env python
"""Three-dimensional duct flow — the problem class behind figs. 9-11.

The paper's 3D experiments integrate grids of 10^3..44^3 nodes per
workstation; 40^3 is the memory ceiling of a 32 MB machine.  This
example runs the registry's ``duct3d`` scenario (rectangular duct, 3D
Hagen-Poiseuille) with both methods through the ``repro.run`` facade,
scores the velocity profile against the exact Fourier-series solution,
and reports the measured nodes/second — the quantity whose ratio to
the network speed decides whether 3D is viable (it wasn't, on shared
10 Mbps Ethernet; see the fig. 9-11 benchmarks).

Run:  python examples/duct_flow_3d.py [--n 13] [--steps 2500]
"""

import argparse

import numpy as np

from repro.scenarios import get, run_case


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=13,
                    help="duct cross-section nodes")
    ap.add_argument("--steps", type=int, default=2500)
    ap.add_argument("--nu", type=float, default=0.08)
    ap.add_argument("--force", type=float, default=1e-6)
    args = ap.parse_args()

    scenario = get("duct3d")
    for method, name in (("fd", "finite differences"),
                         ("lb", "lattice Boltzmann")):
        overrides = {"method": method, "n": args.n, "nu": args.nu,
                     "g": args.force, "steps": args.steps}
        case = scenario.case(**overrides)
        result = run_case(case, backend="threaded")
        score = scenario.score(result.fields, result.diagnostics,
                               **overrides)

        shape = case.spec.grid_shape
        u = result.fields["u"][shape[0] // 2]
        n_nodes = int(np.prod(shape))
        speed = n_nodes * case.settings["steps"] / result.elapsed

        print(f"{name}:")
        print(f"  max velocity   {u.max():.3e}")
        print(f"  max rel error  {score.residuals['profile_err']:.2e} "
              f"(bound {score.bounds['profile_err']:g}; "
              f"{'pass' if score.passed else 'FAIL'})")
        for failure in score.failures:
            print(f"  failed: {failure}")
        print(f"  this machine   {speed:,.0f} nodes/s "
              f"(the 715/50 did ~"
              f"{20000 if method == 'lb' else 39000:,} in 3D)")
        mid = u[:, args.n // 2] / max(u.max(), 1e-30)
        print("  mid profile    " + " ".join(f"{v:.2f}" for v in mid))
        print()


if __name__ == "__main__":
    main()
