#!/usr/bin/env python
"""Checkpoint and restart: the §4.1 dump-file machinery, in-process.

The distributed system's dump files serve three roles — initial
distribution, periodic state saves, and migration.  The same format is
exposed on the in-process `Simulation` as `save()` / `resume()`: stop a
long flue-pipe run, come back later, continue *bit-exactly* — verified
here against an uninterrupted reference run.

Run:  python examples/checkpoint_restart.py [--steps 300]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import FluidParams, LBMethod, flue_pipe


def build(shape=(120, 75)):
    setup = flue_pipe(shape, jet_speed=0.08, ramp_steps=40)
    params = FluidParams.lattice(2, nu=0.02, filter_eps=0.02)
    method = LBMethod(params, 2, inlets=[setup.inlet],
                      outlets=[setup.outlet])
    decomp = Decomposition(shape, (3, 2), solid=setup.solid)
    fields = {
        "rho": np.ones(shape), "u": np.zeros(shape),
        "v": np.zeros(shape),
    }
    return Simulation(method, decomp, fields, setup.solid)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=300)
    args = ap.parse_args()
    half = args.steps // 2

    reference = build()
    reference.step(args.steps)
    print(f"reference: {args.steps} uninterrupted steps")

    with tempfile.TemporaryDirectory(prefix="skordos-ckpt-") as td:
        first = build()
        first.step(half)
        first.save(td)
        n_dumps = len(list(Path(td).glob("*.npz")))
        print(f"checkpoint at step {half}: {n_dumps} dump files in {td}")
        del first  # the process could exit here

        second = build()          # fresh process, same problem spec
        second.resume(td)
        print(f"resumed at step {second.step_count}")
        second.step(args.steps - half)

    identical = all(
        np.array_equal(reference.global_field(n), second.global_field(n))
        for n in ("rho", "u", "v", "f")
    )
    print(f"interrupted run == uninterrupted run, bit for bit: "
          f"{identical}")
    assert identical


if __name__ == "__main__":
    main()
