#!/usr/bin/env python
"""The full distributed system in action, with a live migration (§4-§5).

Runs a channel-flow problem across real worker *processes* communicating
over real TCP sockets (the paper's UNIX + TCP/IP substrate), on a
virtual registry of 25 non-dedicated workstations.  Mid-run, one
workstation's emulated five-minute load average jumps above 1.5 — the
monitoring program detects it, interrupts every worker with SIGUSR2,
drives the App. B synchronization, migrates the affected subprocess to
a freshly selected free host, and resumes.  The final state is compared
bit-for-bit against the serial program.

Run:  python examples/distributed_run.py [--steps 60] [--blocks 2 2]
"""

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.distrib import (
    DistributedRun,
    ProblemSpec,
    RunSettings,
    initial_fields,
)
from repro.trace import format_breakdown_table, summarize


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=60)
    ap.add_argument("--blocks", type=int, nargs=2, default=(2, 2))
    ap.add_argument("--method", choices=("lb", "fd"), default="lb")
    ap.add_argument("--workdir", default=None,
                    help="run directory (default: a temp dir)")
    args = ap.parse_args()

    spec = ProblemSpec(
        method=args.method,
        grid_shape=(48, 32),
        blocks=tuple(args.blocks),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )
    fields = initial_fields(spec, "rest")

    # serial reference, through the same facade the library documents
    serial = repro.run(
        ProblemSpec(method=spec.method, grid_shape=spec.grid_shape,
                    blocks=(1, 1), periodic=spec.periodic,
                    params=spec.params, geometry=spec.geometry),
        backend="serial", steps=args.steps, fields=fields,
    )

    workdir = args.workdir or tempfile.mkdtemp(prefix="skordos-")
    run_dir = Path(workdir) / "run"
    print(f"work directory: {run_dir}")

    # DistributedRun (not repro.run) because the demo needs the live
    # monitor and host registry mid-run; every rank traces itself
    run = DistributedRun(
        spec, fields, run_dir,
        RunSettings(steps=args.steps, save_every=max(args.steps // 2, 10),
                    run_timeout=300, trace=True),
    )
    monitor = run.start()
    print(f"submitted {run.decomp.n_active} workers "
          f"(job-submit program selected free hosts: "
          f"{[h.name for h in run.hostdb.hosts() if h.rank is not None]})")

    def user_shows_up():
        time.sleep(0.8)
        host = run.hostdb.host_of_rank(1)
        if host is not None:
            print(f"\n*** regular user starts a full-time job on "
                  f"{host.name} (load 2.2 > 1.5) ***\n")
            run.hostdb.set_load(host.name, load5=2.2)

    threading.Thread(target=user_shows_up).start()
    run.wait()
    out = run.collect()

    print(f"run complete: {monitor.migrations} migration(s), "
          f"{monitor.restarts} restart(s)")
    ok = all(
        np.array_equal(out[name], serial.fields[name])
        for name in serial.fields
    )
    print(f"distributed result == serial result, bit for bit: {ok}")
    for line in (run_dir / "logs" / "monitor.log").read_text().splitlines():
        print("  monitor:", line)

    print("\nwhere each rank spent its time (migration pause included):")
    print(format_breakdown_table(summarize(run_dir)))
    print(f"merged Chrome trace (open in Perfetto): "
          f"{run_dir / 'trace' / 'trace.json'}")
    assert ok


if __name__ == "__main__":
    main()
