#!/usr/bin/env python
"""The full distributed system in action, with a live migration (§4-§5).

Runs a channel-flow problem across real worker *processes* communicating
over real TCP sockets (the paper's UNIX + TCP/IP substrate), on a
virtual registry of 25 non-dedicated workstations.  Mid-run, one
workstation's emulated five-minute load average jumps above 1.5 — the
monitoring program detects it, interrupts every worker with SIGUSR2,
drives the App. B synchronization, migrates the affected subprocess to
a freshly selected free host, and resumes.  The final state is compared
bit-for-bit against the serial program.

Run:  python examples/distributed_run.py [--steps 60] [--blocks 2 2]
"""

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import Decomposition, Simulation
from repro.distrib import (
    DistributedRun,
    ProblemSpec,
    RunSettings,
    initial_fields,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=60)
    ap.add_argument("--blocks", type=int, nargs=2, default=(2, 2))
    ap.add_argument("--method", choices=("lb", "fd"), default="lb")
    ap.add_argument("--workdir", default=None,
                    help="run directory (default: a temp dir)")
    args = ap.parse_args()

    spec = ProblemSpec(
        method=args.method,
        grid_shape=(48, 32),
        blocks=tuple(args.blocks),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )
    fields = initial_fields(spec, "rest")

    # serial reference
    solid, _, _ = spec.build_geometry()
    serial = Simulation(
        spec.build_method(),
        Decomposition(spec.grid_shape, (1, 1), periodic=spec.periodic,
                      solid=solid),
        fields,
        solid,
    )
    serial.step(args.steps)

    workdir = args.workdir or tempfile.mkdtemp(prefix="skordos-")
    run_dir = Path(workdir) / "run"
    print(f"work directory: {run_dir}")

    run = DistributedRun(
        spec, fields, run_dir,
        RunSettings(steps=args.steps, save_every=max(args.steps // 2, 10),
                    run_timeout=300),
    )
    monitor = run.start()
    print(f"submitted {run.decomp.n_active} workers "
          f"(job-submit program selected free hosts: "
          f"{[h.name for h in run.hostdb.hosts() if h.rank is not None]})")

    def user_shows_up():
        time.sleep(0.8)
        host = run.hostdb.host_of_rank(1)
        if host is not None:
            print(f"\n*** regular user starts a full-time job on "
                  f"{host.name} (load 2.2 > 1.5) ***\n")
            run.hostdb.set_load(host.name, load5=2.2)

    threading.Thread(target=user_shows_up).start()
    run.wait()
    out = run.collect()

    print(f"run complete: {monitor.migrations} migration(s), "
          f"{monitor.restarts} restart(s)")
    ok = all(
        np.array_equal(out[name], serial.global_field(name))
        for name in serial.method.field_names
    )
    print(f"distributed result == serial result, bit for bit: {ok}")
    for line in (run_dir / "logs" / "monitor.log").read_text().splitlines():
        print("  monitor:", line)
    assert ok


if __name__ == "__main__":
    main()
