#!/usr/bin/env python
"""Quickstart: simulate subsonic channel flow with both of the paper's
methods and validate against the exact Hagen-Poiseuille solution.

This is the §7 validation problem: body-force-driven flow between
no-slip walls, solved with explicit finite differences and with the
lattice Boltzmann method on the same grid, serial and decomposed —
demonstrating the core property of the system: the decomposition is
bit-for-bit invisible to the physics.

Run:  python examples/quickstart.py [--ny 19] [--steps 4000]
"""

import argparse

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FDMethod,
    FluidParams,
    LBMethod,
    channel_geometry,
    poiseuille_profile,
)


def build_channel(method_cls, shape, blocks, nu, g):
    """Assemble a periodic channel simulation (the §4.1 initialization
    and decomposition programs, in-process)."""
    params = FluidParams.lattice(2, nu=nu, gravity=(g, 0.0))
    solid = channel_geometry(shape)
    decomp = Decomposition(
        shape, blocks, periodic=(True, False), solid=solid
    )
    fields = {
        "rho": np.ones(shape),
        "u": np.zeros(shape),
        "v": np.zeros(shape),
    }
    return Simulation(method_cls(params, 2), decomp, fields, solid)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ny", type=int, default=19, help="channel width")
    ap.add_argument("--steps", type=int, default=4000)
    ap.add_argument("--nu", type=float, default=0.1)
    ap.add_argument("--force", type=float, default=1e-6)
    args = ap.parse_args()

    shape = (8, args.ny)
    print(f"channel {shape}, nu={args.nu}, g={args.force}, "
          f"{args.steps} steps\n")

    for method_cls, name in ((FDMethod, "finite differences"),
                             (LBMethod, "lattice Boltzmann")):
        serial = build_channel(method_cls, shape, (1, 1), args.nu,
                               args.force)
        parallel = build_channel(method_cls, shape, (2, 2), args.nu,
                                 args.force)
        serial.step(args.steps)
        parallel.step(args.steps)

        u_serial = serial.global_field("u")
        u_parallel = parallel.global_field("u")
        bitwise = np.array_equal(u_serial, u_parallel)

        # exact solution: FD pins the wall on the solid node, LB's
        # bounce-back wall sits halfway between fluid and solid node
        y = np.arange(args.ny, dtype=float)
        if method_cls is LBMethod:
            exact = poiseuille_profile(y - 0.5, args.ny - 2.0,
                                       args.force, args.nu)
        else:
            exact = poiseuille_profile(y, args.ny - 1.0,
                                       args.force, args.nu)
        mid = u_serial[4]
        fl = slice(1, args.ny - 1)
        err = np.abs(mid[fl] - exact[fl]).max() / exact.max()

        print(f"{name}:")
        print(f"  centerline velocity  {mid.max():.3e} "
              f"(exact {exact.max():.3e})")
        print(f"  max relative error   {err:.2e}")
        print(f"  serial == (2x2) decomposed bitwise: {bitwise}")
        profile = "  profile: " + " ".join(
            f"{v / exact.max():.2f}" for v in mid[:: max(args.ny // 10, 1)]
        )
        print(profile + "\n")
        assert bitwise, "decomposition must be invisible to the physics"


if __name__ == "__main__":
    main()
