#!/usr/bin/env python
"""Quickstart: simulate subsonic channel flow with both of the paper's
methods and validate against the exact Hagen-Poiseuille solution.

This is the §7 validation problem: body-force-driven flow between
no-slip walls, solved with explicit finite differences and with the
lattice Boltzmann method on the same grid, serial and decomposed —
demonstrating the core property of the system: the decomposition is
bit-for-bit invisible to the physics.

Everything goes through the unified entry point: one
:class:`~repro.distrib.ProblemSpec` describes the problem, and
``repro.run(spec, backend=...)`` marches it serially or with one
thread per subregion.  The decomposed run traces itself, so the
example ends with the paper's §7 compute/communicate table.

(The spec below is written out by hand to show the API; the same
problem lives pre-built and *scored* in the scenario registry —
``repro scenarios run poiseuille`` — alongside nine more flows.)

Run:  python examples/quickstart.py [--ny 19] [--steps 4000]
"""

import argparse
import tempfile

import numpy as np

import repro
from repro.distrib import ProblemSpec, RunSettings
from repro.fluids import poiseuille_profile
from repro.trace import format_breakdown_table


def channel_spec(method, shape, blocks, nu, g):
    """The §4.1 problem description all programs reconstruct from."""
    return ProblemSpec(
        method=method,
        grid_shape=shape,
        blocks=blocks,
        periodic=(True, False),
        params={"nu": nu, "gravity": (g, 0.0)},
        geometry={"kind": "channel"},
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ny", type=int, default=19, help="channel width")
    ap.add_argument("--steps", type=int, default=4000)
    ap.add_argument("--nu", type=float, default=0.1)
    ap.add_argument("--force", type=float, default=1e-6)
    args = ap.parse_args()

    shape = (8, args.ny)
    print(f"channel {shape}, nu={args.nu}, g={args.force}, "
          f"{args.steps} steps\n")

    traced = None
    for method, name in (("fd", "finite differences"),
                         ("lb", "lattice Boltzmann")):
        serial = repro.run(
            channel_spec(method, shape, (1, 1), args.nu, args.force),
            backend="serial", steps=args.steps,
        )
        with tempfile.TemporaryDirectory() as td:
            traced = repro.run(
                channel_spec(method, shape, (2, 2), args.nu, args.force),
                backend="threaded",
                settings=RunSettings(steps=args.steps, trace=True),
                workdir=td,
            )
            table = format_breakdown_table(traced.trace_summary)

        u_serial = serial.fields["u"]
        u_parallel = traced.fields["u"]
        bitwise = np.array_equal(u_serial, u_parallel)

        # exact solution: FD pins the wall on the solid node, LB's
        # bounce-back wall sits halfway between fluid and solid node
        y = np.arange(args.ny, dtype=float)
        if method == "lb":
            exact = poiseuille_profile(y - 0.5, args.ny - 2.0,
                                       args.force, args.nu)
        else:
            exact = poiseuille_profile(y, args.ny - 1.0,
                                       args.force, args.nu)
        mid = u_serial[4]
        fl = slice(1, args.ny - 1)
        err = np.abs(mid[fl] - exact[fl]).max() / exact.max()

        print(f"{name}:")
        print(f"  centerline velocity  {mid.max():.3e} "
              f"(exact {exact.max():.3e})")
        print(f"  max relative error   {err:.2e}")
        print(f"  serial == (2x2) threaded bitwise: {bitwise}")
        profile = "  profile: " + " ".join(
            f"{v / exact.max():.2f}" for v in mid[:: max(args.ny // 10, 1)]
        )
        print(profile + "\n")
        assert bitwise, "decomposition must be invisible to the physics"

    print("where the decomposed run spent its time "
          "(repro.trace, last method):")
    print(table)


if __name__ == "__main__":
    main()
