#!/usr/bin/env python
"""Parallel-efficiency study on the simulated 1994 cluster (§7-§8).

Sweeps the subregion grain and the processor count on the calibrated
discrete-event model of the paper's 25 HP workstations + 10 Mbps shared
Ethernet, printing the efficiency tables of figs. 5 and 9 side by side
with the eq. 20/21 theoretical model — the complete story of the paper
in two tables: 2D works, 3D needs a faster network.

Run:  python examples/cluster_efficiency.py [--steps 30]
"""

import argparse
import tempfile

import repro
from repro.core import EfficiencyModel, paper_m_table
from repro.distrib import ProblemSpec, RunSettings
from repro.harness import (
    format_table,
    sweep_2d_grain,
    sweep_processors,
)
from repro.trace import format_breakdown_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=30)
    args = ap.parse_args()

    model = EfficiencyModel()
    m_table = paper_m_table()

    print("sweeping grain (fig. 5)...")
    data = sweep_2d_grain(
        "lb", ((2, 2), (5, 4)), (50, 100, 150, 200, 300),
        steps=args.steps,
    )
    rows = []
    for blocks, pts in data.items():
        m, p = m_table[blocks], pts[0].processors
        for pt in pts:
            rows.append([
                f"{blocks[0]}x{blocks[1]}", pt.side,
                f"{pt.efficiency:.3f}",
                f"{float(model.efficiency(pt.nodes, m, p, 2)):.3f}",
            ])
    print(format_table(
        ["decomp", "side", "f simulated", "f eq.20"], rows,
        title="\nLB 2D efficiency vs subregion grain (fig. 5 vs fig. 12)",
    ))

    print("\nsweeping processors (fig. 9)...")
    procs = (2, 4, 8, 12, 16, 20)
    data9 = sweep_processors(processors=procs, steps=args.steps)
    rows = []
    for i, p in enumerate(procs):
        rows.append([
            p,
            f"{data9['2d'][i].efficiency:.3f}",
            f"{float(model.efficiency(120.0**2, 2, p, 2)):.3f}",
            f"{data9['3d'][i].efficiency:.3f}",
            f"{float(model.efficiency(25.0**3, 2, p, 3)):.3f}",
        ])
    print(format_table(
        ["P", "2D sim", "2D eq.20", "3D sim", "3D eq.21"], rows,
        title="\nEfficiency vs processors, fixed grain per processor "
              "(fig. 9 vs fig. 13)",
    ))

    # one sweep point in detail: the same simulated run through the
    # unified facade, with per-rank spans on the simulated clock
    print("\ntracing one point (LB 5x4, side 150) through repro.run...")
    side, blocks = 150, (5, 4)
    spec = ProblemSpec(
        method="lb",
        grid_shape=(blocks[0] * side, blocks[1] * side),
        blocks=blocks,
        periodic=(True, False),
        geometry={"kind": "open"},
    )
    with tempfile.TemporaryDirectory() as td:
        point = repro.run(spec, backend="simulated",
                          settings=RunSettings(steps=args.steps,
                                               trace=True),
                          workdir=td)
        print(format_breakdown_table(point.trace_summary))
    print(f"trace utilization f = {point.utilization:.3f}  vs  "
          f"simulator's eq. 8 f = "
          f"{point.sim.compute_time_total / (point.sim.processors * point.sim.elapsed):.3f}")

    n80 = model.grain_for_efficiency(0.80, m=4, p=20, ndim=2)
    n80_3d = model.grain_for_efficiency(0.80, m=2, p=20, ndim=3)
    print(f"\ngrain needed for 80% efficiency on 20 workstations:")
    print(f"  2D: {n80:.0f} nodes (~{n80 ** 0.5:.0f}^2) — fits the 300^2 "
          f"memory ceiling of a 32 MB workstation")
    print(f"  3D: {n80_3d:.0f} nodes (~{n80_3d ** (1 / 3):.0f}^3) — far "
          f"beyond the 40^3 ceiling: 3D needs a faster network "
          f"(the paper's conclusion)")


if __name__ == "__main__":
    main()
